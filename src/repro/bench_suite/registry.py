"""Benchmark registry: the six circuits of Table 3 by name."""

from __future__ import annotations

from typing import Callable

from ..dfg.hierarchy import Design
from .avenhaus import avenhaus_cascade_design
from .dct import dct_design
from .iir import iir_design
from .lat import lat_design
from .paulin import hier_paulin_design, paulin_design
from .test1 import test1_design

__all__ = ["BENCHMARKS", "TABLE3_BENCHMARKS", "get_benchmark", "benchmark_names"]

#: All benchmark constructors by name.
BENCHMARKS: dict[str, Callable[[], Design]] = {
    "paulin": paulin_design,
    "hier_paulin": hier_paulin_design,
    "dct": dct_design,
    "iir": iir_design,
    "lat": lat_design,
    "avenhaus_cascade": avenhaus_cascade_design,
    "test1": test1_design,
}

#: The circuits evaluated in Table 3, in the paper's row order.
TABLE3_BENCHMARKS: tuple[str, ...] = (
    "avenhaus_cascade",
    "lat",
    "dct",
    "iir",
    "hier_paulin",
    "test1",
)


def get_benchmark(name: str) -> Design:
    """Construct a benchmark design by name."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r} (known: {known})") from None
    return builder()


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)
