"""Normalized lattice filter (the HYPER ``lat`` benchmark shape).

A lattice filter is a chain of identical two-multiplier stages:

.. math::

    f' = f - k\\,b,\\qquad b' = b + k\\,f'

where *k* is the per-stage reflection coefficient (a constant) and the
backward values *b* are the filter state, modeled as primary I/O per
sample.  Each stage is one behavior instance, making ``lat`` the purest
replicated-block hierarchy in the suite.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = ["lattice_stage_dfg", "lat_design"]

BEHAVIOR_STAGE = "lattice_stage"

#: Q8 reflection coefficient used inside the stage behavior.
_K = 77


def lattice_stage_dfg(name: str = BEHAVIOR_STAGE, k: int = _K) -> DFG:
    """One lattice stage: (f, b) → (f', b')."""
    b = GraphBuilder(name, behavior=BEHAVIOR_STAGE)
    f, back = b.inputs("f", "b")
    kk = b.const(k, name="kk")
    kb = b.mult(kk, back, name="kb")
    f_new = b.sub(f, kb, name="fnew")
    kf = b.mult(kk, f_new, name="kf")
    b_new = b.add(back, kf, name="bnew")
    b.output("f_out", f_new)
    b.output("b_out", b_new)
    return b.build()


def lat_design(n_stages: int = 4) -> Design:
    """Chain of lattice stages plus an output accumulation."""
    if n_stages < 2:
        raise ValueError("lat needs at least two stages")
    design = Design("lat")
    design.add_dfg(lattice_stage_dfg())

    b = GraphBuilder("lat_top")
    x = b.input("x")
    backs = [b.input(f"b{i}") for i in range(n_stages)]

    f = x
    b_outs = []
    for i in range(n_stages):
        h = b.hier(BEHAVIOR_STAGE, f, backs[i], n_outputs=2, name=f"stage{i}")
        f = h[0]
        b_outs.append(h[1])

    # Output tap: the forward residual plus a weighted state sum.
    acc = b_outs[0]
    for i, bw in enumerate(b_outs[1:], start=1):
        acc = b.add(acc, bw, name=f"acc{i}")
    b.output("residual", f)
    b.output("tap", acc)
    for i, bw in enumerate(b_outs):
        b.output(f"b_next_{i}", bw)
    design.add_dfg(b.build(), top=True)
    return design
