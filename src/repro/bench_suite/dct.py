"""8-point one-dimensional DCT, hierarchical (Lee-style decomposition).

The paper's ``dct`` comes from the HYPER package.  We build the
standard fast-DCT structure out of the two classic building blocks the
paper's introduction names ("butterfly, dot-product, etc."):

* ``butterfly`` — 2 in, 2 out: ``(a + b, a - b)``;
* ``rotator``   — 2 in, 2 out plane rotation:
  ``(x·c + y·s, y·c - x·s)`` with constant coefficients (4 mult, 2 add).

The flow is the familiar three butterfly stages on the even half plus
rotators on the odd half, followed by output scaling multiplications.
Coefficient values are fixed-point constants; their exact values do not
matter for synthesis (constants are hardwired), only the operation
structure does.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder, Wire
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = ["butterfly_dfg", "rotator_dfg", "dct_design"]

BEHAVIOR_BUTTERFLY = "butterfly"
BEHAVIOR_ROTATOR = "rotator"

#: Fixed-point (Q8) stand-ins for the DCT cosine coefficients.
_COEFFS = {"c1": 251, "s1": 50, "c3": 213, "s3": 142, "c6": 98, "s6": 236}


def butterfly_dfg() -> DFG:
    """(a, b) → (a + b, a − b)."""
    b = GraphBuilder(BEHAVIOR_BUTTERFLY)
    a, c = b.inputs("a", "b")
    b.output("sum", b.add(a, c, name="bsum"))
    b.output("diff", b.sub(a, c, name="bdiff"))
    return b.build()


def rotator_dfg(name: str = BEHAVIOR_ROTATOR, c: int = 213, s: int = 142) -> DFG:
    """(x, y) → (x·c + y·s, y·c − x·s): a constant plane rotation."""
    b = GraphBuilder(name, behavior=BEHAVIOR_ROTATOR)
    x, y = b.inputs("x", "y")
    cc = b.const(c, name="kc")
    ss = b.const(s, name="ks")
    xc = b.mult(x, cc, name="xc")
    ys = b.mult(y, ss, name="ys")
    yc = b.mult(y, cc, name="yc")
    xs = b.mult(x, ss, name="xs")
    b.output("u", b.add(xc, ys, name="radd"))
    b.output("v", b.sub(yc, xs, name="rsub"))
    return b.build()


def dct_design() -> Design:
    """Hierarchical 8-point DCT: butterflies + rotators + output scaling."""
    design = Design("dct")
    design.add_dfg(butterfly_dfg())
    design.add_dfg(rotator_dfg())

    b = GraphBuilder("dct_top")
    xs = b.inputs(*[f"x{i}" for i in range(8)])

    def bf(p: Wire, q: Wire, tag: str) -> tuple[Wire, Wire]:
        h = b.hier(BEHAVIOR_BUTTERFLY, p, q, n_outputs=2, name=f"bf_{tag}")
        return h[0], h[1]

    def rot(p: Wire, q: Wire, tag: str) -> tuple[Wire, Wire]:
        h = b.hier(BEHAVIOR_ROTATOR, p, q, n_outputs=2, name=f"rot_{tag}")
        return h[0], h[1]

    # Stage 1: fold the input vector.
    s0, d0 = bf(xs[0], xs[7], "s1a")
    s1, d1 = bf(xs[1], xs[6], "s1b")
    s2, d2 = bf(xs[2], xs[5], "s1c")
    s3, d3 = bf(xs[3], xs[4], "s1d")

    # Even half: two more butterfly levels plus one rotation.
    e0, e1 = bf(s0, s3, "s2a")
    e2, e3 = bf(s1, s2, "s2b")
    y0, y4 = bf(e0, e2, "s3a")          # X0, X4 (up to scaling)
    y2, y6 = rot(e1, e3, "even")        # X2, X6

    # Odd half: rotations then a butterfly recombination.
    o0, o1 = rot(d0, d3, "odd1")
    o2, o3 = rot(d1, d2, "odd2")
    p0, p1 = bf(o0, o2, "s3b")
    p2, p3 = bf(o1, o3, "s3c")

    # Output scaling multiplications (normalization constants).
    k = b.const(181, name="knorm")      # ~ 1/sqrt(2) in Q8
    x1 = b.mult(p0, k, name="sc1")
    x7 = b.mult(p3, k, name="sc7")
    x5 = b.add(p1, p2, name="mix5")
    x3 = b.sub(p1, p2, name="mix3")

    for tag, wire in [
        ("X0", y0), ("X1", x1), ("X2", y2), ("X3", x3),
        ("X4", y4), ("X5", x5), ("X6", y6), ("X7", x7),
    ]:
        b.output(tag, wire)
    design.add_dfg(b.build(), top=True)
    return design
