"""Benchmark designs: the paper's Table 3 suite plus worked examples.

All benchmarks are reconstructed from their published structures (the
HYPER filters by their filter topology, Paulin by the classic diffeq
body, ``test1`` from Figure 1(a)); see DESIGN.md for the substitution
notes.  Use :func:`get_benchmark` / :data:`TABLE3_BENCHMARKS` to
enumerate them.
"""

from .avenhaus import avenhaus_cascade_design, avenhaus_section_dfg
from .dct import butterfly_dfg, dct_design, rotator_dfg
from .example3 import example3_dfg1, example3_dfg2, table2_library
from .iir import biquad_dfg, iir_design
from .lat import lat_design, lattice_stage_dfg
from .paulin import hier_paulin_design, paulin_design, paulin_iteration_dfg
from .registry import BENCHMARKS, TABLE3_BENCHMARKS, benchmark_names, get_benchmark
from .test1 import (
    dot3_chain_dfg,
    dot3_tree_dfg,
    macd_dfg,
    sum4_dfg,
    sumprod_dfg,
    test1_design,
)

__all__ = [
    "BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "avenhaus_cascade_design",
    "avenhaus_section_dfg",
    "benchmark_names",
    "biquad_dfg",
    "butterfly_dfg",
    "dct_design",
    "dot3_chain_dfg",
    "dot3_tree_dfg",
    "example3_dfg1",
    "example3_dfg2",
    "get_benchmark",
    "hier_paulin_design",
    "iir_design",
    "lat_design",
    "lattice_stage_dfg",
    "macd_dfg",
    "paulin_design",
    "paulin_iteration_dfg",
    "rotator_dfg",
    "sum4_dfg",
    "sumprod_dfg",
    "table2_library",
    "test1_design",
]
