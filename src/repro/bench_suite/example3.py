"""Example 3 / Figure 3 / Table 2: the RTL-embedding demonstration pair.

The paper maps two distinct DFGs onto RTL modules RTL1 and RTL2 and
then constructs ``NewRTL``, which can execute both while preserving
each DFG's schedule and binding.  Table 2 pins down the resource
complement of each side:

* RTL1 — registers r1..r5, adders A1 A2, multipliers M1 M2, subtractor S1;
* RTL2 — registers s1..s6, adders A1 A2, multipliers M1 M2 (no subtractor);
* NewRTL — six registers q1..q6 plus the union A1 A2 M1 M2 S1.

The exact DFG wiring is not given, so we reconstruct minimal DFGs with
exactly those operation complements.  ``table2_library()`` provides the
small cell library whose areas Table 2 lists (reg 5, Add1 20, Mult1 50,
Sub1 20) so the regenerated table reads like the paper's.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder
from ..dfg.graph import DFG
from ..dfg.ops import Operation
from ..library.cells import CellKind, LibraryCell
from ..library.library import ModuleLibrary

__all__ = ["example3_dfg1", "example3_dfg2", "table2_library"]


def example3_dfg1() -> DFG:
    """Two adds, two mults, one sub: ``(a·b + c·d) − (a + c)``."""
    b = GraphBuilder("ex3_dfg1")
    a, c, d, e = b.inputs("a", "b", "c", "d")
    m1 = b.mult(a, c, name="M1")
    m2 = b.mult(d, e, name="M2")
    a1 = b.add(m1, m2, name="A1")
    a2 = b.add(a, d, name="A2")
    s1 = b.sub(a1, a2, name="S1")
    b.output("out", s1)
    return b.build()


def example3_dfg2() -> DFG:
    """Two adds, two mults, no sub: ``(a+b)·(c+d)`` and ``(a+b)·c``."""
    b = GraphBuilder("ex3_dfg2")
    a, c, d, e = b.inputs("a", "b", "c", "d")
    a1 = b.add(a, c, name="A1")
    a2 = b.add(d, e, name="A2")
    m1 = b.mult(a1, a2, name="M1")
    m2 = b.mult(a1, d, name="M2")
    b.output("out0", m1)
    b.output("out1", m2)
    return b.build()


def table2_library() -> ModuleLibrary:
    """The miniature library whose areas Table 2 quotes."""
    cells = [
        LibraryCell("Add1", CellKind.FUNCTIONAL, frozenset({Operation.ADD}),
                    area=20.0, delay_ns=9.0, cap=0.8),
        LibraryCell("Sub1", CellKind.FUNCTIONAL, frozenset({Operation.SUB}),
                    area=20.0, delay_ns=9.0, cap=0.8),
        LibraryCell("Mult1", CellKind.FUNCTIONAL, frozenset({Operation.MULT}),
                    area=50.0, delay_ns=28.0, cap=3.0),
    ]
    register = LibraryCell("reg", CellKind.REGISTER, frozenset(),
                           area=5.0, delay_ns=1.0, cap=0.25)
    mux = LibraryCell("mux2", CellKind.MUX, frozenset(),
                      area=2.0, delay_ns=0.6, cap=0.1)
    return ModuleLibrary(cells, register_cell=register, mux_cell=mux)
