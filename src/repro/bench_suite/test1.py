"""``test1``: the paper's Figure 1(a) hierarchical DFG.

The figure shows a top level with four hierarchical nodes DFG1..DFG4
mapped to complex modules C1..C4 (Figure 2), with DFG3's output
consumed late (cycle 9 in the worked example) and a library that
contains functionally equivalent variants (C1 vs C2 implement the same
behavior with different structures).  The paper does not tabulate the
exact sub-DFG contents, so this module reconstructs the example from
everything the text pins down:

* ``dot3`` — a three-multiplication product behavior with **two
  anisomorphic variants** (chain and tree), mirroring C1/C2's declared
  functional equivalence and exercising the variant-swapping side of
  move A;
* ``sumprod`` — four inputs, two outputs with markedly different
  latencies, matching RTL2's profile {0,0,0,0,6,3};
* ``macd`` — four inputs, one output, latency ≈ 7 (RTL3's profile
  {0, 0, 2, 4, 7}: staggered expected input arrivals);
* ``sum4`` — a chain of three additions, matching complex module C5.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = [
    "dot3_chain_dfg",
    "dot3_tree_dfg",
    "sumprod_dfg",
    "macd_dfg",
    "sum4_dfg",
    "test1_design",
]

BEHAVIOR_DOT3 = "dot3"
BEHAVIOR_SUMPROD = "sumprod"
BEHAVIOR_MACD = "macd"
BEHAVIOR_SUM4 = "sum4"


def dot3_chain_dfg() -> DFG:
    """((a·b)·c)·d — the linear-chain product variant (long, few live values)."""
    b = GraphBuilder("dot3_chain", behavior=BEHAVIOR_DOT3)
    a, c, d, e = b.inputs("a", "b", "c", "d")
    m1 = b.mult(a, c, name="m1")
    m2 = b.mult(m1, d, name="m2")
    m3 = b.mult(m2, e, name="m3")
    b.output("p", m3)
    return b.build()


def dot3_tree_dfg() -> DFG:
    """(a·b)·(c·d) — the balanced-tree product variant (short, parallel)."""
    b = GraphBuilder("dot3_tree", behavior=BEHAVIOR_DOT3)
    a, c, d, e = b.inputs("a", "b", "c", "d")
    m1 = b.mult(a, c, name="m1")
    m2 = b.mult(d, e, name="m2")
    m3 = b.mult(m1, m2, name="m3")
    b.output("p", m3)
    return b.build()


def sumprod_dfg() -> DFG:
    """(a+b)·(c+d) and a+c: two outputs with unequal latencies."""
    b = GraphBuilder(BEHAVIOR_SUMPROD)
    a, c, d, e = b.inputs("a", "b", "c", "d")
    s1 = b.add(a, c, name="s1")
    s2 = b.add(d, e, name="s2")
    p = b.mult(s1, s2, name="p")
    q = b.add(a, d, name="q")
    b.output("slow", p)
    b.output("fast", q)
    return b.build()


def macd_dfg() -> DFG:
    """(a·b + c)·d: multiply-accumulate-multiply, staggered input needs."""
    b = GraphBuilder(BEHAVIOR_MACD)
    a, c, d, e = b.inputs("a", "b", "c", "d")
    m1 = b.mult(a, c, name="m1")
    s1 = b.add(m1, d, name="s1")
    m2 = b.mult(s1, e, name="m2")
    b.output("r", m2)
    return b.build()


def sum4_dfg() -> DFG:
    """a+b+c+d as a chain of three additions (complex module C5's DFG)."""
    b = GraphBuilder(BEHAVIOR_SUM4)
    a, c, d, e = b.inputs("a", "b", "c", "d")
    s1 = b.add(a, c, name="s1")
    s2 = b.add(s1, d, name="s2")
    s3 = b.add(s2, e, name="s3")
    b.output("s", s3)
    return b.build()


def test1_design() -> Design:
    """Figure 1(a): four hierarchical nodes over the behaviors above."""
    design = Design("test1")
    design.add_dfg(dot3_chain_dfg())   # first-registered: the default variant
    design.add_dfg(dot3_tree_dfg())    # the anisomorphic alternative
    design.add_dfg(sumprod_dfg())
    design.add_dfg(macd_dfg())
    design.add_dfg(sum4_dfg())

    b = GraphBuilder("test1_top")
    ins = b.inputs(*[f"i{k}" for k in range(8)])
    n1 = b.hier(BEHAVIOR_DOT3, ins[0], ins[1], ins[2], ins[3], name="DFG1")
    n2 = b.hier(
        BEHAVIOR_SUMPROD, ins[2], ins[3], ins[4], ins[5], n_outputs=2, name="DFG2"
    )
    n3 = b.hier(BEHAVIOR_MACD, n1, n2[0], n2[1], ins[6], name="DFG3")
    n4 = b.hier(BEHAVIOR_SUM4, n3, n1, ins[7], n2[1], name="DFG4")
    b.output("out", n4)
    design.add_dfg(b.build(), top=True)
    return design
