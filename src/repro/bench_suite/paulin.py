"""The Paulin differential-equation benchmark (HAL) and its unrolling.

``paulin`` is the classic second-order differential-equation solver
used throughout the HLS literature (one Euler iteration):

.. math::

    x_1 = x + dx,\\qquad
    u_1 = u - 3 x u\\,dx - 3 y\\,dx,\\qquad
    y_1 = y + u\\,dx,\\qquad
    c = x_1 < a

``hier_paulin`` is "a hierarchical DFG obtained by unrolling the
well-known benchmark Paulin" (Section 5): the iteration body becomes a
behavior and the top level chains several instances, exactly the kind
of replicated-block hierarchy the paper's algorithm exploits.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder, Wire
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = ["paulin_iteration_dfg", "paulin_design", "hier_paulin_design"]

BEHAVIOR_ITER = "diffeq_iter"


def _iteration_body(b: GraphBuilder, x: Wire, y: Wire, u: Wire, dx: Wire) -> tuple[Wire, Wire, Wire]:
    """One Euler step; returns (x1, y1, u1)."""
    three = b.const(3, name="c3")
    x1 = b.add(x, dx, name="xadd")
    t1 = b.mult(three, x, name="m3x")          # 3x
    t2 = b.mult(u, dx, name="mudx")            # u*dx (reused for y1)
    t3 = b.mult(t1, u, name="m3xu")            # 3x*u
    t4 = b.mult(t3, dx, name="m3xudx")         # 3x*u*dx
    t5 = b.mult(three, y, name="m3y")          # 3y
    t6 = b.mult(t5, dx, name="m3ydx")          # 3y*dx
    t7 = b.sub(u, t4, name="subu")             # u - 3xudx
    u1 = b.sub(t7, t6, name="subu2")           # ... - 3ydx
    y1 = b.add(y, t2, name="yadd")             # y + u*dx
    return x1, y1, u1


def paulin_iteration_dfg(name: str = BEHAVIOR_ITER) -> DFG:
    """The iteration body as a behavior: (x, y, u, dx) → (x1, y1, u1)."""
    b = GraphBuilder(name, behavior=BEHAVIOR_ITER)
    x, y, u, dx = b.inputs("x", "y", "u", "dx")
    x1, y1, u1 = _iteration_body(b, x, y, u, dx)
    b.output("x1", x1)
    b.output("y1", y1)
    b.output("u1", u1)
    return b.build()


def paulin_design() -> Design:
    """Flat Paulin: one iteration plus the loop-exit comparison."""
    b = GraphBuilder("paulin")
    x, y, u, dx, a = b.inputs("x", "y", "u", "dx", "a")
    x1, y1, u1 = _iteration_body(b, x, y, u, dx)
    c = b.lt(x1, a, name="cmp")
    b.output("x1", x1)
    b.output("y1", y1)
    b.output("u1", u1)
    b.output("c", c)
    design = Design("paulin")
    design.add_dfg(b.build(), top=True)
    return design


def hier_paulin_design(n_iterations: int = 3) -> Design:
    """Unrolled Paulin: *n_iterations* chained ``diffeq_iter`` blocks."""
    if n_iterations < 2:
        raise ValueError("hier_paulin needs at least two iterations")
    design = Design("hier_paulin")
    design.add_dfg(paulin_iteration_dfg())

    b = GraphBuilder("hier_paulin_top")
    x, y, u, dx, a = b.inputs("x", "y", "u", "dx", "a")
    state: tuple[Wire, Wire, Wire] = (x, y, u)
    for i in range(n_iterations):
        h = b.hier(
            BEHAVIOR_ITER, state[0], state[1], state[2], dx,
            n_outputs=3, name=f"iter{i}",
        )
        state = (h[0], h[1], h[2])
    c = b.lt(state[0], a, name="cmp")
    b.output("x_out", state[0])
    b.output("y_out", state[1])
    b.output("u_out", state[2])
    b.output("c", c)
    design.add_dfg(b.build(), top=True)
    return design
