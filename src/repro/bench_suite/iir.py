"""Cascade-form IIR filter (the HYPER ``iir`` benchmark shape).

Each second-order section is a direct-form-II-transposed biquad with
constant coefficients; per sample it computes

.. math::

    y = b_0 x + s_1,\\qquad
    s_1' = b_1 x - a_1 y + s_2,\\qquad
    s_2' = b_2 x - a_2 y

(5 multiplications, 2 additions, 2 subtractions).  The filter states
are modeled as primary inputs/outputs of the behavior, which keeps each
per-sample DFG acyclic (Section 2: the system handles loops by cutting
them at iteration boundaries).
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = ["biquad_dfg", "iir_design"]

BEHAVIOR_BIQUAD = "biquad"

#: Per-section Q8 coefficients (b0, b1, b2, a1, a2) of a generic
#: low-pass cascade; values only shape the simulated streams.
_SECTIONS = [
    (64, 128, 64, 200, 90),
    (70, 140, 70, 180, 75),
    (58, 116, 58, 210, 100),
]


def biquad_dfg(
    name: str = BEHAVIOR_BIQUAD,
    coeffs: tuple[int, int, int, int, int] = _SECTIONS[0],
) -> DFG:
    """One biquad section: (x, s1, s2) → (y, s1', s2')."""
    b0, b1, b2, a1, a2 = coeffs
    b = GraphBuilder(name, behavior=BEHAVIOR_BIQUAD)
    x, s1, s2 = b.inputs("x", "s1", "s2")
    kb0 = b.const(b0, name="kb0")
    kb1 = b.const(b1, name="kb1")
    kb2 = b.const(b2, name="kb2")
    ka1 = b.const(a1, name="ka1")
    ka2 = b.const(a2, name="ka2")

    y = b.add(b.mult(x, kb0, name="mb0"), s1, name="ysum")
    t1 = b.sub(b.mult(x, kb1, name="mb1"), b.mult(y, ka1, name="ma1"), name="t1")
    s1n = b.add(t1, s2, name="s1n")
    s2n = b.sub(b.mult(x, kb2, name="mb2"), b.mult(y, ka2, name="ma2"), name="s2n")

    b.output("y", y)
    b.output("s1_next", s1n)
    b.output("s2_next", s2n)
    return b.build()


def iir_design(n_sections: int = 3) -> Design:
    """Cascade of biquad sections; states enter/leave as top-level I/O."""
    if not 1 <= n_sections <= len(_SECTIONS):
        raise ValueError(f"n_sections must be in 1..{len(_SECTIONS)}")
    design = Design("iir")
    design.add_dfg(biquad_dfg())

    b = GraphBuilder("iir_top")
    x = b.input("x")
    states = []
    for i in range(n_sections):
        states.append((b.input(f"s1_{i}"), b.input(f"s2_{i}")))

    signal = x
    for i in range(n_sections):
        h = b.hier(
            BEHAVIOR_BIQUAD, signal, states[i][0], states[i][1],
            n_outputs=3, name=f"sec{i}",
        )
        signal = h[0]
        b.output(f"s1_next_{i}", h[1])
        b.output(f"s2_next_{i}", h[2])
    b.output("y", signal)
    design.add_dfg(b.build(), top=True)
    return design
