"""Avenhaus cascade filter (the HYPER ``avenhaus_cascade`` shape).

The Avenhaus bandpass is the classic "expensive sections" cascade: each
second-order section is a full state-space update

.. math::

    s_1' = a_{11} s_1 + a_{12} s_2 + b_1 x\\\\
    s_2' = a_{21} s_1 + a_{22} s_2 + b_2 x\\\\
    y    = c_1 s_1 + c_2 s_2 + d x

(9 multiplications, 6 additions per section), which gives hierarchical
synthesis much more internal structure to optimize than the biquad
cascade.  States are per-sample primary I/O, as throughout the suite.
"""

from __future__ import annotations

from ..dfg.builder import GraphBuilder
from ..dfg.graph import DFG
from ..dfg.hierarchy import Design

__all__ = ["avenhaus_section_dfg", "avenhaus_cascade_design"]

BEHAVIOR_SECTION = "avenhaus_section"

#: Q8 state-space coefficients (a11, a12, a21, a22, b1, b2, c1, c2, d).
_COEFFS = (180, -90, 90, 180, 40, 25, 120, -60, 30)


def avenhaus_section_dfg(
    name: str = BEHAVIOR_SECTION,
    coeffs: tuple[int, ...] = _COEFFS,
) -> DFG:
    """One state-space section: (x, s1, s2) → (y, s1', s2')."""
    a11, a12, a21, a22, b1, b2, c1, c2, d = coeffs
    b = GraphBuilder(name, behavior=BEHAVIOR_SECTION)
    x, s1, s2 = b.inputs("x", "s1", "s2")

    def k(v: int, tag: str):
        return b.const(v, name=tag)

    s1n = b.add(
        b.add(b.mult(s1, k(a11, "ka11"), name="m11"),
              b.mult(s2, k(a12, "ka12"), name="m12"), name="a1s"),
        b.mult(x, k(b1, "kb1"), name="mb1"),
        name="s1n",
    )
    s2n = b.add(
        b.add(b.mult(s1, k(a21, "ka21"), name="m21"),
              b.mult(s2, k(a22, "ka22"), name="m22"), name="a2s"),
        b.mult(x, k(b2, "kb2"), name="mb2"),
        name="s2n",
    )
    y = b.add(
        b.add(b.mult(s1, k(c1, "kc1"), name="mc1"),
              b.mult(s2, k(c2, "kc2"), name="mc2"), name="cs"),
        b.mult(x, k(d, "kd"), name="md"),
        name="ysum",
    )
    b.output("y", y)
    b.output("s1_next", s1n)
    b.output("s2_next", s2n)
    return b.build()


def avenhaus_cascade_design(n_sections: int = 3) -> Design:
    """Cascade of state-space sections."""
    if n_sections < 1:
        raise ValueError("need at least one section")
    design = Design("avenhaus_cascade")
    design.add_dfg(avenhaus_section_dfg())

    b = GraphBuilder("avenhaus_top")
    x = b.input("x")
    states = [(b.input(f"s1_{i}"), b.input(f"s2_{i}")) for i in range(n_sections)]

    signal = x
    for i in range(n_sections):
        h = b.hier(
            BEHAVIOR_SECTION, signal, states[i][0], states[i][1],
            n_outputs=3, name=f"sec{i}",
        )
        signal = h[0]
        b.output(f"s1_next_{i}", h[1])
        b.output(f"s2_next_{i}", h[2])
    b.output("y", signal)
    design.add_dfg(b.build(), top=True)
    return design
