"""Synthesized module characterization database.

The paper's cells were characterized by pushing them through an MSU
standard-cell / SIS / OCTTOOLS / IRSIM flow.  We have no such flow, so
this module *synthesizes* the characterization data deterministically:
for each cell and each supply voltage it tabulates area, delay and
energy-per-activation using the first-order models of
:mod:`repro.library.voltage`, plus a small, seeded, per-cell "layout
variation" term so the numbers do not look artificially exact (real
characterization tables never do).

Only relative numbers enter the synthesis algorithm, so the substitution
is behaviour-preserving (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .cells import LibraryCell, MUX_CELL, REGISTER_CELL, STANDARD_CELLS
from .voltage import SUPPLY_VOLTAGES, delay_scale, energy_scale

__all__ = ["CharacterizationRow", "CharacterizationTable", "build_characterization",
           "table1_rows"]

#: Peak-to-peak amplitude of the synthetic layout-variation term.
_VARIATION = 0.04


def _variation(cell_name: str, quantity: str) -> float:
    """Deterministic pseudo-random multiplier in [1 - v/2, 1 + v/2].

    Seeded from the cell name and quantity so the 'measured' database is
    stable across runs and machines (no use of global RNG state).
    """
    digest = hashlib.sha256(f"{cell_name}:{quantity}".encode()).digest()
    unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return 1.0 + _VARIATION * (unit - 0.5)


@dataclass(frozen=True)
class CharacterizationRow:
    """Characterized figures for one (cell, Vdd) pair."""

    cell: str
    vdd: float
    area: float
    delay_ns: float
    energy_full_activity: float


class CharacterizationTable:
    """Lookup of characterized rows keyed by (cell name, Vdd)."""

    def __init__(self, rows: list[CharacterizationRow]):
        self._rows = {(r.cell, r.vdd): r for r in rows}

    def row(self, cell: str, vdd: float) -> CharacterizationRow:
        try:
            return self._rows[(cell, vdd)]
        except KeyError:
            raise KeyError(f"no characterization for cell {cell!r} at {vdd} V") from None

    def rows(self) -> list[CharacterizationRow]:
        return list(self._rows.values())

    def cells(self) -> list[str]:
        return sorted({cell for cell, _ in self._rows})

    def __len__(self) -> int:
        return len(self._rows)


def build_characterization(
    cells: list[LibraryCell] | None = None,
    voltages: tuple[float, ...] = SUPPLY_VOLTAGES,
) -> CharacterizationTable:
    """Generate the characterization database for *cells* at *voltages*."""
    if cells is None:
        cells = list(STANDARD_CELLS) + [REGISTER_CELL, MUX_CELL]
    rows = []
    for cell in cells:
        base_area = cell.area * _variation(cell.name, "area")
        base_delay = cell.delay_ns * _variation(cell.name, "delay")
        base_energy = cell.cap * 25.0 * _variation(cell.name, "energy")
        for vdd in voltages:
            rows.append(
                CharacterizationRow(
                    cell=cell.name,
                    vdd=vdd,
                    area=base_area,
                    delay_ns=base_delay * delay_scale(vdd),
                    energy_full_activity=base_energy * energy_scale(vdd),
                )
            )
    return CharacterizationTable(rows)


def table1_rows(clk_ns: float = 10.0, vdd: float = 5.0) -> list[tuple[str, float, int]]:
    """Reproduce Table 1 of the paper: (cell, area, delay in cycles).

    At the paper's operating point (10 ns clock, 5 V) the default cell
    set yields exactly the Table 1 cycle counts: add1 = 1, add2 = 2,
    chained_add2 = 1, chained_add3 = 1, mult1 = 3, mult2 = 5.
    """
    names = ["add1", "add2", "chained_add2", "chained_add3", "mult1", "mult2"]
    by_name = {c.name: c for c in STANDARD_CELLS}
    rows = [
        (name, by_name[name].area, by_name[name].delay_cycles(clk_ns, vdd))
        for name in names
    ]
    rows.append((REGISTER_CELL.name, REGISTER_CELL.area, 0))
    return rows
