"""Simple RTL library cells (functional units, registers, multiplexers).

Each cell carries the three characterization quantities the synthesis
algorithm consumes:

* ``area`` — layout area in normalized units (Table 1's scale),
* ``delay_ns`` — combinational/propagation delay at the 5 V reference,
* ``cap`` — effective switched capacitance per activation; the energy of
  one activation is ``cap * (IDLE_FRACTION + activity) * Vdd²`` where
  *activity* is the average fraction of toggling input bits delivered by
  the trace-driven estimator (:mod:`repro.power.activity`).

Chained cells
-------------
The paper's library contains ``chained_add2``/``chained_add3``: chains
of adders that "complete execution almost as fast as an individual
adder".  A chained cell executes ``chain_length`` dependent operations
of the same type in a single pass; the scheduler treats a chain of DFG
operations mapped to it as one unit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..dfg.ops import Operation
from .voltage import delay_scale, energy_scale

__all__ = [
    "CellKind",
    "LibraryCell",
    "IDLE_FRACTION",
    "STANDARD_CELLS",
    "standard_cells",
    "REGISTER_CELL",
    "MUX_CELL",
]

#: Fraction of full-activity energy a cell burns per activation even with
#: zero input toggling (clock load, glitching floor).
IDLE_FRACTION = 0.15


class CellKind(enum.Enum):
    """Structural role of a cell in the datapath."""

    FUNCTIONAL = "fu"
    REGISTER = "reg"
    MUX = "mux"


@dataclass(frozen=True)
class LibraryCell:
    """One characterized library cell.

    ``ops`` is the set of DFG operations the cell can execute; a
    multi-function ALU lists several.  ``chain_length`` > 1 marks a
    chained cell executing that many dependent same-type operations in
    one activation.
    """

    name: str
    kind: CellKind
    ops: frozenset[Operation]
    area: float
    delay_ns: float
    cap: float
    chain_length: int = 1
    #: Fully pipelined cells accept a new operation every cycle even
    #: though results take ``delay_cycles`` to emerge (initiation
    #: interval of one).  The paper's engine "can support chained,
    #: multi-cycled, and pipelined functional units" (Section 1).
    pipelined: bool = False

    def supports(self, op: Operation) -> bool:
        """True if the cell can execute *op*."""
        return op in self.ops

    def initiation_interval(self, clk_ns: float, vdd: float) -> int:
        """Cycles between successive operation issues on this cell."""
        if self.pipelined:
            return 1
        return self.delay_cycles(clk_ns, vdd)

    def delay_ns_at(self, vdd: float) -> float:
        """Propagation delay at supply *vdd* (first-order CMOS scaling)."""
        return self.delay_ns * delay_scale(vdd)

    def delay_cycles(self, clk_ns: float, vdd: float) -> int:
        """Execution time in whole clock cycles at ``(clk_ns, vdd)``.

        Every activation takes at least one cycle; multicycle units take
        the ceiling of their scaled delay.
        """
        if clk_ns <= 0:
            raise ValueError("clock period must be positive")
        return max(1, math.ceil(self.delay_ns_at(vdd) / clk_ns - 1e-9))

    def energy_per_op(self, vdd: float, activity: float) -> float:
        """Energy of one activation, in capacitance·V² units."""
        activity = min(max(activity, 0.0), 1.0)
        return self.cap * (IDLE_FRACTION + activity) * energy_scale(vdd) * 25.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _fu(name: str, ops: set[Operation], area: float, delay_ns: float, cap: float,
        chain: int = 1) -> LibraryCell:
    return LibraryCell(
        name=name,
        kind=CellKind.FUNCTIONAL,
        ops=frozenset(ops),
        area=area,
        delay_ns=delay_ns,
        cap=cap,
        chain_length=chain,
    )


_ADD_LIKE = {Operation.ADD}
_SUB_LIKE = {Operation.SUB}
_ALU_OPS = {Operation.ADD, Operation.SUB, Operation.NEG, Operation.PASS,
            Operation.MIN, Operation.MAX}
_CMP_OPS = {Operation.LT, Operation.GT}
_SHIFT_OPS = {Operation.LSHIFT, Operation.RSHIFT}


#: The default simple-cell library.  Areas and cycle counts at a 10 ns
#: clock / 5 V reproduce Table 1 of the paper: add1 is the fast large
#: adder (1 cycle, area 30), add2 the small slow one (2 cycles, area 20),
#: chained_add2/3 complete whole adder chains in one cycle, mult1 is the
#: fast multiplier (3 cycles, area 150) and mult2 the slow, markedly
#: lower-power one (5 cycles, area 100).
STANDARD_CELLS: tuple[LibraryCell, ...] = (
    _fu("add1", _ADD_LIKE, area=30.0, delay_ns=9.0, cap=0.80),
    _fu("add2", _ADD_LIKE, area=20.0, delay_ns=18.0, cap=0.55),
    _fu("chained_add2", _ADD_LIKE, area=60.0, delay_ns=9.6, cap=1.50, chain=2),
    _fu("chained_add3", _ADD_LIKE, area=90.0, delay_ns=9.9, cap=2.10, chain=3),
    _fu("sub1", _SUB_LIKE, area=30.0, delay_ns=9.0, cap=0.85),
    _fu("sub2", _SUB_LIKE, area=20.0, delay_ns=18.0, cap=0.60),
    _fu("alu1", _ALU_OPS, area=38.0, delay_ns=9.8, cap=0.95),
    _fu("mult1", {Operation.MULT}, area=150.0, delay_ns=28.0, cap=4.00),
    _fu("mult2", {Operation.MULT}, area=100.0, delay_ns=48.0, cap=2.20),
    # Fully pipelined multiplier: one issue per cycle, three-cycle
    # latency; the pipeline registers cost area and capacitance.
    LibraryCell(
        name="pipe_mult1",
        kind=CellKind.FUNCTIONAL,
        ops=frozenset({Operation.MULT}),
        area=195.0,
        delay_ns=29.0,
        cap=4.60,
        pipelined=True,
    ),
    _fu("cmp1", _CMP_OPS, area=15.0, delay_ns=6.0, cap=0.30),
    _fu("shift1", _SHIFT_OPS, area=14.0, delay_ns=5.0, cap=0.25),
    _fu("neg1", {Operation.NEG, Operation.PASS}, area=12.0, delay_ns=4.5, cap=0.20),
)

#: Storage cell used for every register instance (Table 1's ``reg1``).
REGISTER_CELL = LibraryCell(
    name="reg1",
    kind=CellKind.REGISTER,
    ops=frozenset(),
    area=10.0,
    delay_ns=1.2,
    cap=0.25,
)

#: One 2-to-1 multiplexer leg; an n-input mux costs ``n - 1`` of these.
MUX_CELL = LibraryCell(
    name="mux2",
    kind=CellKind.MUX,
    ops=frozenset(),
    area=7.0,
    delay_ns=0.8,
    cap=0.10,
)


def standard_cells() -> list[LibraryCell]:
    """A fresh list of the default functional-unit cells."""
    return list(STANDARD_CELLS)
