"""Functional-equivalence knowledge for behaviors.

Move A may swap the DFG implementing a hierarchical node for a
*functionally equivalent but structurally different* (anisomorphic) DFG
— "knowledge provided by the user regarding the functional equivalence
of different DFGs" (Section 3).  Two mechanisms carry this knowledge:

1. DFG variants registered under the same behavior name in a
   :class:`~repro.dfg.hierarchy.Design` are equivalent by construction.
2. This registry lets a user additionally declare that two *behavior
   names* are interchangeable (e.g. ``dot3_chain`` ≡ ``dot3_tree``),
   grouping them into one equivalence class.
"""

from __future__ import annotations

__all__ = ["EquivalenceRegistry"]


class EquivalenceRegistry:
    """Union-find over behavior names."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def _find(self, behavior: str) -> str:
        self._parent.setdefault(behavior, behavior)
        root = behavior
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[behavior] != root:
            self._parent[behavior], behavior = root, self._parent[behavior]
        return root

    def declare_equivalent(self, behavior_a: str, behavior_b: str) -> None:
        """Record that two behaviors are functionally interchangeable."""
        root_a, root_b = self._find(behavior_a), self._find(behavior_b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def are_equivalent(self, behavior_a: str, behavior_b: str) -> bool:
        """True if the behaviors are in the same equivalence class."""
        if behavior_a == behavior_b:
            return True
        return self._find(behavior_a) == self._find(behavior_b)

    def equivalence_class(self, behavior: str) -> set[str]:
        """All behaviors known to be equivalent to *behavior*."""
        root = self._find(behavior)
        return {b for b in self._parent if self._find(b) == root}

    def known_behaviors(self) -> set[str]:
        return set(self._parent)
