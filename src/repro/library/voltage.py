"""First-order CMOS supply-voltage scaling model.

The paper performs :math:`V_{dd}` selection jointly with synthesis: at a
lower supply, every cell is slower but switches quadratically less
energy.  H-SYN used characterization data from an MSU standard-cell
flow; we substitute the standard first-order alpha-power model that the
low-power HLS literature of the era (Chandrakasan et al., ref. [4]) is
built on:

* delay(V) ∝ V / (V − Vt)²   (long-channel alpha = 2)
* energy(V) ∝ V²

Both are expressed as scale factors relative to the reference supply
(5 V), which is how the characterization database stores them.
"""

from __future__ import annotations

__all__ = [
    "V_REF",
    "V_THRESHOLD",
    "V_FLOOR",
    "T_REF",
    "SUPPLY_VOLTAGES",
    "delay_scale",
    "energy_scale",
    "min_feasible_vdd",
    "temperature_delay_scale",
    "temperature_energy_scale",
    "vdd_for_delay_scale",
]

#: Lowest practical supply for the era's process (noise margins).
V_FLOOR = 1.2

#: Reference (characterization) supply voltage, volts.
V_REF = 5.0

#: Device threshold voltage, volts.
V_THRESHOLD = 0.8

#: Supply voltages considered during synthesis, highest first.  These are
#: the levels used by the paper's comparison baseline (ref. [10]).
SUPPLY_VOLTAGES: tuple[float, ...] = (5.0, 3.3, 2.4)

#: Reference (characterization) junction temperature, °C.
T_REF = 25.0

#: First-order temperature derating coefficients, per °C away from
#: :data:`T_REF`.  Carrier mobility degrades with temperature, so hot
#: silicon is slower (the classic slow corner pairs low supply with high
#: temperature); dynamic energy is only weakly temperature-dependent —
#: a small residual term covers short-circuit current growth.  The
#: linearization is valid over the industrial/automotive range the
#: corner sweep uses (−40 °C … 125 °C).
TEMP_DELAY_COEFF = 0.0013
TEMP_ENERGY_COEFF = 0.0002


def temperature_delay_scale(temp_c: float, tref: float = T_REF) -> float:
    """Cell delay multiplier at *temp_c* relative to *tref*.

    ``temperature_delay_scale(T_REF) == 1.0``; hotter junctions give
    factors > 1 (mobility degradation), colder ones < 1.
    """
    return 1.0 + TEMP_DELAY_COEFF * (temp_c - tref)


def temperature_energy_scale(temp_c: float, tref: float = T_REF) -> float:
    """Switched-energy multiplier at *temp_c* relative to *tref*."""
    return 1.0 + TEMP_ENERGY_COEFF * (temp_c - tref)


def _raw_delay(vdd: float, vt: float) -> float:
    return vdd / (vdd - vt) ** 2


def delay_scale(vdd: float, vt: float = V_THRESHOLD, vref: float = V_REF) -> float:
    """Cell delay multiplier at *vdd* relative to *vref*.

    ``delay_scale(5.0) == 1.0``; lower supplies give factors > 1.
    """
    if vdd <= vt:
        raise ValueError(f"supply {vdd} V is not above the threshold {vt} V")
    return _raw_delay(vdd, vt) / _raw_delay(vref, vt)


def energy_scale(vdd: float, vref: float = V_REF) -> float:
    """Switched-energy multiplier at *vdd* relative to *vref* (V²/Vref²)."""
    if vdd <= 0:
        raise ValueError("supply voltage must be positive")
    return (vdd / vref) ** 2


def vdd_for_delay_scale(
    target_scale: float,
    vt: float = V_THRESHOLD,
    vref: float = V_REF,
    floor: float = V_FLOOR,
) -> float | None:
    """Lowest (continuous) supply whose delay factor stays ≤ *target_scale*.

    Inverts the monotone-decreasing delay_scale(v) on [floor, vref] by
    bisection.  Returns ``None`` when even *vref* misses the target
    (target < 1) and *floor* when the target exceeds the floor's factor.
    Used to scale a supply "to just meet the sampling period constraint"
    (Table 4's Vdd-sc column).
    """
    if target_scale < 1.0:
        return None
    if delay_scale(floor, vt=vt, vref=vref) <= target_scale:
        return floor
    lo, hi = floor, vref  # delay_scale(lo) > target >= delay_scale(hi)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if delay_scale(mid, vt=vt, vref=vref) > target_scale:
            lo = mid
        else:
            hi = mid
    return hi


def min_feasible_vdd(
    critical_path_ns_at_ref: float,
    budget_ns: float,
    voltages: tuple[float, ...] = SUPPLY_VOLTAGES,
    vt: float = V_THRESHOLD,
) -> float | None:
    """Lowest supply at which a path fitting ``budget_ns`` at 5 V still fits.

    This is the *voltage scaling* applied to area-optimized circuits in
    Table 3: drop the supply as far as the slack allows.  Returns
    ``None`` when even the highest supply misses the budget.
    """
    feasible = [
        v
        for v in voltages
        if critical_path_ns_at_ref * delay_scale(v, vt=vt) <= budget_ns + 1e-9
    ]
    if not feasible:
        return None
    return min(feasible)
