"""The module library: simple cells plus complex RTL modules.

This is the ``LIBRARY L`` input of the paper's SYNTHESIZE procedure
(Figure 4).  It answers the queries the moves need:

* move A on a simple unit: "which cells can execute this operation, and
  which is fastest / smallest / lowest-power?";
* move A on a hierarchical node: "which complex RTL modules implement a
  behavior equivalent to this node's, and what are their profiles?";
* initial solution: "the fastest implementation of everything".

Complex modules are stored duck-typed (anything exposing ``name`` and
``behavior``); concretely they are
:class:`repro.rtl.module.RTLModule` instances, registered either by the
user or by the synthesis engine itself when it publishes a resynthesized
module back to the library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..dfg.ops import Operation
from ..errors import LibraryError
from .cells import LibraryCell, MUX_CELL, REGISTER_CELL, standard_cells
from .equivalence import EquivalenceRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rtl.module import RTLModule

__all__ = ["ModuleLibrary", "default_library"]


class ModuleLibrary:
    """Library of simple cells and complex RTL modules."""

    def __init__(
        self,
        cells: Iterable[LibraryCell] | None = None,
        register_cell: LibraryCell = REGISTER_CELL,
        mux_cell: LibraryCell = MUX_CELL,
    ):
        self._cells: dict[str, LibraryCell] = {}
        self.register_cell = register_cell
        self.mux_cell = mux_cell
        self.equivalences = EquivalenceRegistry()
        self._complex: dict[str, list["RTLModule"]] = {}
        for cell in cells if cells is not None else standard_cells():
            self.add_cell(cell)

    # ------------------------------------------------------------------
    # Simple cells
    # ------------------------------------------------------------------
    def add_cell(self, cell: LibraryCell) -> None:
        """Register a functional-unit cell."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell

    def cell(self, name: str) -> LibraryCell:
        """Look up a cell by name (register and mux cells included)."""
        if name == self.register_cell.name:
            return self.register_cell
        if name == self.mux_cell.name:
            return self.mux_cell
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(f"unknown library cell {name!r}") from None

    def cells(self) -> list[LibraryCell]:
        return list(self._cells.values())

    def cells_for(self, op: Operation, max_chain: int | None = None) -> list[LibraryCell]:
        """All cells able to execute *op* (optionally bounding chain length)."""
        found = [c for c in self._cells.values() if c.supports(op)]
        if max_chain is not None:
            found = [c for c in found if c.chain_length <= max_chain]
        return found

    def _pick(self, op: Operation, key, chainable: bool) -> LibraryCell:
        candidates = self.cells_for(op, max_chain=None if chainable else 1)
        if not candidates:
            raise LibraryError(f"no library cell implements operation {op}")
        return min(candidates, key=key)

    def fastest_cell(self, op: Operation, chainable: bool = False) -> LibraryCell:
        """Fastest cell for *op* (area breaks ties); used by INITIAL_SOLUTION."""
        return self._pick(op, key=lambda c: (c.delay_ns, c.area), chainable=chainable)

    def smallest_cell(self, op: Operation) -> LibraryCell:
        """Smallest-area cell for *op* (delay breaks ties)."""
        return self._pick(op, key=lambda c: (c.area, c.delay_ns), chainable=False)

    def lowest_power_cell(self, op: Operation) -> LibraryCell:
        """Lowest switched-capacitance cell for *op*."""
        return self._pick(op, key=lambda c: (c.cap, c.area), chainable=False)

    # ------------------------------------------------------------------
    # Complex RTL modules
    # ------------------------------------------------------------------
    def add_complex_module(self, module: "RTLModule") -> None:
        """Register a complex RTL module under its behavior."""
        self._complex.setdefault(module.behavior, []).append(module)

    def complex_modules_for(self, behavior: str) -> list["RTLModule"]:
        """Complex modules implementing *behavior* or any equivalent behavior."""
        names = self.equivalences.equivalence_class(behavior) | {behavior}
        found: list["RTLModule"] = []
        for name in names:
            found.extend(self._complex.get(name, []))
        return found

    def complex_behaviors(self) -> list[str]:
        return list(self._complex)

    def n_complex_modules(self) -> int:
        return sum(len(mods) for mods in self._complex.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModuleLibrary({len(self._cells)} cells, "
            f"{self.n_complex_modules()} complex modules)"
        )


def default_library() -> ModuleLibrary:
    """The default library: the Table 1 cell set, no complex modules."""
    return ModuleLibrary()
