"""Module library substrate: cells, characterization, voltage scaling.

The paper's algorithm consumes a library of *simple* modules (adders,
multipliers, Table 1) and *complex* RTL modules (Figure 2).  This
package provides the cell models, the synthesized characterization
database that replaces the paper's standard-cell flow, the CMOS
voltage-scaling model used for joint Vdd selection, and the
functional-equivalence registry exploited by move A.
"""

from .cells import (
    CellKind,
    IDLE_FRACTION,
    LibraryCell,
    MUX_CELL,
    REGISTER_CELL,
    STANDARD_CELLS,
    standard_cells,
)
from .characterize import (
    CharacterizationRow,
    CharacterizationTable,
    build_characterization,
    table1_rows,
)
from .equivalence import EquivalenceRegistry
from .library import ModuleLibrary, default_library
from .voltage import (
    SUPPLY_VOLTAGES,
    V_REF,
    V_THRESHOLD,
    delay_scale,
    energy_scale,
    min_feasible_vdd,
)

__all__ = [
    "CellKind",
    "CharacterizationRow",
    "CharacterizationTable",
    "EquivalenceRegistry",
    "IDLE_FRACTION",
    "LibraryCell",
    "ModuleLibrary",
    "MUX_CELL",
    "REGISTER_CELL",
    "STANDARD_CELLS",
    "SUPPLY_VOLTAGES",
    "V_REF",
    "V_THRESHOLD",
    "build_characterization",
    "default_library",
    "delay_scale",
    "energy_scale",
    "min_feasible_vdd",
    "standard_cells",
    "table1_rows",
]
