"""Run telemetry: counters and wall-time for the synthesis engine.

One :class:`Telemetry` instance travels with a synthesis run (owned by
the :class:`~repro.synthesis.context.SynthesisEnv`) and records what the
engine actually did: how many candidate solutions were priced, how often
the memoized cost cache answered instead of a full netlist-rebuild +
power-estimation pass, which move families (A/B/C/D) were tried and
committed, and where the wall-clock went stage by stage.

Telemetry objects are plain data — picklable and **mergeable** — so the
parallel operating-point sweep can collect one per worker process and
fold them into the run-level totals.  They are surfaced on
:class:`~repro.synthesis.api.SynthesisResult`, in the JSON export, and
behind the CLI's ``--stats`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Telemetry", "move_family"]


def move_family(kind: str) -> str:
    """Collapse a candidate kind (``"C-share-fu"``) to its family (``"C"``)."""
    return kind.split("-", 1)[0]


@dataclass
class Telemetry:
    """Counters and timings for one synthesis run (or one sweep point)."""

    #: Total ``EvaluationContext.evaluate()`` calls (hits + misses).
    evaluations: int = 0
    #: Evaluations answered from the fingerprint-keyed cost cache.
    cache_hits: int = 0
    #: Full evaluations (netlist rebuild + power estimation).
    cache_misses: int = 0
    #: Cache misses priced incrementally: at least one stream-derived
    #: energy term was reused from the base solution's breakdown.
    delta_hits: int = 0
    #: Cache misses where a base breakdown was offered but no term
    #: matched (schedule/structure changed too much) — automatic
    #: fall-back to a from-scratch evaluation.
    delta_fallbacks: int = 0
    #: Cache misses priced entirely from scratch (no base breakdown).
    full_evals: int = 0
    #: Candidates discarded before pricing, keyed by family (dominance
    #: and feasibility pruning in :mod:`repro.synthesis.moves`).
    moves_pruned: dict[str, int] = field(default_factory=dict)
    #: Candidates discovered per generation round, keyed by full *kind*
    #: (``"A-cell"``, ``"C-share-fu"``, ...) rather than collapsed
    #: family: the per-family cap apportionment in
    #: :func:`~repro.synthesis.moves.sharing_candidates` is only
    #: observable at kind granularity.  Counted before pruning, and
    #: identical whichever discovery engine (relational or legacy
    #: loops) produced the set.
    moves_discovered: dict[str, int] = field(default_factory=dict)
    #: Discovered candidates whose :class:`~repro.synthesis.moves.
    #: Candidate` actually materialized a mutated ``Solution`` clone,
    #: keyed by kind.  The legacy loops materialize eagerly (equal to
    #: ``moves_discovered``); the relational engine defers cloning
    #: until pricing, so the gap between the two counters is the
    #: number of clones lazy materialization avoided.
    moves_materialized: dict[str, int] = field(default_factory=dict)
    #: Operating points explored / skipped as structurally hopeless.
    points_explored: int = 0
    points_skipped: int = 0
    #: Candidate moves priced, keyed by family ("A", "B", "C", "D").
    moves_tried: dict[str, int] = field(default_factory=dict)
    #: Moves in committed KL prefixes, keyed by family.
    moves_committed: dict[str, int] = field(default_factory=dict)
    #: Differential RTL checks run / failed (``verify_moves`` and the
    #: ``--verify`` CLI flag; see :mod:`repro.verify`).
    verify_checks: int = 0
    verify_failures: int = 0
    #: Wall seconds per stage ("simulate", "initial", "improve", ...).
    stage_s: dict[str, float] = field(default_factory=dict)
    #: Tiered synthesis-store counters, keyed ``"{tier}.{namespace}"``
    #: (e.g. ``"point.resynth"``, ``"run.module"``,
    #: ``"persistent.schedule"``); written by the bound
    #: :class:`~repro.synthesis.store.SynthesisStore`.
    store_hits: dict[str, int] = field(default_factory=dict)
    store_misses: dict[str, int] = field(default_factory=dict)
    store_evictions: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def count_move_tried(self, kind: str, n: int = 1) -> None:
        """Record ``n`` candidates of ``kind`` generated (by family)."""
        family = move_family(kind)
        self.moves_tried[family] = self.moves_tried.get(family, 0) + n

    def count_move_committed(self, kind: str, n: int = 1) -> None:
        """Record ``n`` moves of ``kind`` surviving a committed prefix."""
        family = move_family(kind)
        self.moves_committed[family] = self.moves_committed.get(family, 0) + n

    def count_move_pruned(self, kind: str, n: int = 1) -> None:
        """Record ``n`` candidates of ``kind`` discarded before pricing."""
        family = move_family(kind)
        self.moves_pruned[family] = self.moves_pruned.get(family, 0) + n

    def count_move_discovered(self, kind: str, n: int = 1) -> None:
        """Record ``n`` candidates of ``kind`` discovered (pre-pruning)."""
        self.moves_discovered[kind] = self.moves_discovered.get(kind, 0) + n

    def count_move_materialized(self, kind: str, n: int = 1) -> None:
        """Record ``n`` candidate solutions actually cloned/built."""
        self.moves_materialized[kind] = self.moves_materialized.get(kind, 0) + n

    def add_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock seconds against a named stage."""
        self.stage_s[stage] = self.stage_s.get(stage, 0.0) + seconds

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluations served by the cost cache (0 when idle)."""
        if self.evaluations == 0:
            return 0.0
        return self.cache_hits / self.evaluations

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of cache misses priced incrementally (0 when idle)."""
        if self.cache_misses == 0:
            return 0.0
        return self.delta_hits / self.cache_misses

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold *other*'s counts into this instance (returns self)."""
        self.evaluations += other.evaluations
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.delta_hits += other.delta_hits
        self.delta_fallbacks += other.delta_fallbacks
        self.full_evals += other.full_evals
        self.points_explored += other.points_explored
        self.points_skipped += other.points_skipped
        for family, n in other.moves_tried.items():
            self.moves_tried[family] = self.moves_tried.get(family, 0) + n
        for family, n in other.moves_committed.items():
            self.moves_committed[family] = self.moves_committed.get(family, 0) + n
        for family, n in other.moves_pruned.items():
            self.moves_pruned[family] = self.moves_pruned.get(family, 0) + n
        for kind, n in other.moves_discovered.items():
            self.moves_discovered[kind] = self.moves_discovered.get(kind, 0) + n
        for kind, n in other.moves_materialized.items():
            self.moves_materialized[kind] = (
                self.moves_materialized.get(kind, 0) + n
            )
        self.verify_checks += other.verify_checks
        self.verify_failures += other.verify_failures
        for stage, s in other.stage_s.items():
            self.add_time(stage, s)
        for mine, theirs in (
            (self.store_hits, other.store_hits),
            (self.store_misses, other.store_misses),
            (self.store_evictions, other.store_evictions),
        ):
            for key, n in theirs.items():
                mine[key] = mine.get(key, 0) + n
        return self

    def as_dict(self) -> dict[str, Any]:
        """Plain-data view (JSON export and the CLI ``--stats`` output)."""
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "delta_hits": self.delta_hits,
            "delta_fallbacks": self.delta_fallbacks,
            "full_evals": self.full_evals,
            "delta_hit_rate": self.delta_hit_rate,
            "points_explored": self.points_explored,
            "points_skipped": self.points_skipped,
            "moves_tried": dict(sorted(self.moves_tried.items())),
            "moves_committed": dict(sorted(self.moves_committed.items())),
            "moves_pruned": dict(sorted(self.moves_pruned.items())),
            "moves_discovered": dict(sorted(self.moves_discovered.items())),
            "moves_materialized": dict(sorted(self.moves_materialized.items())),
            "verify": {
                "checks": self.verify_checks,
                "failures": self.verify_failures,
            },
            "stage_s": {k: round(v, 6) for k, v in sorted(self.stage_s.items())},
            "store_hits": dict(sorted(self.store_hits.items())),
            "store_misses": dict(sorted(self.store_misses.items())),
            "store_evictions": dict(sorted(self.store_evictions.items())),
        }
