"""Flattening of hierarchical designs.

The paper compares hierarchical synthesis against *flattened* synthesis
of the same behavior (the algorithm of ref. [10] run on the fully
expanded DFG).  This module performs that expansion: every hierarchical
node is recursively inlined with one of its behavior's DFG variants.

Inlined node ids are prefixed with the hierarchical node's id and a
``/`` separator, so the flattened graph remains traceable to the
hierarchy (``h3/m1`` is node ``m1`` of the sub-DFG instantiated by
hierarchical node ``h3``).
"""

from __future__ import annotations

from typing import Callable

from ..errors import DFGError
from .graph import DFG, Node, NodeKind, Signal
from .hierarchy import Design

__all__ = ["flatten"]

ChooseFn = Callable[[str], DFG]


def flatten(design: Design, choose: ChooseFn | None = None, name: str | None = None) -> DFG:
    """Fully expand *design*'s top-level DFG into a flat DFG.

    Parameters
    ----------
    design:
        The hierarchical design.
    choose:
        Optional policy mapping a behavior name to the DFG variant used
        to expand it; defaults to the design's first registered variant.
    name:
        Name for the resulting graph (default ``"<top>_flat"``).
    """
    if choose is None:
        choose = design.default_variant

    cache: dict[str, DFG] = {}

    def flat_of(dfg: DFG) -> DFG:
        """Return a fully flattened copy of *dfg* (memoized by name)."""
        if dfg.name in cache:
            return cache[dfg.name]
        if not dfg.hier_nodes():
            cache[dfg.name] = dfg
            return dfg
        result = _inline_all(dfg, choose, flat_of)
        cache[dfg.name] = result
        return result

    flat = flat_of(design.top).copy(name or f"{design.top_name}_flat")
    flat.behavior = design.top.behavior
    return flat


def _copy_plain_node(out: DFG, node: Node, node_id: str) -> None:
    """Copy a non-hierarchical, non-interface node into *out* under *node_id*."""
    if node.kind == NodeKind.CONST:
        assert node.value is not None
        out.add_const(node_id, node.value, width=node.width)
    elif node.kind == NodeKind.OP:
        assert node.op is not None
        out.add_op(node_id, node.op, width=node.width)
    else:  # pragma: no cover - guarded by callers
        raise DFGError(f"cannot copy node of kind {node.kind}")


def _inline_all(dfg: DFG, choose: ChooseFn, flat_of: Callable[[DFG], DFG]) -> DFG:
    """Inline every hierarchical node of *dfg* (sub-DFGs flattened first)."""
    out = DFG(dfg.name, behavior=dfg.behavior)
    #: Maps a signal of *dfg* to the corresponding signal of *out*.
    sigmap: dict[Signal, Signal] = {}

    def resolve(signal: Signal) -> Signal:
        try:
            return sigmap[signal]
        except KeyError:
            raise DFGError(
                f"flatten: unresolved signal {signal!r} in {dfg.name!r}"
            ) from None

    for nid in dfg.topo_order():
        node = dfg.node(nid)
        if node.kind == NodeKind.INPUT:
            out.add_input(nid, width=node.width)
            sigmap[(nid, 0)] = (nid, 0)
        elif node.kind == NodeKind.CONST:
            _copy_plain_node(out, node, nid)
            sigmap[(nid, 0)] = (nid, 0)
        elif node.kind == NodeKind.OP:
            _copy_plain_node(out, node, nid)
            for edge in dfg.in_edges(nid):
                src, src_port = resolve(edge.signal)
                out.connect(src, src_port, nid, edge.dst_port)
            sigmap[(nid, 0)] = (nid, 0)
        elif node.kind == NodeKind.OUTPUT:
            out.add_output(nid, width=node.width)
            (edge,) = dfg.in_edges(nid)
            src, src_port = resolve(edge.signal)
            out.connect(src, src_port, nid, 0)
        elif node.kind == NodeKind.HIER:
            assert node.behavior is not None
            sub = flat_of(choose(node.behavior))
            _inline_one(out, dfg, nid, sub, sigmap, resolve)
        else:  # pragma: no cover
            raise DFGError(f"unknown node kind {node.kind}")
    return out


def _inline_one(
    out: DFG,
    parent: DFG,
    hier_id: str,
    sub: DFG,
    sigmap: dict[Signal, Signal],
    resolve: Callable[[Signal], Signal],
) -> None:
    """Splice flat sub-DFG *sub* into *out* in place of node *hier_id*."""
    #: Maps a signal of *sub* to a signal of *out*.
    submap: dict[Signal, Signal] = {}

    # Sub-DFG inputs are aliases for whatever feeds the hierarchical node.
    for port, sub_input in enumerate(sub.inputs):
        ports = {e.dst_port: e for e in parent.in_edges(hier_id)}
        if port not in ports:
            raise DFGError(
                f"input port {port} of hierarchical node {hier_id!r} is undriven"
            )
        submap[(sub_input, 0)] = resolve(ports[port].signal)

    for nid in sub.topo_order():
        node = sub.node(nid)
        if node.kind in (NodeKind.INPUT, NodeKind.OUTPUT):
            continue
        if node.kind == NodeKind.HIER:  # pragma: no cover - sub is flat
            raise DFGError("flatten: sub-DFG was expected to be flat")
        new_id = f"{hier_id}/{nid}"
        _copy_plain_node(out, node, new_id)
        if node.kind == NodeKind.OP:
            for edge in sub.in_edges(nid):
                src, src_port = submap[edge.signal]
                out.connect(src, src_port, new_id, edge.dst_port)
        submap[(nid, 0)] = (new_id, 0)

    # The hierarchical node's output port j is the signal driving the
    # sub-DFG's j-th primary output.
    for port, sub_output in enumerate(sub.outputs):
        (edge,) = sub.in_edges(sub_output)
        sigmap[(hier_id, port)] = submap[edge.signal]
