"""Graph analyses shared by scheduling, pruning and reporting.

These are pure functions of the DFG topology plus a caller-supplied
delay model, so they live in the DFG package rather than the scheduler.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from .graph import DFG, Node, NodeKind
from .ops import Operation

__all__ = [
    "asap_levels",
    "critical_path_length",
    "op_histogram",
    "longest_input_output_distance",
]

DelayFn = Callable[[Node], float]


def asap_levels(dfg: DFG, delay_of: DelayFn) -> dict[str, float]:
    """Earliest start time of every node under unconstrained resources.

    ``delay_of`` gives the execution time of each node in arbitrary
    units (cycles or nanoseconds); non-computing nodes take zero time.
    """
    start: dict[str, float] = {}
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        earliest = 0.0
        for edge in dfg.in_edges(nid):
            pred = dfg.node(edge.src)
            pred_delay = delay_of(pred) if pred.is_operation else 0.0
            earliest = max(earliest, start[edge.src] + pred_delay)
        start[nid] = earliest
    return start


def critical_path_length(dfg: DFG, delay_of: DelayFn) -> float:
    """Length of the longest input-to-output path under ``delay_of``.

    This is the minimum achievable sampling period with unlimited
    resources, i.e. the denominator of the paper's *laxity factor*.
    """
    start = asap_levels(dfg, delay_of)
    finish = 0.0
    for nid, t in start.items():
        node = dfg.node(nid)
        d = delay_of(node) if node.is_operation else 0.0
        finish = max(finish, t + d)
    return finish


def op_histogram(dfg: DFG) -> Counter:
    """Count simple operations by type (hierarchical nodes by behavior)."""
    hist: Counter = Counter()
    for node in dfg.operation_nodes():
        if node.kind == NodeKind.OP:
            assert node.op is not None
            hist[node.op] += 1
        else:
            hist[f"hier:{node.behavior}"] += 1
    return hist


def longest_input_output_distance(dfg: DFG) -> int:
    """Longest path measured in number of computing nodes.

    A quick structural size metric used when pruning clock periods: it
    bounds how many sequential operations any schedule must serialize.
    """
    depth: dict[str, int] = {}
    best = 0
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        here = max((depth[e.src] for e in dfg.in_edges(nid)), default=0)
        depth[nid] = here + (1 if node.is_operation else 0)
        best = max(best, depth[nid])
    return best
