"""Deriving hierarchy from flattened behavioral descriptions.

Section 1 of the paper splits hierarchical HLS into two subproblems:
(i) *deriving hierarchical information from a flattened behavioral
description*, and (ii) synthesizing from the hierarchy.  The paper
solves (ii); this module provides a working solution to (i) so the
library covers the full flow end to end.

Approach
--------
1. **Convex clustering** — operations are greedily grouped, in
   topological order, into clusters of bounded size.  A cluster must
   stay *convex*: no path may leave the cluster and re-enter it,
   otherwise the cluster cannot be scheduled as one atomic hierarchical
   node (its inputs would depend on its own outputs).
2. **Isomorphism folding** — clusters whose extracted DFGs are
   structurally identical (checked exactly with
   :func:`networkx.algorithms.isomorphism`, after a cheap
   Weisfeiler–Lehman hash pre-filter) are mapped onto one shared
   behavior, exactly the replicated-block structure hierarchical
   synthesis exploits (one RTL module serving many nodes).

The result is a :class:`~repro.dfg.hierarchy.Design` whose flattening
is functionally identical to the input — a property the test suite
verifies by bit-true simulation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import networkx as nx

from ..errors import DFGError
from .graph import DFG, NodeKind, Signal
from .hierarchy import Design

__all__ = ["hierarchize", "convex_clusters", "clusters_isomorphic"]


# ----------------------------------------------------------------------
# Clustering
# ----------------------------------------------------------------------

def _op_graph(dfg: DFG) -> nx.DiGraph:
    """Directed graph over operation nodes only."""
    graph = nx.DiGraph()
    for node in dfg.operation_nodes():
        graph.add_node(node.node_id)
    for edge in dfg.edges():
        if dfg.node(edge.src).is_operation and dfg.node(edge.dst).is_operation:
            graph.add_edge(edge.src, edge.dst)
    return graph


def _is_convex(graph: nx.DiGraph, cluster: set[str]) -> bool:
    """No path may exit the cluster and come back.

    Equivalent check: no node outside the cluster lies on a path from a
    cluster node to a cluster node, i.e. descendants(cluster) ∩
    ancestors(cluster) ⊆ cluster.
    """
    outside_between: set[str] = set()
    descendants: set[str] = set()
    for node in cluster:
        descendants.update(nx.descendants(graph, node))
    descendants -= cluster
    for node in descendants:
        if any(succ in cluster for succ in nx.descendants(graph, node)):
            outside_between.add(node)
            break
    return not outside_between


def _quotient_acyclic(
    graph: nx.DiGraph, cluster_of: dict[str, int], trial: dict[str, int]
) -> bool:
    """The contracted (one node per cluster) graph must stay a DAG.

    This is strictly stronger than per-cluster convexity: two
    individually convex clusters can still feed each other (A→B and
    B→A through unconnected members), which would deadlock atomic
    hierarchical nodes.  ``trial`` overrides assignments for the nodes
    being (re)placed.
    """
    quotient = nx.DiGraph()
    assignment = dict(cluster_of)
    assignment.update(trial)
    for src, dst in graph.edges:
        cs = assignment.get(src)
        cd = assignment.get(dst)
        if cs is None or cd is None or cs == cd:
            continue
        quotient.add_edge(cs, cd)
    return nx.is_directed_acyclic_graph(quotient)


def convex_clusters(
    dfg: DFG, max_cluster_size: int = 8, min_cluster_size: int = 2
) -> list[list[str]]:
    """Greedy convex clustering of a flat DFG's operations.

    Operations are visited in topological order; each joins the cluster
    of one of its operation predecessors when the merged cluster stays
    within ``max_cluster_size`` and convex, otherwise it seeds a new
    cluster.  Clusters smaller than ``min_cluster_size`` are returned
    as singletons (they stay plain operations in the hierarchy).
    """
    if dfg.hier_nodes():
        raise DFGError("convex_clusters expects a flat DFG")
    graph = _op_graph(dfg)
    cluster_of: dict[str, int] = {}
    members: dict[int, set[str]] = {}
    next_id = 0

    for nid in dfg.topo_order():
        if not dfg.node(nid).is_operation:
            continue
        # Candidate clusters: those of operation predecessors.
        candidates: list[int] = []
        for pred in graph.predecessors(nid):
            cid = cluster_of[pred]
            if cid not in candidates:
                candidates.append(cid)
        placed = False
        # Prefer the fullest predecessor cluster (densest packing).
        candidates.sort(key=lambda c: -len(members[c]))
        for cid in candidates:
            merged = members[cid] | {nid}
            if len(merged) > max_cluster_size:
                continue
            if _is_convex(graph, merged) and _quotient_acyclic(
                graph, cluster_of, {nid: cid}
            ):
                members[cid].add(nid)
                cluster_of[nid] = cid
                placed = True
                break
        if not placed:
            members[next_id] = {nid}
            cluster_of[nid] = next_id
            next_id += 1

    _repair_quotient_cycles(graph, members, cluster_of)

    ordered: list[list[str]] = []
    order_index = {nid: i for i, nid in enumerate(dfg.topo_order())}
    for cid in sorted(members, key=lambda c: min(order_index[n] for n in members[c])):
        ordered.append(sorted(members[cid], key=lambda n: order_index[n]))
    return ordered


def _repair_quotient_cycles(
    graph: nx.DiGraph,
    members: dict[int, set[str]],
    cluster_of: dict[str, int],
) -> None:
    """Break residual quotient cycles by dissolving clusters.

    The greedy growth checks acyclicity on every merge, but a *new
    singleton* placed later can still close a cycle through two earlier
    clusters (it is never merged, so it is never checked).  Dissolving
    the largest cluster on each remaining cycle into singletons strictly
    reduces total cluster mass, so this terminates — in the worst case
    at the original flat graph, which is a DAG.
    """
    while True:
        quotient = nx.DiGraph()
        quotient.add_nodes_from(members)
        for src, dst in graph.edges:
            cs, cd = cluster_of[src], cluster_of[dst]
            if cs != cd:
                quotient.add_edge(cs, cd)
        try:
            cycle = nx.find_cycle(quotient)
        except nx.NetworkXNoCycle:
            return
        on_cycle = {u for u, _v in cycle}
        victim = max(on_cycle, key=lambda c: (len(members[c]), c))
        nodes = sorted(members.pop(victim))
        next_id = max(members, default=victim) + 1
        for node in nodes:
            members[next_id] = {node}
            cluster_of[node] = next_id
            next_id += 1


# ----------------------------------------------------------------------
# Cluster extraction and isomorphism folding
# ----------------------------------------------------------------------

@dataclass
class _Cluster:
    """A cluster plus its interface, ready to become a behavior."""

    nodes: list[str]
    #: External signals consumed, in a canonical order.
    inputs: list[Signal]
    #: Internal signals visible outside, in a canonical order.
    outputs: list[Signal]
    body: DFG


def _extract_cluster(dfg: DFG, nodes: list[str], name: str) -> _Cluster:
    """Build the sub-DFG a cluster implements, plus its port lists."""
    inside = set(nodes)
    inputs: list[Signal] = []
    for nid in nodes:
        for edge in dfg.in_edges(nid):
            src_node = dfg.node(edge.src)
            if edge.src in inside or src_node.kind == NodeKind.CONST:
                continue
            if edge.signal not in inputs:
                inputs.append(edge.signal)
    outputs: list[Signal] = []
    for nid in nodes:
        node = dfg.node(nid)
        for port in range(node.n_outputs):
            signal = (nid, port)
            for consumer in dfg.consumers(signal):
                if consumer.dst not in inside:
                    if signal not in outputs:
                        outputs.append(signal)
                    break

    body = DFG(name, behavior=name)
    for idx, _signal in enumerate(inputs):
        body.add_input(f"in{idx}")
    sig_map: dict[Signal, Signal] = {s: (f"in{i}", 0) for i, s in enumerate(inputs)}
    for nid in nodes:
        node = dfg.node(nid)
        if node.kind != NodeKind.OP:
            raise DFGError("clusters may only contain simple operations")
        assert node.op is not None
        body.add_op(nid, node.op, width=node.width)
        for edge in dfg.in_edges(nid):
            src_node = dfg.node(edge.src)
            if src_node.kind == NodeKind.CONST:
                const_id = f"k_{edge.src}"
                if not body.has_node(const_id):
                    assert src_node.value is not None
                    body.add_const(const_id, src_node.value, width=src_node.width)
                body.connect(const_id, 0, nid, edge.dst_port)
            else:
                src, src_port = sig_map[edge.signal]
                body.connect(src, src_port, nid, edge.dst_port)
        sig_map[(nid, 0)] = (nid, 0)
    for idx, signal in enumerate(outputs):
        body.add_output(f"out{idx}")
        src, src_port = sig_map[signal]
        body.connect(src, src_port, f"out{idx}", 0)
    return _Cluster(nodes, inputs, outputs, body)


def _body_graph(body: DFG) -> nx.DiGraph:
    graph = nx.DiGraph()
    for node in body.nodes():
        label = node.kind.value
        if node.kind == NodeKind.OP:
            label = f"op:{node.op}"
        elif node.kind == NodeKind.CONST:
            label = f"const:{node.value}"
        elif node.kind == NodeKind.INPUT:
            label = f"in:{body.inputs.index(node.node_id)}"
        elif node.kind == NodeKind.OUTPUT:
            label = f"out:{body.outputs.index(node.node_id)}"
        graph.add_node(node.node_id, label=label)
    for edge in body.edges():
        graph.add_edge(edge.src, edge.dst, port=edge.dst_port)
    return graph


def clusters_isomorphic(body_a: DFG, body_b: DFG) -> bool:
    """Exact structural equality of two cluster bodies.

    Port-exact: primary inputs/outputs match positionally, operations
    by type, constants by value, edges by destination port — so two
    isomorphic bodies are interchangeable implementations of one
    behavior.
    """
    ga, gb = _body_graph(body_a), _body_graph(body_b)
    with warnings.catch_warnings():
        # networkx >= 3.5 warns that directed WL hashes changed; we only
        # ever compare hashes computed by the same version, as a
        # pre-filter before the exact isomorphism check.
        warnings.simplefilter("ignore", UserWarning)
        hash_a = nx.weisfeiler_lehman_graph_hash(ga, node_attr="label", edge_attr="port")
        hash_b = nx.weisfeiler_lehman_graph_hash(gb, node_attr="label", edge_attr="port")
    if hash_a != hash_b:
        return False
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        ga,
        gb,
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["port"] == b["port"],
    )
    return matcher.is_isomorphic()


def hierarchize(
    dfg: DFG,
    max_cluster_size: int = 8,
    min_cluster_size: int = 2,
    name: str | None = None,
) -> Design:
    """Derive a hierarchical design from a flat DFG (subproblem (i)).

    Clusters of at least ``min_cluster_size`` operations become
    behaviors (isomorphic clusters share one); smaller clusters stay as
    plain operations at the top level.  Flattening the result is
    functionally identical to the input DFG.
    """
    clusters = convex_clusters(dfg, max_cluster_size, min_cluster_size)
    design = Design(name or f"{dfg.name}_hier")

    extracted: list[_Cluster | None] = []
    behavior_reps: list[tuple[str, _Cluster]] = []
    cluster_behavior: dict[int, str] = {}
    for idx, nodes in enumerate(clusters):
        if len(nodes) < min_cluster_size:
            extracted.append(None)
            continue
        cluster = _extract_cluster(dfg, nodes, f"block{len(behavior_reps)}")
        if not cluster.inputs or not cluster.outputs:
            # Const-only feeds or dead code: a hierarchical node needs at
            # least one input and one output, so these stay plain ops.
            extracted.append(None)
            continue
        matched = None
        for behavior, representative in behavior_reps:
            if (
                len(representative.inputs) == len(cluster.inputs)
                and len(representative.outputs) == len(cluster.outputs)
                and clusters_isomorphic(representative.body, cluster.body)
            ):
                matched = behavior
                break
        if matched is None:
            matched = cluster.body.behavior
            behavior_reps.append((matched, cluster))
            design.add_dfg(cluster.body)
        cluster_behavior[idx] = matched
        extracted.append(cluster)

    # Rebuild the top level with hierarchical nodes in place of clusters.
    top = DFG(f"{dfg.name}_top", behavior=dfg.behavior)
    sig_map: dict[Signal, Signal] = {}

    for input_id in dfg.inputs:
        top.add_input(input_id, width=dfg.node(input_id).width)
        sig_map[(input_id, 0)] = (input_id, 0)
    for node in dfg.nodes():
        if node.kind == NodeKind.CONST:
            assert node.value is not None
            top.add_const(node.node_id, node.value, width=node.width)
            sig_map[(node.node_id, 0)] = (node.node_id, 0)

    # Placement units: each cluster is one unit, every other operation
    # its own unit.  Units are ordered by their own dependence DAG —
    # the flat graph's topological order is not enough, because cluster
    # members need not be adjacent in it (convexity only forbids paths
    # that leave and re-enter).
    cluster_index: dict[str, int] = {}
    for idx, nodes in enumerate(clusters):
        if extracted[idx] is not None:
            for nid in nodes:
                cluster_index[nid] = idx

    def unit_of(nid: str) -> tuple:
        idx = cluster_index.get(nid)
        return ("cluster", idx) if idx is not None else ("op", nid)

    unit_deps: dict[tuple, set[tuple]] = {}
    for node in dfg.operation_nodes():
        unit = unit_of(node.node_id)
        deps = unit_deps.setdefault(unit, set())
        for edge in dfg.in_edges(node.node_id):
            src_node = dfg.node(edge.src)
            if not src_node.is_operation:
                continue
            src_unit = unit_of(edge.src)
            if src_unit != unit:
                deps.add(src_unit)

    order: list[tuple] = []
    pending = {unit: set(deps) for unit, deps in unit_deps.items()}
    while pending:
        ready = sorted((u for u, d in pending.items() if not d), key=str)
        if not ready:
            raise DFGError("hierarchize: cluster dependence graph has a cycle")
        for unit in ready:
            order.append(unit)
            del pending[unit]
        for deps in pending.values():
            deps.difference_update(ready)

    for kind, key in order:
        if kind == "op":
            node = dfg.node(key)
            assert node.op is not None
            top.add_op(key, node.op, width=node.width)
            for edge in dfg.in_edges(key):
                src, src_port = sig_map[edge.signal]
                top.connect(src, src_port, key, edge.dst_port)
            sig_map[(key, 0)] = (key, 0)
            continue
        cluster = extracted[key]
        assert cluster is not None
        hier_id = f"blk{key}"
        top.add_hier(
            hier_id,
            cluster_behavior[key],
            n_inputs=len(cluster.inputs),
            n_outputs=len(cluster.outputs),
        )
        for port, signal in enumerate(cluster.inputs):
            src, src_port = sig_map[signal]
            top.connect(src, src_port, hier_id, port)
        for port, signal in enumerate(cluster.outputs):
            sig_map[signal] = (hier_id, port)

    for output_id in dfg.outputs:
        top.add_output(output_id, width=dfg.node(output_id).width)
        (edge,) = dfg.in_edges(output_id)
        src, src_port = sig_map[edge.signal]
        top.connect(src, src_port, output_id, 0)

    design.add_dfg(top, top=True)
    return design
