"""Operation alphabet for data flow graphs.

The paper targets *data-dominated* behaviors: a predominance of arithmetic
operations and an absence of control flow (Section 1).  The operation set
below covers everything used by the DAC'98 benchmark suite (Paulin/diffeq,
DCT, IIR, lattice and Avenhaus filters): additions, subtractions,
multiplications, shifts, comparisons and min/max selections.

Every operation carries

* an **arity** (number of operand ports),
* **commutativity** information (used when matching functionally
  equivalent DFG variants and when ordering operands canonically), and
* a **bit-true semantic function** operating on numpy integer arrays,
  used by the trace-driven power estimator
  (:mod:`repro.power.simulate`).  Arithmetic wraps at the node's bit
  width, mimicking fixed-point datapath hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Operation", "OP_INFO", "OpInfo", "apply_operation", "wrap_to_width"]


class Operation(enum.Enum):
    """A simple (non-hierarchical) DFG operation."""

    ADD = "add"
    SUB = "sub"
    MULT = "mult"
    LSHIFT = "lshift"
    RSHIFT = "rshift"
    LT = "lt"
    GT = "gt"
    MIN = "min"
    MAX = "max"
    NEG = "neg"
    PASS = "pass"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Operation":
        """Look up an operation by its textual name (``"add"`` etc.)."""
        for op in cls:
            if op.value == name:
                return op
        raise ValueError(f"unknown operation name: {name!r}")


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one operation."""

    arity: int
    commutative: bool
    func: Callable[..., np.ndarray]


def wrap_to_width(values: np.ndarray, width: int) -> np.ndarray:
    """Wrap *values* into the two's-complement range of ``width`` bits.

    Datapath hardware truncates results to the register width; the power
    estimator needs bit-true streams so that switching activity reflects
    what the real wires would do.
    """
    mask = (1 << width) - 1
    unsigned = values.astype(np.int64) & mask
    sign_bit = 1 << (width - 1)
    return np.where(unsigned >= sign_bit, unsigned - (1 << width), unsigned)


def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) + b.astype(np.int64)


def _sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) - b.astype(np.int64)


def _mult(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) * b.astype(np.int64)


def _lshift(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) << (b.astype(np.int64) & 0xF)


def _rshift(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) >> (b.astype(np.int64) & 0xF)


def _lt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a < b).astype(np.int64)


def _gt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a > b).astype(np.int64)


def _min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.minimum(a, b).astype(np.int64)


def _max(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.maximum(a, b).astype(np.int64)


def _neg(a: np.ndarray) -> np.ndarray:
    return -a.astype(np.int64)


def _pass(a: np.ndarray) -> np.ndarray:
    return a.astype(np.int64)


OP_INFO: dict[Operation, OpInfo] = {
    Operation.ADD: OpInfo(2, True, _add),
    Operation.SUB: OpInfo(2, False, _sub),
    Operation.MULT: OpInfo(2, True, _mult),
    Operation.LSHIFT: OpInfo(2, False, _lshift),
    Operation.RSHIFT: OpInfo(2, False, _rshift),
    Operation.LT: OpInfo(2, False, _lt),
    Operation.GT: OpInfo(2, False, _gt),
    Operation.MIN: OpInfo(2, True, _min),
    Operation.MAX: OpInfo(2, True, _max),
    Operation.NEG: OpInfo(1, False, _neg),
    Operation.PASS: OpInfo(1, False, _pass),
}


def apply_operation(op: Operation, operands: list[np.ndarray], width: int) -> np.ndarray:
    """Evaluate *op* bit-true on numpy operand streams.

    Parameters
    ----------
    op:
        The operation to evaluate.
    operands:
        One array per operand port, all of identical length.
    width:
        Result bit width; the raw result is wrapped into this width's
        two's-complement range.
    """
    info = OP_INFO[op]
    if len(operands) != info.arity:
        raise ValueError(
            f"operation {op} expects {info.arity} operands, got {len(operands)}"
        )
    raw = info.func(*operands)
    return wrap_to_width(raw, width)
