"""Structural validation of DFGs and designs.

``check_dfg`` returns a list of human-readable problem descriptions;
``validate_dfg``/``validate_design`` raise :class:`~repro.errors.DFGError`
on the first hard problem.  The synthesis engine validates its input once
up front so the optimization loops can assume well-formed graphs.
"""

from __future__ import annotations

from ..errors import DFGError
from .graph import DFG, NodeKind
from .hierarchy import Design

__all__ = ["check_dfg", "validate_dfg", "validate_design"]


def check_dfg(dfg: DFG) -> list[str]:
    """Collect structural problems in *dfg* (empty list = clean)."""
    problems: list[str] = []

    for node in dfg.nodes():
        driven = {e.dst_port for e in dfg.in_edges(node.node_id)}
        expected = set(range(node.n_inputs))
        missing = expected - driven
        if missing:
            problems.append(
                f"node {node.node_id!r}: input ports {sorted(missing)} undriven"
            )
        if node.kind == NodeKind.INPUT and node.node_id not in dfg.inputs:
            problems.append(f"input {node.node_id!r} not in the ordered input list")
        if node.kind == NodeKind.OUTPUT and node.node_id not in dfg.outputs:
            problems.append(f"output {node.node_id!r} not in the ordered output list")

    if not dfg.outputs:
        problems.append("DFG has no primary outputs")

    try:
        order = dfg.topo_order()
    except DFGError:
        problems.append("DFG contains a cycle")
        order = []

    if order:
        # Dead code: computing nodes from which no primary output is reachable.
        live: set[str] = set(dfg.outputs)
        for nid in reversed(order):
            if nid in live:
                for edge in dfg.in_edges(nid):
                    live.add(edge.src)
        for node in dfg.operation_nodes():
            if node.node_id not in live:
                problems.append(
                    f"operation {node.node_id!r} does not reach any primary output"
                )
    return problems


def validate_dfg(dfg: DFG) -> None:
    """Raise :class:`~repro.errors.DFGError` if *dfg* is malformed."""
    problems = check_dfg(dfg)
    if problems:
        raise DFGError(
            f"DFG {dfg.name!r} is malformed: " + "; ".join(problems)
        )


def validate_design(design: Design) -> None:
    """Validate every DFG of *design* plus the hierarchy itself."""
    for dfg in design.dfgs():
        validate_dfg(dfg)
    design.check_hierarchy()
