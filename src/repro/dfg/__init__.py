"""Hierarchical data-flow-graph substrate.

Public surface:

* :class:`~repro.dfg.graph.DFG`, :class:`~repro.dfg.graph.Node`,
  :class:`~repro.dfg.graph.Edge` — the graph model;
* :class:`~repro.dfg.hierarchy.Design` — a set of DFGs with behaviors
  and a top level;
* :class:`~repro.dfg.builder.GraphBuilder` — fluent construction;
* :func:`~repro.dfg.flatten.flatten` — hierarchical → flat expansion;
* :func:`~repro.dfg.parser.parse_design` /
  :func:`~repro.dfg.writer.write_design` — the textual format;
* :mod:`~repro.dfg.analysis` — topological metrics.
"""

from .analysis import (
    asap_levels,
    critical_path_length,
    longest_input_output_distance,
    op_histogram,
)
from .builder import GraphBuilder, Wire
from .canonical import (
    canonical_fingerprint,
    config_signature,
    design_fingerprint,
    graph_signature,
    library_signature,
    stream_digest,
)
from .flatten import flatten
from .graph import DEFAULT_WIDTH, DFG, Edge, Node, NodeKind, Signal
from .hierarchy import Design
from .ops import OP_INFO, Operation, apply_operation, wrap_to_width
from .parser import parse_design
from .partition import clusters_isomorphic, convex_clusters, hierarchize
from .validate import check_dfg, validate_design, validate_dfg
from .writer import write_design, write_dfg

__all__ = [
    "DFG",
    "DEFAULT_WIDTH",
    "Design",
    "Edge",
    "GraphBuilder",
    "Node",
    "NodeKind",
    "OP_INFO",
    "Operation",
    "Signal",
    "Wire",
    "apply_operation",
    "asap_levels",
    "canonical_fingerprint",
    "check_dfg",
    "config_signature",
    "critical_path_length",
    "design_fingerprint",
    "graph_signature",
    "library_signature",
    "stream_digest",
    "flatten",
    "longest_input_output_distance",
    "op_histogram",
    "clusters_isomorphic",
    "convex_clusters",
    "hierarchize",
    "parse_design",
    "validate_design",
    "validate_dfg",
    "wrap_to_width",
    "write_design",
    "write_dfg",
]
