"""Textual hierarchical-DFG format (writer).

Emits the format read by :mod:`repro.dfg.parser`; ``parse_design(
write_design(d))`` round-trips any design.
"""

from __future__ import annotations

from .graph import DFG, NodeKind
from .hierarchy import Design

__all__ = ["write_dfg", "write_design"]


def _ref(src: str, src_port: int) -> str:
    return src if src_port == 0 else f"{src}.{src_port}"


def write_dfg(dfg: DFG) -> str:
    """Serialize one DFG block."""
    lines: list[str] = []
    if dfg.behavior != dfg.name:
        lines.append(f"dfg {dfg.name} behavior {dfg.behavior}")
    else:
        lines.append(f"dfg {dfg.name}")

    # Emit in topological order so references always precede uses; inputs
    # and outputs keep their declared port order.
    order = dfg.topo_order()
    for nid in dfg.inputs:
        node = dfg.node(nid)
        lines.append(f"  input {nid} {node.width}")
    for nid in order:
        node = dfg.node(nid)
        if node.kind == NodeKind.CONST:
            lines.append(f"  const {nid} {node.value}")
        elif node.kind == NodeKind.OP:
            assert node.op is not None
            refs = " ".join(_ref(e.src, e.src_port) for e in dfg.in_edges(nid))
            lines.append(f"  op {nid} {node.op.value} {refs}")
        elif node.kind == NodeKind.HIER:
            refs = " ".join(_ref(e.src, e.src_port) for e in dfg.in_edges(nid))
            lines.append(f"  hier {nid} {node.behavior} {node.n_outputs} {refs}")
    for nid in dfg.outputs:
        (edge,) = dfg.in_edges(nid)
        lines.append(f"  output {nid} {_ref(edge.src, edge.src_port)}")
    lines.append("end")
    return "\n".join(lines)


def write_design(design: Design) -> str:
    """Serialize a whole design (all DFGs plus the top marker)."""
    parts = [f"design {design.name}", f"top {design.top_name}", ""]
    for dfg in design.dfgs():
        parts.append(write_dfg(dfg))
        parts.append("")
    return "\n".join(parts)
