"""Data flow graph (DFG) model.

A DFG is the behavioral input of high-level synthesis (Section 1 of the
paper).  Nodes represent primary inputs/outputs, constants, simple
arithmetic operations, or **hierarchical nodes** that stand for whole
sub-behaviors (convolutions, filters, butterflies, ...).  Edges carry
values between node ports.

Hierarchical port convention
----------------------------
The paper annotates the edges entering/leaving hierarchical nodes with
numbers that tie them to the numbered inputs/outputs of the underlying
DFG (Figure 1(a)).  We realize the same convention positionally: input
port ``i`` of a hierarchical node corresponds to the ``i``-th entry in
the sub-DFG's ordered input list and output port ``j`` to the ``j``-th
entry of its ordered output list.

Signals
-------
A *signal* is one produced value, identified by ``(producer node id,
producer output port)``.  Signals are the "variables" of the paper: they
are what gets bound to registers during synthesis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import DFGError
from .ops import OP_INFO, Operation

__all__ = ["NodeKind", "Node", "Edge", "Signal", "DFG", "DEFAULT_WIDTH"]

DEFAULT_WIDTH = 16

#: A produced value: (producer node id, producer output port).
Signal = tuple[str, int]


class NodeKind(enum.Enum):
    """Role of a DFG node."""

    INPUT = "input"
    OUTPUT = "output"
    CONST = "const"
    OP = "op"
    HIER = "hier"


@dataclass
class Node:
    """One DFG node.

    Attributes
    ----------
    node_id:
        Unique identifier within the owning DFG.
    kind:
        Role of the node (see :class:`NodeKind`).
    op:
        The arithmetic operation, for ``OP`` nodes only.
    behavior:
        Name of the behavior implemented, for ``HIER`` nodes only.  Any
        DFG registered under this behavior name can implement the node.
    value:
        Constant value, for ``CONST`` nodes only.
    width:
        Bit width of the produced value(s).
    n_inputs / n_outputs:
        Port counts.  Derived from the operation for ``OP`` nodes and
        given explicitly for ``HIER`` nodes.
    """

    node_id: str
    kind: NodeKind
    op: Operation | None = None
    behavior: str | None = None
    value: int | None = None
    width: int = DEFAULT_WIDTH
    n_inputs: int = 0
    n_outputs: int = 1

    @property
    def is_operation(self) -> bool:
        """True for nodes that perform computation (OP or HIER)."""
        return self.kind in (NodeKind.OP, NodeKind.HIER)


@dataclass(frozen=True)
class Edge:
    """A directed value-carrying edge between two node ports."""

    src: str
    src_port: int
    dst: str
    dst_port: int

    @property
    def signal(self) -> Signal:
        """The signal (variable) this edge carries."""
        return (self.src, self.src_port)


class DFG:
    """A single (possibly hierarchical) data flow graph.

    The graph owns its nodes and edges, keeps ordered primary-input and
    primary-output lists (the port numbering used by hierarchical
    nodes), and offers the traversal queries the scheduler and synthesis
    engine need.
    """

    def __init__(self, name: str, behavior: str | None = None):
        self.name = name
        #: Behavior this DFG implements; DFGs with the same behavior are
        #: functionally equivalent and interchangeable (move A).
        self.behavior = behavior or name
        self._nodes: dict[str, Node] = {}
        self._in_edges: dict[str, dict[int, Edge]] = {}
        self._out_edges: dict[str, list[Edge]] = {}
        #: Port-sorted in-edge lists, built on demand per node and
        #: dropped on rewiring.  :meth:`in_edges` is the hottest graph
        #: query in cost evaluation (operand collection, scheduling,
        #: netlist build all walk it per candidate), and re-sorting the
        #: port dict on a graph that never changes mid-search is pure
        #: waste.  Callers treat the list as read-only.
        self._in_sorted: dict[str, list[Edge]] = {}
        #: Ordered primary inputs (node ids) - defines hierarchical port order.
        self.inputs: list[str] = []
        #: Ordered primary outputs (node ids).
        self.outputs: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _register(self, node: Node) -> Node:
        if node.node_id in self._nodes:
            raise DFGError(f"duplicate node id {node.node_id!r} in DFG {self.name!r}")
        self._nodes[node.node_id] = node
        self._in_edges[node.node_id] = {}
        self._out_edges[node.node_id] = []
        return node

    def add_input(self, node_id: str, width: int = DEFAULT_WIDTH) -> Node:
        """Add a primary input; its position defines its port number."""
        node = self._register(
            Node(node_id, NodeKind.INPUT, width=width, n_inputs=0, n_outputs=1)
        )
        self.inputs.append(node_id)
        return node

    def add_const(self, node_id: str, value: int, width: int = DEFAULT_WIDTH) -> Node:
        """Add a constant-source node."""
        return self._register(
            Node(node_id, NodeKind.CONST, value=value, width=width, n_outputs=1)
        )

    def add_op(
        self, node_id: str, op: Operation, width: int = DEFAULT_WIDTH
    ) -> Node:
        """Add a simple operation node."""
        info = OP_INFO[op]
        return self._register(
            Node(
                node_id,
                NodeKind.OP,
                op=op,
                width=width,
                n_inputs=info.arity,
                n_outputs=1,
            )
        )

    def add_hier(
        self,
        node_id: str,
        behavior: str,
        n_inputs: int,
        n_outputs: int = 1,
        width: int = DEFAULT_WIDTH,
    ) -> Node:
        """Add a hierarchical node implementing *behavior*."""
        if n_inputs <= 0 or n_outputs <= 0:
            raise DFGError("hierarchical nodes need at least one input and output")
        return self._register(
            Node(
                node_id,
                NodeKind.HIER,
                behavior=behavior,
                width=width,
                n_inputs=n_inputs,
                n_outputs=n_outputs,
            )
        )

    def add_output(self, node_id: str, width: int = DEFAULT_WIDTH) -> Node:
        """Add a primary output sink; its position defines its port number."""
        node = self._register(
            Node(node_id, NodeKind.OUTPUT, width=width, n_inputs=1, n_outputs=0)
        )
        self.outputs.append(node_id)
        return node

    def connect(
        self, src: str, src_port: int, dst: str, dst_port: int
    ) -> Edge:
        """Wire output port *src_port* of *src* to input port *dst_port* of *dst*."""
        for node_id in (src, dst):
            if node_id not in self._nodes:
                raise DFGError(f"unknown node {node_id!r} in DFG {self.name!r}")
        src_node, dst_node = self._nodes[src], self._nodes[dst]
        if not 0 <= src_port < src_node.n_outputs:
            raise DFGError(
                f"{src!r} has {src_node.n_outputs} output ports, not port {src_port}"
            )
        if not 0 <= dst_port < dst_node.n_inputs:
            raise DFGError(
                f"{dst!r} has {dst_node.n_inputs} input ports, not port {dst_port}"
            )
        if dst_port in self._in_edges[dst]:
            raise DFGError(f"input port {dst_port} of {dst!r} is already driven")
        edge = Edge(src, src_port, dst, dst_port)
        self._in_edges[dst][dst_port] = edge
        self._out_edges[src].append(edge)
        self._in_sorted.pop(dst, None)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DFGError(f"unknown node {node_id!r} in DFG {self.name!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in insertion order."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[str]:
        return iter(self._nodes.keys())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for ports in self._in_edges.values():
            yield from ports.values()

    def in_edges(self, node_id: str) -> list[Edge]:
        """In-edges of a node, sorted by destination port (read-only)."""
        cached = self._in_sorted.get(node_id)
        if cached is None:
            ports = self._in_edges[node_id]
            cached = [ports[p] for p in sorted(ports)]
            self._in_sorted[node_id] = cached
        return cached

    def out_edges(self, node_id: str) -> list[Edge]:
        """Out-edges of a node (insertion order)."""
        return list(self._out_edges[node_id])

    def predecessors(self, node_id: str) -> list[str]:
        """Distinct predecessor node ids, in port order."""
        seen: list[str] = []
        for edge in self.in_edges(node_id):
            if edge.src not in seen:
                seen.append(edge.src)
        return seen

    def successors(self, node_id: str) -> list[str]:
        """Distinct successor node ids."""
        seen: list[str] = []
        for edge in self._out_edges[node_id]:
            if edge.dst not in seen:
                seen.append(edge.dst)
        return seen

    def operation_nodes(self) -> list[Node]:
        """All computing nodes (simple operations and hierarchical nodes)."""
        return [n for n in self._nodes.values() if n.is_operation]

    def op_nodes(self) -> list[Node]:
        """Simple operation nodes only."""
        return [n for n in self._nodes.values() if n.kind == NodeKind.OP]

    def hier_nodes(self) -> list[Node]:
        """Hierarchical nodes only."""
        return [n for n in self._nodes.values() if n.kind == NodeKind.HIER]

    def signals(self) -> list[Signal]:
        """All signals (produced values) in the graph, deduplicated."""
        seen: dict[Signal, None] = {}
        for edge in self.edges():
            seen.setdefault(edge.signal, None)
        return list(seen)

    def consumers(self, signal: Signal) -> list[Edge]:
        """All edges that consume the given signal."""
        src, src_port = signal
        return [e for e in self._out_edges[src] if e.src_port == src_port]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_ops = len(self.operation_nodes())
        return (
            f"DFG({self.name!r}, behavior={self.behavior!r}, "
            f"{len(self._nodes)} nodes, {n_ops} operations)"
        )

    # ------------------------------------------------------------------
    # Ordering / structure
    # ------------------------------------------------------------------
    def topo_order(self) -> list[str]:
        """Topological order of all node ids.

        Raises :class:`~repro.errors.DFGError` if the graph has a cycle.
        (Loop-carried dependencies in filter benchmarks are modeled by
        exposing the state as extra inputs/outputs, which keeps every
        per-sample DFG acyclic, as in the paper's Figure 1.)
        """
        in_deg = {nid: len(self._in_edges[nid]) for nid in self._nodes}
        ready = [nid for nid in self._nodes if in_deg[nid] == 0]
        order: list[str] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            for edge in self._out_edges[nid]:
                in_deg[edge.dst] -= 1
                if in_deg[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nodes):
            raise DFGError(f"DFG {self.name!r} contains a cycle")
        return order

    def copy(self, name: str | None = None) -> "DFG":
        """Deep-copy the graph (nodes are re-created, edges re-wired)."""
        clone = DFG(name or self.name, behavior=self.behavior)
        for node in self._nodes.values():
            clone._register(
                Node(
                    node.node_id,
                    node.kind,
                    op=node.op,
                    behavior=node.behavior,
                    value=node.value,
                    width=node.width,
                    n_inputs=node.n_inputs,
                    n_outputs=node.n_outputs,
                )
            )
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        for edge in self.edges():
            clone._in_edges[edge.dst][edge.dst_port] = edge
            clone._out_edges[edge.src].append(edge)
        return clone
