"""Hierarchical designs: collections of DFGs with a designated top level.

The paper's input is "a hierarchical DFG (arbitrarily deep hierarchies
are allowed)".  A :class:`Design` bundles

* a set of named DFGs,
* a *behavior index* that groups functionally equivalent DFG variants
  under one behavior name (the "user-supplied knowledge regarding the
  functional equivalence of different DFGs" that move A exploits), and
* the name of the top-level DFG.

Hierarchical nodes refer to behaviors, never to concrete DFGs: which
variant implements which node is a synthesis decision.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import DFGError
from .graph import DFG, Node, NodeKind

__all__ = ["Design"]


class Design:
    """A hierarchical behavioral description."""

    def __init__(self, name: str, top: str | None = None):
        self.name = name
        self._dfgs: dict[str, DFG] = {}
        self._by_behavior: dict[str, list[str]] = {}
        self._top: str | None = top

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_dfg(self, dfg: DFG, top: bool = False) -> DFG:
        """Register a DFG; optionally mark it as the top level."""
        if dfg.name in self._dfgs:
            raise DFGError(f"duplicate DFG name {dfg.name!r} in design {self.name!r}")
        self._dfgs[dfg.name] = dfg
        self._by_behavior.setdefault(dfg.behavior, []).append(dfg.name)
        if top:
            self._top = dfg.name
        return dfg

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def top(self) -> DFG:
        """The top-level DFG."""
        if self._top is None:
            raise DFGError(f"design {self.name!r} has no top-level DFG")
        return self._dfgs[self._top]

    @property
    def top_name(self) -> str:
        if self._top is None:
            raise DFGError(f"design {self.name!r} has no top-level DFG")
        return self._top

    def set_top(self, name: str) -> None:
        if name not in self._dfgs:
            raise DFGError(f"unknown DFG {name!r}")
        self._top = name

    def dfg(self, name: str) -> DFG:
        """Look up a DFG by name."""
        try:
            return self._dfgs[name]
        except KeyError:
            raise DFGError(f"unknown DFG {name!r} in design {self.name!r}") from None

    def dfgs(self) -> Iterator[DFG]:
        return iter(self._dfgs.values())

    def dfg_names(self) -> list[str]:
        return list(self._dfgs)

    def has_behavior(self, behavior: str) -> bool:
        return behavior in self._by_behavior

    def variants(self, behavior: str) -> list[DFG]:
        """All functionally equivalent DFG variants of *behavior*.

        Move A picks among these the variant best suited to the
        hierarchical node's environment.
        """
        names = self._by_behavior.get(behavior)
        if not names:
            raise DFGError(
                f"no DFG implements behavior {behavior!r} in design {self.name!r}"
            )
        return [self._dfgs[n] for n in names]

    def default_variant(self, behavior: str) -> DFG:
        """The first registered variant of *behavior* (the designer's default)."""
        return self.variants(behavior)[0]

    def behaviors(self) -> list[str]:
        return list(self._by_behavior)

    # ------------------------------------------------------------------
    # Structure checks / metrics
    # ------------------------------------------------------------------
    def check_hierarchy(self) -> None:
        """Verify that every hierarchical node resolves to a known behavior
        with matching port counts, and that the hierarchy is non-recursive.
        """
        for dfg in self._dfgs.values():
            for node in dfg.hier_nodes():
                assert node.behavior is not None
                variants = self.variants(node.behavior)
                for variant in variants:
                    if len(variant.inputs) != node.n_inputs:
                        raise DFGError(
                            f"hier node {node.node_id!r} in {dfg.name!r} has "
                            f"{node.n_inputs} inputs but variant {variant.name!r} "
                            f"has {len(variant.inputs)}"
                        )
                    if len(variant.outputs) != node.n_outputs:
                        raise DFGError(
                            f"hier node {node.node_id!r} in {dfg.name!r} has "
                            f"{node.n_outputs} outputs but variant {variant.name!r} "
                            f"has {len(variant.outputs)}"
                        )
        self._check_acyclic_hierarchy()

    def _check_acyclic_hierarchy(self) -> None:
        """Detect recursive behaviors (a behavior containing itself)."""

        def behaviors_used(dfg: DFG) -> set[str]:
            return {n.behavior for n in dfg.hier_nodes() if n.behavior}

        visiting: set[str] = set()
        done: set[str] = set()

        def visit(behavior: str) -> None:
            if behavior in done:
                return
            if behavior in visiting:
                raise DFGError(f"recursive hierarchy through behavior {behavior!r}")
            visiting.add(behavior)
            for name in self._by_behavior.get(behavior, []):
                for used in behaviors_used(self._dfgs[name]):
                    visit(used)
            visiting.discard(behavior)
            done.add(behavior)

        for behavior in self._by_behavior:
            visit(behavior)

    def depth(self) -> int:
        """Depth of the hierarchy (1 = flat top level)."""

        cache: dict[str, int] = {}

        def dfg_depth(dfg: DFG) -> int:
            if dfg.name in cache:
                return cache[dfg.name]
            sub = 0
            for node in dfg.hier_nodes():
                assert node.behavior is not None
                sub = max(
                    sub,
                    max(dfg_depth(v) for v in self.variants(node.behavior)),
                )
            cache[dfg.name] = 1 + sub
            return cache[dfg.name]

        return dfg_depth(self.top)

    def total_operations(self) -> int:
        """Number of simple operations in the fully expanded (flattened)
        top level, expanding each hierarchical node with its default
        variant.  A size metric used in reports.
        """

        cache: dict[str, int] = {}

        def count(dfg: DFG) -> int:
            if dfg.name in cache:
                return cache[dfg.name]
            total = len(dfg.op_nodes())
            for node in dfg.hier_nodes():
                assert node.behavior is not None
                total += count(self.default_variant(node.behavior))
            cache[dfg.name] = total
            return total

        return count(self.top)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Design({self.name!r}, {len(self._dfgs)} DFGs, "
            f"top={self._top!r})"
        )
