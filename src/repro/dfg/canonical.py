"""Canonical content fingerprints of DFGs and synthesis inputs.

The synthesis store (:mod:`repro.synthesis.store`) addresses memoized
results by *what was synthesized*, never by counter-generated module
names.  This module supplies the content side of those keys:

* :func:`canonical_fingerprint` — an isomorphism-invariant digest of a
  (sub-)DFG.  Two graphs that :func:`~repro.dfg.partition.
  clusters_isomorphic` would call interchangeable (primary ports
  positionally equal, operations by type, constants by value, edges by
  destination port) get the same fingerprint; the label scheme is the
  one the exact-isomorphism machinery in ``dfg/partition.py`` matches
  on.
* :func:`design_fingerprint` — the same digest with hierarchical nodes
  resolved recursively through a :class:`~repro.dfg.hierarchy.Design`,
  so a behavior name collision between two different designs cannot
  alias persistent-cache entries.
* :func:`graph_signature` — an identity-exact (node-id-pinned) digest,
  for cached values that reference concrete node ids (schedules).
* :func:`stream_digest`, :func:`library_signature`,
  :func:`config_signature` — digests of the remaining inputs a
  synthesis result depends on (characterization stimulus, cell/module
  library, search-shaping configuration).

Fingerprints are memoized on the DFG instance, guarded by the node and
edge counts: :class:`~repro.dfg.graph.DFG` is append-only (there is no
node or edge removal API), so unchanged counts imply an unchanged
graph.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import TYPE_CHECKING, Callable, Iterable

from .graph import DFG, NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hierarchy import Design

__all__ = [
    "canonical_fingerprint",
    "design_fingerprint",
    "graph_signature",
    "stream_digest",
    "library_signature",
    "config_signature",
]


def _digest(payload: object) -> str:
    """SHA-256 hex digest of a stable ``repr`` of *payload*.

    Keys are built from tuples of str/int/float/bool/None, whose
    ``repr`` is deterministic across processes (floats round-trip via
    the shortest-repr algorithm), so the digest is stable across runs.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _edge_count(dfg: DFG) -> int:
    return sum(1 for _ in dfg.edges())


def _memo_get(dfg: DFG, token: str) -> str | None:
    cache = getattr(dfg, "_canonical_memo", None)
    if cache is None:
        return None
    hit = cache.get(token)
    if hit is None:
        return None
    n_nodes, n_edges, value = hit
    if n_nodes != len(dfg) or n_edges != _edge_count(dfg):
        return None
    return value


def _memo_put(dfg: DFG, token: str, value: str) -> None:
    cache = getattr(dfg, "_canonical_memo", None)
    if cache is None:
        cache = {}
        dfg._canonical_memo = cache  # type: ignore[attr-defined]
    cache[token] = (len(dfg), _edge_count(dfg), value)


def _node_label(
    dfg: DFG,
    node_id: str,
    input_pos: dict[str, int],
    output_pos: dict[str, int],
    resolve: Callable[[str], str] | None,
) -> str:
    """Port-exact node label, following ``partition._body_graph``."""
    node = dfg.node(node_id)
    if node.kind == NodeKind.OP:
        return f"op:{node.op}:w{node.width}"
    if node.kind == NodeKind.CONST:
        return f"const:{node.value}:w{node.width}"
    if node.kind == NodeKind.INPUT:
        return f"in:{input_pos[node_id]}"
    if node.kind == NodeKind.OUTPUT:
        return f"out:{output_pos[node_id]}"
    assert node.kind == NodeKind.HIER and node.behavior is not None
    if resolve is not None:
        behavior = resolve(node.behavior)
    else:
        behavior = node.behavior
    return f"hier:{behavior}:{node.n_inputs}:{node.n_outputs}"


def canonical_fingerprint(
    dfg: DFG, resolve: Callable[[str], str] | None = None, _token: str = ""
) -> str:
    """Isomorphism-invariant fingerprint of *dfg* (SHA-256 hex digest).

    Nodes are numbered by a deterministic depth-first traversal from the
    ordered primary outputs, following each node's port-sorted in-edges;
    the numbering depends only on structure (every input port has
    exactly one driver, and output/input positions are part of a DFG's
    identity), so renaming nodes or reordering their insertion never
    changes the digest.  Equal digests imply the graphs are exactly
    isomorphic in the :func:`~repro.dfg.partition.clusters_isomorphic`
    sense on everything reachable from the outputs; nodes unreachable
    from any output are appended sorted by (label, node id), which can
    only split — never alias — keys.

    *resolve* maps a hierarchical node's behavior name to the label
    component used for it (see :func:`design_fingerprint`); ``None``
    uses the raw behavior name.  Results are memoized per DFG instance
    under ``_token`` (callers supplying *resolve* must pass a token
    identifying the resolution context).
    """
    cached = _memo_get(dfg, _token)
    if cached is not None:
        return cached

    input_pos = {nid: i for i, nid in enumerate(dfg.inputs)}
    output_pos = {nid: i for i, nid in enumerate(dfg.outputs)}
    index: dict[str, int] = {}
    order: list[str] = []
    for root in dfg.outputs:
        stack = [root]
        while stack:
            nid = stack.pop()
            if nid in index:
                continue
            index[nid] = len(order)
            order.append(nid)
            # Reverse push so the port-0 driver is numbered first.
            for edge in reversed(dfg.in_edges(nid)):
                if edge.src not in index:
                    stack.append(edge.src)
    dead = [nid for nid in dfg.node_ids() if nid not in index]
    dead.sort(
        key=lambda nid: (
            _node_label(dfg, nid, input_pos, output_pos, resolve), nid
        )
    )
    for nid in dead:
        index[nid] = len(order)
        order.append(nid)

    serial = tuple(
        (
            _node_label(dfg, nid, input_pos, output_pos, resolve),
            tuple(
                (edge.dst_port, index[edge.src], edge.src_port)
                for edge in dfg.in_edges(nid)
            ),
        )
        for nid in order
    )
    header = (
        tuple(index[nid] for nid in dfg.inputs),
        tuple(index[nid] for nid in dfg.outputs),
    )
    value = _digest(("dfg", header, serial))
    _memo_put(dfg, _token, value)
    return value


def design_fingerprint(design: "Design", dfg: DFG) -> str:
    """Fingerprint of *dfg* with behaviors resolved through *design*.

    Hierarchical node labels embed the canonical fingerprints of every
    DFG variant registered for the behavior (recursively), so the digest
    pins the full sub-hierarchy's content — a prerequisite for sharing
    persistent-cache entries across runs without trusting behavior
    names.  Behaviors the design does not define (library-only
    behaviors) fall back to their name, which the store's library
    signature covers.  Hierarchies are acyclic by construction
    (:meth:`~repro.dfg.hierarchy.Design.check_hierarchy`), so the
    recursion terminates.
    """

    def resolve(behavior: str) -> str:
        if not design.has_behavior(behavior):
            return behavior
        parts = ",".join(
            design_fingerprint(design, variant)
            for variant in design.variants(behavior)
        )
        return f"[{parts}]"

    return canonical_fingerprint(dfg, resolve, _token=f"design:{design.name}")


def graph_signature(dfg: DFG) -> str:
    """Identity-exact digest of *dfg*: node ids, labels and edges.

    Unlike :func:`canonical_fingerprint` this is **not** isomorphism
    invariant — it pins concrete node ids, which is required when the
    cached value references them (a
    :class:`~repro.scheduling.model.ScheduleResult` keys its dicts by
    task and node ids).  Memoized per instance like the canonical
    fingerprint.
    """
    cached = _memo_get(dfg, "exact")
    if cached is not None:
        return cached
    nodes = tuple(
        (
            node.node_id,
            node.kind.value,
            str(node.op),
            node.behavior,
            node.value,
            node.width,
        )
        for node in dfg.nodes()
    )
    edges = tuple(
        sorted(
            (edge.src, edge.src_port, edge.dst, edge.dst_port)
            for edge in dfg.edges()
        )
    )
    value = _digest(
        ("graph", tuple(dfg.inputs), tuple(dfg.outputs), nodes, edges)
    )
    _memo_put(dfg, "exact", value)
    return value


def stream_digest(streams: Iterable) -> str:
    """Digest of the characterization stimulus (numpy value streams).

    Covers shape, dtype and raw bytes of every stream, in port order —
    a module characterized under different input streams has a
    different effective capacitance, so the stimulus belongs in the
    content key.
    """
    h = hashlib.sha256()
    for stream in streams:
        h.update(repr((stream.shape, stream.dtype.str)).encode("utf-8"))
        h.update(stream.tobytes())
    return h.hexdigest()


def library_signature(library) -> str:
    """Digest of everything synthesis reads from a module library.

    Captures the functional-unit/register/mux cells (name, kind,
    supported operations, area, delay, capacitance, chain length,
    pipelining), the behavior-equivalence classes, and every complex
    module (name, behaviors with profile and internal capacitance, and
    a per-cell summary of the structural netlist).  Two libraries with
    equal signatures price every solution identically, which is what
    makes the signature a sound cache-invalidation boundary.
    """

    def cell_sig(cell) -> tuple:
        return (
            cell.name,
            cell.kind.value,
            tuple(sorted(str(op) for op in cell.ops)),
            cell.area,
            cell.delay_ns,
            cell.cap,
            cell.chain_length,
            cell.pipelined,
        )

    def module_sig(module) -> tuple:
        impls = tuple(
            (
                behavior,
                module.profile(behavior).input_offsets_ns,
                module.profile(behavior).output_latencies_ns,
                module.cap_internal(behavior),
            )
            for behavior in sorted(module.behaviors())
        )
        netlist: dict[str, int] = {}
        for comp in module.netlist.components():
            token = f"{comp.kind.value}:{comp.cell}:w{comp.width}"
            netlist[token] = netlist.get(token, 0) + 1
        return (
            module.name,
            module.behavior,
            module.resynthesizable,
            impls,
            tuple(sorted(netlist.items())),
        )

    classes: dict[str, tuple[str, ...]] = {}
    registry = library.equivalences
    for behavior in list(getattr(registry, "_parent", {})):
        members = tuple(sorted(registry.equivalence_class(behavior)))
        classes[members[0]] = members
    payload = (
        "library",
        tuple(sorted(cell_sig(c) for c in library.cells())),
        cell_sig(library.register_cell),
        cell_sig(library.mux_cell),
        tuple(sorted(classes.values())),
        tuple(
            sorted(
                module_sig(m)
                for behavior in library.complex_behaviors()
                for m in library.complex_modules_for(behavior)
            )
        ),
    )
    return _digest(payload)


#: Config fields excluded from :func:`config_signature`: they change how
#: the run executes (parallelism, persistence, tracing, debug
#: cross-checking, cache capacities) but not what any memoized synthesis
#: result contains, so keying on them would only split shareable cache
#: entries.
_EXECUTION_ONLY_FIELDS = frozenset(
    {
        "n_workers",
        "score_workers",
        "validate_incremental",
        "relational",
        "trace",
        "trace_timings",
        "trace_evals",
        "trace_max_events",
        "trace_meta",
        "cache_dir",
        "persistent_cache",
        "run_cache_size",
        "store_shards",
        # The search policy biases which final solution the outer
        # search reaches, but every *stored* sub-result is policy-
        # independent: nested move-B resynthesis always runs the
        # default scheme, and schedules/metrics are pure evaluation.
        # Excluding these lets differently-biased portfolio members
        # share one cache.
        "search_policy",
        "policy_params",
    }
)


def config_signature(config) -> str:
    """Digest of the search-shaping fields of a ``SynthesisConfig``.

    Execution-only knobs (worker counts, tracing, the cache
    configuration itself) are excluded — see
    :data:`_EXECUTION_ONLY_FIELDS`; everything that can change a
    synthesized sub-result (pass/move limits, epsilon, feature toggles,
    cache capacities that influence generated-name sequences) is
    included.
    """
    fields = tuple(
        (f.name, getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in _EXECUTION_ONLY_FIELDS
    )
    return _digest(("config", fields))
