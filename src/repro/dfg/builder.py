"""Fluent construction helper for DFGs.

Writing graphs with raw ``add_op``/``connect`` calls is verbose; the
benchmark suite builds dozens of graphs, so this module provides a small
builder where node outputs are first-class handles:

>>> b = GraphBuilder("madd")
>>> x, y, z = b.inputs("x", "y", "z")
>>> b.output("out", b.add(b.mult(x, y), z))
>>> dfg = b.build()

Handles are ``(node_id, port)`` pairs wrapped in :class:`Wire`; passing a
:class:`Wire` of a multi-output hierarchical node selects port 0 unless
indexed (``h[1]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DFGError
from .graph import DEFAULT_WIDTH, DFG
from .ops import Operation

__all__ = ["Wire", "GraphBuilder"]


@dataclass(frozen=True)
class Wire:
    """Handle to one output port of a node under construction."""

    node_id: str
    port: int = 0

    def __getitem__(self, port: int) -> "Wire":
        return Wire(self.node_id, port)


class GraphBuilder:
    """Incrementally build a :class:`~repro.dfg.graph.DFG`."""

    def __init__(self, name: str, behavior: str | None = None, width: int = DEFAULT_WIDTH):
        self._dfg = DFG(name, behavior=behavior)
        self._width = width
        self._counter = 0
        self._built = False

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _as_wire(self, value: "Wire | int") -> Wire:
        """Coerce ints to constant nodes so expressions read naturally."""
        if isinstance(value, Wire):
            return value
        if isinstance(value, int):
            return self.const(value)
        raise DFGError(f"cannot use {value!r} as a DFG operand")

    # ------------------------------------------------------------------
    # Sources and sinks
    # ------------------------------------------------------------------
    def input(self, name: str) -> Wire:
        """Declare one primary input."""
        self._dfg.add_input(name, width=self._width)
        return Wire(name)

    def inputs(self, *names: str) -> list[Wire]:
        """Declare several primary inputs at once (in port order)."""
        return [self.input(n) for n in names]

    def const(self, value: int, name: str | None = None) -> Wire:
        """Declare a constant source."""
        node_id = name or self._fresh("c")
        self._dfg.add_const(node_id, value, width=self._width)
        return Wire(node_id)

    def output(self, name: str, src: "Wire | int") -> None:
        """Declare a primary output fed by *src*."""
        wire = self._as_wire(src)
        self._dfg.add_output(name, width=self._width)
        self._dfg.connect(wire.node_id, wire.port, name, 0)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def op(self, op: Operation, *args: "Wire | int", name: str | None = None) -> Wire:
        """Add a simple operation fed by *args*."""
        node_id = name or self._fresh(op.value[0])
        self._dfg.add_op(node_id, op, width=self._width)
        for port, arg in enumerate(args):
            wire = self._as_wire(arg)
            self._dfg.connect(wire.node_id, wire.port, node_id, port)
        return Wire(node_id)

    def add(self, a, b, name: str | None = None) -> Wire:
        return self.op(Operation.ADD, a, b, name=name)

    def sub(self, a, b, name: str | None = None) -> Wire:
        return self.op(Operation.SUB, a, b, name=name)

    def mult(self, a, b, name: str | None = None) -> Wire:
        return self.op(Operation.MULT, a, b, name=name)

    def lt(self, a, b, name: str | None = None) -> Wire:
        return self.op(Operation.LT, a, b, name=name)

    def gt(self, a, b, name: str | None = None) -> Wire:
        return self.op(Operation.GT, a, b, name=name)

    def neg(self, a, name: str | None = None) -> Wire:
        return self.op(Operation.NEG, a, name=name)

    def hier(
        self,
        behavior: str,
        *args: "Wire | int",
        n_outputs: int = 1,
        name: str | None = None,
    ) -> Wire:
        """Add a hierarchical node implementing *behavior*.

        Returns a handle to output port 0; index the handle (``h[1]``)
        for further ports.
        """
        node_id = name or self._fresh("h")
        self._dfg.add_hier(
            node_id, behavior, n_inputs=len(args), n_outputs=n_outputs, width=self._width
        )
        for port, arg in enumerate(args):
            wire = self._as_wire(arg)
            self._dfg.connect(wire.node_id, wire.port, node_id, port)
        return Wire(node_id)

    # ------------------------------------------------------------------
    def build(self) -> DFG:
        """Finalize and return the DFG (the builder must not be reused)."""
        if self._built:
            raise DFGError("GraphBuilder.build() called twice")
        self._built = True
        return self._dfg
