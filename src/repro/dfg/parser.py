"""Textual hierarchical-DFG format (reader).

The paper's tool "reads in a textual description of the hierarchical
DFG"; this module defines our equivalent line-oriented format.  A file
describes one design:

.. code-block:: text

    # comment
    design my_filter
    top main

    dfg butterfly behavior butterfly
      input a
      input b
      op s add a b
      op d sub a b
      output o0 s
      output o1 d
    end

    dfg main
      input x
      input y
      hier b1 butterfly 2 x y
      op m mult b1.0 b1.1
      output out m
    end

Statement forms
---------------
``design <name>``                    — design header (first statement)
``top <dfg-name>``                   — designates the top-level DFG
``dfg <name> [behavior <b>]``        — opens a DFG block
``input <id> [<width>]``             — primary input (declaration order = port order)
``const <id> <int>``                 — constant source
``op <id> <operation> <ref>...``     — simple operation
``hier <id> <behavior> <n_out> <ref>...`` — hierarchical node
``output <id> <ref>``                — primary output (order = port order)
``end``                              — closes the DFG block

A *ref* is ``node`` (output port 0) or ``node.K`` (output port ``K``).
``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

from ..errors import ParseError
from .graph import DEFAULT_WIDTH, DFG
from .hierarchy import Design
from .ops import Operation

__all__ = ["parse_design", "parse_ref"]


def parse_ref(token: str) -> tuple[str, int]:
    """Split a signal reference into ``(node_id, port)``."""
    if "." in token:
        node_id, _, port_text = token.rpartition(".")
        if not node_id:
            raise ParseError(f"bad signal reference {token!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ParseError(f"bad port number in reference {token!r}") from None
        return node_id, port
    return token, 0


def parse_design(text: str, name_hint: str = "design") -> Design:
    """Parse the textual format into a :class:`~repro.dfg.hierarchy.Design`."""
    design: Design | None = None
    current: DFG | None = None
    pending_edges: list[tuple[str, int, str, int, int]] = []

    def finish_dfg() -> None:
        nonlocal current
        assert current is not None and design is not None
        for src, src_port, dst, dst_port, line_no in pending_edges:
            try:
                current.connect(src, src_port, dst, dst_port)
            except Exception as exc:
                raise ParseError(str(exc), line_no) from exc
        pending_edges.clear()
        try:
            design.add_dfg(current)
        except Exception as exc:
            raise ParseError(str(exc)) from exc
        current = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword, args = tokens[0], tokens[1:]

        if keyword == "design":
            if design is not None:
                raise ParseError("duplicate 'design' statement", line_no)
            if len(args) != 1:
                raise ParseError("'design' takes exactly one name", line_no)
            design = Design(args[0])
            continue

        if design is None:
            design = Design(name_hint)

        if keyword == "top":
            if len(args) != 1:
                raise ParseError("'top' takes exactly one DFG name", line_no)
            design._top = args[0]  # validated at the end
            continue

        if keyword == "dfg":
            if current is not None:
                raise ParseError("nested 'dfg' block (missing 'end'?)", line_no)
            if len(args) == 1:
                current = DFG(args[0])
            elif len(args) == 3 and args[1] == "behavior":
                current = DFG(args[0], behavior=args[2])
            else:
                raise ParseError("expected 'dfg <name> [behavior <b>]'", line_no)
            continue

        if keyword == "end":
            if current is None:
                raise ParseError("'end' outside a dfg block", line_no)
            finish_dfg()
            continue

        if current is None:
            raise ParseError(f"statement {keyword!r} outside a dfg block", line_no)

        try:
            _parse_body_statement(current, keyword, args, pending_edges, line_no)
        except ParseError:
            raise
        except Exception as exc:
            raise ParseError(str(exc), line_no) from exc

    if current is not None:
        raise ParseError("unterminated dfg block (missing 'end')")
    if design is None:
        raise ParseError("empty design description")
    if design._top is not None and design._top not in design.dfg_names():
        raise ParseError(f"top DFG {design._top!r} is not defined")
    return design


def _parse_body_statement(
    dfg: DFG,
    keyword: str,
    args: list[str],
    pending_edges: list[tuple[str, int, str, int, int]],
    line_no: int,
) -> None:
    """Handle one statement inside a ``dfg`` block."""
    if keyword == "input":
        if len(args) not in (1, 2):
            raise ParseError("expected 'input <id> [<width>]'", line_no)
        width = int(args[1]) if len(args) == 2 else DEFAULT_WIDTH
        dfg.add_input(args[0], width=width)
    elif keyword == "const":
        if len(args) != 2:
            raise ParseError("expected 'const <id> <value>'", line_no)
        dfg.add_const(args[0], int(args[1]))
    elif keyword == "op":
        if len(args) < 3:
            raise ParseError("expected 'op <id> <operation> <ref>...'", line_no)
        node_id, op_name, refs = args[0], args[1], args[2:]
        try:
            op = Operation.from_name(op_name)
        except ValueError as exc:
            raise ParseError(str(exc), line_no) from exc
        dfg.add_op(node_id, op)
        for port, ref in enumerate(refs):
            src, src_port = parse_ref(ref)
            pending_edges.append((src, src_port, node_id, port, line_no))
    elif keyword == "hier":
        if len(args) < 4:
            raise ParseError(
                "expected 'hier <id> <behavior> <n_out> <ref>...'", line_no
            )
        node_id, behavior, n_out_text, refs = args[0], args[1], args[2], args[3:]
        try:
            n_out = int(n_out_text)
        except ValueError:
            raise ParseError("hier output count must be an integer", line_no) from None
        dfg.add_hier(node_id, behavior, n_inputs=len(refs), n_outputs=n_out)
        for port, ref in enumerate(refs):
            src, src_port = parse_ref(ref)
            pending_edges.append((src, src_port, node_id, port, line_no))
    elif keyword == "output":
        if len(args) != 2:
            raise ParseError("expected 'output <id> <ref>'", line_no)
        dfg.add_output(args[0])
        src, src_port = parse_ref(args[1])
        pending_edges.append((src, src_port, args[0], 0, line_no))
    else:
        raise ParseError(f"unknown statement {keyword!r}", line_no)
