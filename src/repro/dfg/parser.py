"""Textual hierarchical-DFG format (reader).

The paper's tool "reads in a textual description of the hierarchical
DFG"; this module defines our equivalent line-oriented format.  A file
describes one design:

.. code-block:: text

    # comment
    design my_filter
    top main

    dfg butterfly behavior butterfly
      input a
      input b
      op s add a b
      op d sub a b
      output o0 s
      output o1 d
    end

    dfg main
      input x
      input y
      hier b1 butterfly 2 x y
      op m mult b1.0 b1.1
      output out m
    end

Statement forms
---------------
``design <name>``                    — design header (first statement)
``top <dfg-name>``                   — designates the top-level DFG
``dfg <name> [behavior <b>]``        — opens a DFG block
``input <id> [<width>]``             — primary input (declaration order = port order)
``const <id> <int>``                 — constant source
``op <id> <operation> <ref>...``     — simple operation
``hier <id> <behavior> <n_out> <ref>...`` — hierarchical node
``output <id> <ref>``                — primary output (order = port order)
``end``                              — closes the DFG block

A *ref* is ``node`` (output port 0) or ``node.K`` (output port ``K``).
``#`` starts a comment; blank lines are ignored.

Every deliberate rejection — duplicate ids, dangling references, bad
``hier`` arity against a behavior defined in the same description, port
conflicts — raises :class:`~repro.errors.ParseError` carrying the
source name and line of the offending statement, never a bare
``KeyError``/``IndexError``.
"""

from __future__ import annotations

from ..errors import ParseError
from .graph import DEFAULT_WIDTH, DFG
from .hierarchy import Design
from .ops import Operation

__all__ = ["parse_design", "parse_ref"]


def parse_ref(token: str) -> tuple[str, int]:
    """Split a signal reference into ``(node_id, port)``."""
    if "." in token:
        node_id, _, port_text = token.rpartition(".")
        if not node_id:
            raise ParseError(f"bad signal reference {token!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ParseError(f"bad port number in reference {token!r}") from None
        return node_id, port
    return token, 0


def _parse_int(text: str, what: str, line_no: int, source: str | None) -> int:
    """Parse an integer field, rejecting garbage with statement context."""
    try:
        return int(text)
    except ValueError:
        raise ParseError(
            f"{what} must be an integer, got {text!r}", line_no, source
        ) from None


def parse_design(
    text: str, name_hint: str = "design", source: str | None = None
) -> Design:
    """Parse the textual format into a :class:`~repro.dfg.hierarchy.Design`.

    *source* (typically the file name) is attached to every
    :class:`~repro.errors.ParseError` so diagnostics read
    ``mydesign.dfg:4: ...``.
    """
    design: Design | None = None
    current: DFG | None = None
    current_line = 0
    pending_edges: list[tuple[str, int, str, int, int]] = []
    #: ``(dfg name, node id, behavior, n_refs, n_out, line)`` for every
    #: parsed ``hier`` statement — cross-checked against same-file
    #: behavior definitions once all blocks are in.
    hier_sites: list[tuple[str, str, str, int, int, int]] = []

    def fail(message: str, line_no: int | None = None) -> ParseError:
        return ParseError(message, line_no, source)

    def finish_dfg() -> None:
        nonlocal current
        assert current is not None and design is not None
        for src, src_port, dst, dst_port, line_no in pending_edges:
            try:
                current.connect(src, src_port, dst, dst_port)
            except Exception as exc:
                raise fail(str(exc), line_no) from exc
        pending_edges.clear()
        try:
            design.add_dfg(current)
        except Exception as exc:
            raise fail(str(exc), current_line) from exc
        current = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword, args = tokens[0], tokens[1:]

        if keyword == "design":
            if design is not None:
                raise fail("duplicate 'design' statement", line_no)
            if len(args) != 1:
                raise fail("'design' takes exactly one name", line_no)
            design = Design(args[0])
            continue

        if design is None:
            design = Design(name_hint)

        if keyword == "top":
            if len(args) != 1:
                raise fail("'top' takes exactly one DFG name", line_no)
            design._top = args[0]  # validated at the end
            continue

        if keyword == "dfg":
            if current is not None:
                raise fail("nested 'dfg' block (missing 'end'?)", line_no)
            if len(args) == 1:
                current = DFG(args[0])
            elif len(args) == 3 and args[1] == "behavior":
                current = DFG(args[0], behavior=args[2])
            else:
                raise fail("expected 'dfg <name> [behavior <b>]'", line_no)
            current_line = line_no
            continue

        if keyword == "end":
            if current is None:
                raise fail("'end' outside a dfg block", line_no)
            finish_dfg()
            continue

        if current is None:
            raise fail(f"statement {keyword!r} outside a dfg block", line_no)

        try:
            _parse_body_statement(
                current, keyword, args, pending_edges, hier_sites,
                line_no, source,
            )
        except ParseError:
            raise
        except Exception as exc:
            raise fail(str(exc), line_no) from exc

    if current is not None:
        raise fail("unterminated dfg block (missing 'end')")
    if design is None:
        raise fail("empty design description")
    if design._top is not None and design._top not in design.dfg_names():
        raise fail(f"top DFG {design._top!r} is not defined")
    _check_hier_sites(design, hier_sites, source)
    return design


def _check_hier_sites(
    design: Design,
    hier_sites: list[tuple[str, str, str, int, int, int]],
    source: str | None,
) -> None:
    """Cross-check ``hier`` arity against same-description behaviors.

    A ``hier`` statement names a behavior that may be defined later in
    the file, so the check runs after all blocks are parsed.  Behaviors
    the description never defines are left to
    :func:`~repro.dfg.validate.validate_design` (they may be supplied
    externally); defined ones must match every variant's port counts
    here, with the statement's line in the diagnostic.
    """
    for dfg_name, node_id, behavior, n_refs, n_out, line_no in hier_sites:
        if not design.has_behavior(behavior):
            continue
        for variant in design.variants(behavior):
            if len(variant.inputs) != n_refs:
                raise ParseError(
                    f"hier node {node_id!r} in {dfg_name!r} passes {n_refs} "
                    f"inputs but behavior {behavior!r} variant "
                    f"{variant.name!r} has {len(variant.inputs)}",
                    line_no,
                    source,
                )
            if len(variant.outputs) != n_out:
                raise ParseError(
                    f"hier node {node_id!r} in {dfg_name!r} declares {n_out} "
                    f"outputs but behavior {behavior!r} variant "
                    f"{variant.name!r} has {len(variant.outputs)}",
                    line_no,
                    source,
                )


def _parse_body_statement(
    dfg: DFG,
    keyword: str,
    args: list[str],
    pending_edges: list[tuple[str, int, str, int, int]],
    hier_sites: list[tuple[str, str, str, int, int, int]],
    line_no: int,
    source: str | None,
) -> None:
    """Handle one statement inside a ``dfg`` block."""
    if keyword == "input":
        if len(args) not in (1, 2):
            raise ParseError("expected 'input <id> [<width>]'", line_no, source)
        width = (
            _parse_int(args[1], "input width", line_no, source)
            if len(args) == 2
            else DEFAULT_WIDTH
        )
        dfg.add_input(args[0], width=width)
    elif keyword == "const":
        if len(args) != 2:
            raise ParseError("expected 'const <id> <value>'", line_no, source)
        dfg.add_const(
            args[0], _parse_int(args[1], "const value", line_no, source)
        )
    elif keyword == "op":
        if len(args) < 3:
            raise ParseError(
                "expected 'op <id> <operation> <ref>...'", line_no, source
            )
        node_id, op_name, refs = args[0], args[1], args[2:]
        try:
            op = Operation.from_name(op_name)
        except ValueError as exc:
            raise ParseError(str(exc), line_no, source) from exc
        dfg.add_op(node_id, op)
        for port, ref in enumerate(refs):
            src, src_port = parse_ref(ref)
            pending_edges.append((src, src_port, node_id, port, line_no))
    elif keyword == "hier":
        if len(args) < 4:
            raise ParseError(
                "expected 'hier <id> <behavior> <n_out> <ref>...'",
                line_no,
                source,
            )
        node_id, behavior, n_out_text, refs = args[0], args[1], args[2], args[3:]
        n_out = _parse_int(n_out_text, "hier output count", line_no, source)
        dfg.add_hier(node_id, behavior, n_inputs=len(refs), n_outputs=n_out)
        hier_sites.append(
            (dfg.name, node_id, behavior, len(refs), n_out, line_no)
        )
        for port, ref in enumerate(refs):
            src, src_port = parse_ref(ref)
            pending_edges.append((src, src_port, node_id, port, line_no))
    elif keyword == "output":
        if len(args) != 2:
            raise ParseError("expected 'output <id> <ref>'", line_no, source)
        dfg.add_output(args[0])
        src, src_port = parse_ref(args[1])
        pending_edges.append((src, src_port, args[0], 0, line_no))
    else:
        raise ParseError(f"unknown statement {keyword!r}", line_no, source)
