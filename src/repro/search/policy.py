"""The search-policy interface and the built-in policy family.

A :class:`SearchPolicy` owns every discretionary decision of the
variable-depth improvement driver (:func:`repro.synthesis.improve.
improve_solution`):

* **candidate-family ordering** — which move families (type-A/B,
  sharing, splitting) are discovered each step, and in what order
  (order also breaks exact cost ties: the earlier family wins);
* **within-step ranking** — reordering or truncating a family's
  candidate list before pricing;
* **restart scheduling** — seeding a pass sequence from a previously
  published solution (cross-pollination in a portfolio run);
* **early termination** — cutting a step, a pass sequence, or the
  whole point short.

:class:`DefaultPolicy` implements every hook as the identity, which
makes the driver reproduce the paper's fixed scheme **byte-identically**
(same traces, same telemetry) — the refactor seam is covered by golden
trace tests.  The biased policies below trade that fidelity for
different exploration profiles; the portfolio driver
(:mod:`repro.search.portfolio`) runs several of them side by side.

Policies are resolved by name through :func:`make_policy` (the
``SynthesisConfig.search_policy`` knob); third parties register their
own with :func:`register_policy`.  Policy modules must not import
:mod:`repro.synthesis` at module level — the synthesis package imports
this one while initializing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.context import SynthesisEnv
    from ..synthesis.costs import EvaluationContext
    from ..synthesis.improve import PassRecord, ScoredMove
    from ..synthesis.moves import Candidate
    from ..synthesis.solution import Solution

__all__ = [
    "DefaultPolicy",
    "SearchPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]

#: name → policy class; populated by :func:`register_policy`.
_REGISTRY: dict[str, type] = {}


def register_policy(name: str):
    """Class decorator registering a :class:`SearchPolicy` under *name*."""

    def deco(cls: type) -> type:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def available_policies() -> tuple[str, ...]:
    """Sorted names of every registered search policy."""
    return tuple(sorted(_REGISTRY))


def make_policy(
    name: str, params: dict[str, Any] | None = None
) -> "SearchPolicy":
    """Instantiate the policy registered under *name*.

    *params* is the policy's keyword configuration
    (``SynthesisConfig.policy_params``); unknown names raise
    ``ValueError`` listing the registry.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown search policy {name!r}; available: "
            f"{', '.join(available_policies())}"
        )
    return cls(params)


class SearchPolicy:
    """Base search policy: every hook defaults to the paper's scheme.

    One instance is created per :class:`~repro.synthesis.context.
    SynthesisEnv` and bound to it (:meth:`bind`); the driver calls the
    hooks below at fixed seams.  The default implementations are exact
    no-ops — a driver running them is byte-identical to the
    pre-policy monolith — so subclasses override only the decisions
    they want to bias.

    Cross-pollination is built into the base class: when ``params``
    carries a ``pollinate`` token (set by the portfolio driver), every
    policy seeds each point from the best solution any portfolio member
    has published for that operating point (:meth:`seed_solution`), and
    publishes its own final solution back (:meth:`publish`), both
    through the shared store's ``portfolio`` namespace.
    """

    #: Registry name (set by :func:`register_policy`).
    name = "base"
    #: True when :meth:`observe_pass` needs a
    #: :class:`~repro.synthesis.improve.PassRecord` per pass even if the
    #: caller did not request history.
    observes = False

    def __init__(self, params: dict[str, Any] | None = None):
        self.params: dict[str, Any] = dict(params or {})
        self.env: "SynthesisEnv | None" = None

    def bind(self, env: "SynthesisEnv") -> "SearchPolicy":
        """Attach the run environment; returns self for chaining."""
        self.env = env
        return self

    # -- budgets and family plan --------------------------------------
    def budgets(self, max_passes: int, max_moves: int) -> tuple[int, int]:
        """Final (passes, moves-per-pass) budget for one point."""
        return max_passes, max_moves

    def family_order(self) -> tuple[str, ...]:
        """Move families discovered each step, in tie-break order.

        Members of ``("ab", "share", "split")``.  When ``"split"`` is
        absent, splitting is discovered lazily via :meth:`try_split`
        (the paper's fallback rule).
        """
        return ("ab", "share")

    # -- restart scheduling -------------------------------------------
    def seed_solution(
        self, ctx: "EvaluationContext", solution: "Solution", cost: float
    ) -> tuple["Solution", float]:
        """Optionally replace the point's starting solution.

        The default adopts a cross-pollinated incumbent when a
        ``pollinate`` token is configured and the incumbent prices
        strictly better; otherwise the input passes through untouched
        (no evaluations).
        """
        token = self.params.get("pollinate")
        if not token or self.env is None:
            return solution, cost
        incumbent = self._load_incumbent(token, solution)
        if incumbent is None:
            return solution, cost
        adopted_cost = ctx.cost(incumbent)
        if adopted_cost < cost:
            return incumbent, adopted_cost
        return solution, cost

    def publish(self, solution: "Solution", cost: float) -> None:
        """Offer the point's final solution to the rest of the portfolio."""
        token = self.params.get("pollinate")
        if not token or self.env is None or not math.isfinite(cost):
            return
        from ..synthesis.store import MISSING

        content = self._pollination_key(token, solution)
        held = self.env.store.load("portfolio", content)
        if held is MISSING or cost < held[0]:
            self.env.store.replace("portfolio", content, (cost, solution))

    def _pollination_key(self, token: str, solution: "Solution") -> tuple:
        """Content key of one operating point's shared incumbent slot."""
        return (
            "portfolio", str(token), solution.vdd, solution.clk_ns,
            solution.sampling_ns,
        )

    def _load_incumbent(
        self, token: str, solution: "Solution"
    ) -> "Solution | None":
        """Best published solution for *solution*'s operating point."""
        from ..dfg.canonical import design_fingerprint
        from ..synthesis.store import MISSING

        held = self.env.store.load(
            "portfolio", self._pollination_key(token, solution)
        )
        if held is MISSING:
            return None
        _cost, incumbent = held
        # A published solution may arrive from another process (its DFG
        # is an unpickled copy): adopt only when it is structurally the
        # same graph this env is synthesizing.
        design = self.env.design
        if design_fingerprint(design, incumbent.dfg) != design_fingerprint(
            design, solution.dfg
        ):
            return None
        return incumbent

    # -- within-step decisions ----------------------------------------
    def rank_candidates(
        self,
        family: str,
        candidates: "Sequence[Candidate]",
        pass_idx: int,
        step_idx: int,
    ) -> "Sequence[Candidate]":
        """Reorder/truncate one family's candidates before pricing.

        Order only matters for *which* candidates survive truncation —
        the pricer resolves ties by the deterministic candidate order
        key, not list position.
        """
        return candidates

    def try_split(
        self, best_share: "ScoredMove | None", work_cost: float
    ) -> bool:
        """Whether to fall back to splitting candidates this step.

        Only consulted when ``"split"`` is not in :meth:`family_order`.
        The default is the paper's rule: split when no sharing move
        exists or the best one has negative gain.
        """
        return best_share is None or (work_cost - best_share.cost_after) < 0

    # -- early termination --------------------------------------------
    def stop_step(
        self, chosen: "ScoredMove", work_cost: float, step_idx: int
    ) -> bool:
        """Cut the pass short *before* applying the chosen move."""
        return False

    def stop_pass(self, pass_idx: int, current_cost: float) -> bool:
        """Skip remaining passes of this point."""
        return False

    # -- observation ---------------------------------------------------
    def observe_pass(self, record: "PassRecord", current_cost: float) -> None:
        """Receive the finished pass's record (statistics collection)."""


@register_policy("default")
class DefaultPolicy(SearchPolicy):
    """The paper's fixed scheme — byte-identical to the pre-policy driver."""


@register_policy("share-first")
class ShareFirstPolicy(SearchPolicy):
    """Prefer resource sharing: it wins exact cost ties over type A/B.

    Useful late in a power run, where sharing consolidates modules the
    type-A/B moves keep re-churning.
    """

    def family_order(self) -> tuple[str, ...]:
        """Discover sharing before the type A/B moves."""
        return ("share", "ab")


@register_policy("split-eager")
class SplitEagerPolicy(SearchPolicy):
    """Always discover splitting, as a first-class family each step.

    The paper only prices splits when sharing fails; pricing them
    unconditionally lets a split win any step it is genuinely cheapest,
    at extra evaluation cost.
    """

    def family_order(self) -> tuple[str, ...]:
        """Price splitting unconditionally, after A/B and sharing."""
        return ("ab", "share", "split")


@register_policy("deep")
class DeepPolicy(SearchPolicy):
    """Narrow-but-deep: halve each family's candidate list, double passes.

    Spends the evaluation budget on longer move sequences instead of
    wide per-step scans — the profile that pays off when improvements
    hide behind multi-move plateaus.
    """

    def budgets(self, max_passes: int, max_moves: int) -> tuple[int, int]:
        """Double the pass budget; step budget unchanged."""
        return 2 * max_passes, max_moves

    def rank_candidates(self, family, candidates, pass_idx, step_idx):
        """Truncate long candidate lists to their first half (min 4)."""
        if len(candidates) <= 4:
            return candidates
        return candidates[: max(4, len(candidates) // 2)]


@register_policy("greedy")
class GreedyPolicy(SearchPolicy):
    """Pure hill climbing: never apply a negative-gain move.

    Stops each pass at the first non-improving chosen move, so every
    applied prefix commits; passes are doubled since each one is much
    shorter.  The cheapest policy per pass — and the one the classic KL
    argument says gets stuck first.
    """

    def budgets(self, max_passes: int, max_moves: int) -> tuple[int, int]:
        """Double the pass budget; each greedy pass is short."""
        return 2 * max_passes, max_moves

    def stop_step(self, chosen, work_cost, step_idx) -> bool:
        """Stop the pass when the best move no longer improves."""
        return chosen.cost_after >= work_cost
