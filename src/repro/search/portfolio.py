"""Cross-pollinating portfolio search over differently-biased policies.

A portfolio run launches N members — each a full :func:`repro.
synthesis.api.synthesize` call under a different search policy — over
``generations`` rounds.  Members share one synthesis store: besides the
usual policy-independent memo traffic (modules, resynthesis,
schedules), every member publishes its best solution per operating
point into the store's ``portfolio`` namespace and seeds its points
from the best solution *any* member has published (the base policy's
``pollinate`` hook), so generation 2 restarts every biased search from
the generation-1 incumbent frontier.

Member 0 of generation 1 always runs the unmodified default policy on
a cold incumbent slate, so the portfolio's winner is **never worse**
than the single-search baseline — the remaining members can only add
improvements.  Ties resolve to the earliest member (strict ``<``), so
a portfolio that finds nothing better returns the baseline result
bit for bit.

Execution reuses the operating-point sweep's worker pattern: members of
one generation fan out over a :class:`~concurrent.futures.
ProcessPoolExecutor` when ``config.n_workers > 1`` (the knob is
consumed here; members sweep their own points serially).  Workers
rebuild a store from the config, absorb the incumbent slate the parent
ships in, and return their own slate; the parent merges slates
cost-monotonically between generations.  Pool failures fall back to
the serial path, which shares the parent's store object directly.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfg.hierarchy import Design
    from ..library.library import ModuleLibrary
    from ..power.traces import TraceSet
    from ..synthesis.api import SynthesisResult
    from ..synthesis.context import SynthesisConfig
    from ..synthesis.store import SynthesisStore

__all__ = [
    "DEFAULT_ROSTER",
    "MemberReport",
    "PortfolioResult",
    "portfolio_synthesize",
]

#: Policy roster, in launch order.  Position 0 is deliberately the
#: default policy: it anchors the portfolio to the single-search
#: baseline.  ``priors`` rides last — with no mined table it degrades
#: to the default policy, so it only earns a slot in larger portfolios.
DEFAULT_ROSTER: tuple[str, ...] = (
    "default", "share-first", "deep", "greedy", "split-eager", "priors",
)

#: One cross-pollinated incumbent: ``(vdd, clk_ns) → (cost, blob)``
#: where the blob pickles the store value ``(cost, solution)``.
_Slate = dict


@dataclass
class MemberReport:
    """Summary of one portfolio member's run."""

    generation: int
    member: int
    policy: str
    #: Winning objective value of this member's own sweep.
    cost: float
    vdd: float
    clk_ns: float
    elapsed_s: float
    #: Total cost evaluations the member spent.
    evaluations: int


@dataclass
class PortfolioResult:
    """Outcome of a portfolio run: the winner plus per-member reports."""

    #: The best member's full synthesis result (ties → earliest member).
    result: "SynthesisResult"
    #: The winning member's report (also present in :attr:`members`).
    winner: MemberReport | None = None
    members: list[MemberReport] = field(default_factory=list)
    generations: int = 1
    #: Cross-pollination token the run shared incumbents under.
    token: str = ""
    #: Wall-clock of the whole portfolio (all members, all generations).
    elapsed_s: float = 0.0

    @property
    def cost(self) -> float:
        """Winning objective value."""
        return self.result.metrics.objective_value(self.result.objective)


def _roster(n_members: int, roster: tuple[str, ...]) -> list[str]:
    """First *n_members* policies, cycling when the roster is shorter."""
    return [roster[i % len(roster)] for i in range(n_members)]


def _member_config(
    config: "SynthesisConfig", policy: str, token: str
) -> "SynthesisConfig":
    params = dict(config.policy_params or {})
    params["pollinate"] = token
    return replace(
        config,
        search_policy=policy,
        policy_params=params,
        # Members parallelize across each other; nested point pools on
        # top would oversubscribe the machine.
        n_workers=1,
    )


def _slot_content(token: str, vdd: float, clk_ns: float,
                  sampling_ns: float) -> tuple:
    """Content key of one operating point's shared incumbent slot.

    Must match :meth:`repro.search.policy.SearchPolicy.
    _pollination_key` — workers and policies address the same slots.
    """
    return ("portfolio", token, vdd, clk_ns, sampling_ns)


def _collect_slate(
    store: "SynthesisStore",
    token: str,
    points: "list[tuple[float, float]]",
    sampling_ns: float,
) -> _Slate:
    """Read the incumbent of every known operating point from *store*."""
    from ..synthesis.store import MISSING

    slate: _Slate = {}
    for vdd, clk_ns in points:
        value = store.load("portfolio", _slot_content(token, vdd, clk_ns,
                                                      sampling_ns))
        if value is not MISSING:
            slate[(vdd, clk_ns)] = (
                value[0],
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            )
    return slate


def _install_slate(
    store: "SynthesisStore", token: str, sampling_ns: float, slate: _Slate
) -> None:
    """Cost-monotonically merge *slate* into *store*'s incumbent slots."""
    from ..synthesis.store import MISSING

    for (vdd, clk_ns), (cost, blob) in slate.items():
        content = _slot_content(token, vdd, clk_ns, sampling_ns)
        held = store.load("portfolio", content)
        if held is MISSING or cost < held[0]:
            store.replace("portfolio", content, pickle.loads(blob))


def _merge_slates(into: _Slate, other: _Slate) -> None:
    """Fold *other* into *into*, keeping the cheaper incumbent per point."""
    for point, (cost, blob) in other.items():
        if point not in into or cost < into[point][0]:
            into[point] = (cost, blob)


def _run_member(
    design: "Design",
    library: "ModuleLibrary | None",
    sampling_ns: float,
    objective: str,
    traces: "TraceSet | None",
    config: "SynthesisConfig",
    n_samples: int,
    store: "SynthesisStore | None",
) -> "SynthesisResult":
    from ..synthesis.api import synthesize

    return synthesize(
        design,
        library=library,
        sampling_ns=sampling_ns,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
        store=store,
    )


def _member_worker(payload: tuple) -> tuple:
    """Process-pool entry: one member against a process-local store.

    The parent's incumbent slate arrives pickled; the worker installs
    it before synthesizing and returns its own post-run slate (every
    operating point its sweep explored) for the parent to merge.
    """
    (design, library, sampling_ns, objective, traces, config, n_samples,
     slate, token) = payload
    from ..errors import SynthesisError
    from ..synthesis.store import SynthesisStore

    store = SynthesisStore.from_config(config)
    _install_slate(store, token, sampling_ns, slate)
    result = None
    try:
        try:
            result = _run_member(
                design, library, sampling_ns, objective, traces, config,
                n_samples, store,
            )
        except SynthesisError:
            # An infeasible member must not sink the portfolio: another
            # bias may still find an implementation.
            return None, {}
        points = sorted(result.history)
        out = _collect_slate(store, token, points, result.sampling_ns)
    finally:
        store.close()
    return result, out


def portfolio_synthesize(
    design: "Design",
    library: "ModuleLibrary | None" = None,
    sampling_ns: float | None = None,
    laxity_factor: float | None = None,
    objective: str = "power",
    traces: "TraceSet | None" = None,
    config: "SynthesisConfig | None" = None,
    n_samples: int = 48,
    n_members: int = 3,
    generations: int = 2,
    roster: tuple[str, ...] = DEFAULT_ROSTER,
    token: str | None = None,
) -> PortfolioResult:
    """Run an N-member cross-pollinating portfolio search.

    Arguments mirror :func:`repro.synthesis.api.synthesize`; the extras
    select the portfolio shape (*n_members* policies from *roster*,
    repeated for *generations* rounds).  See the module docstring for
    the execution model and the never-worse-than-baseline guarantee.
    """
    from ..errors import SynthesisError
    from ..library.library import default_library
    from ..synthesis.context import SynthesisConfig
    from ..synthesis.pruning import laxity_sampling_ns
    from ..synthesis.store import SynthesisStore

    started = time.perf_counter()
    config = config or SynthesisConfig()
    if n_members < 1:
        raise ValueError(f"n_members must be >= 1, got {n_members}")
    if generations < 1:
        raise ValueError(f"generations must be >= 1, got {generations}")
    if (sampling_ns is None) == (laxity_factor is None):
        raise ValueError("give exactly one of sampling_ns / laxity_factor")
    if sampling_ns is None:
        sampling_ns = laxity_sampling_ns(
            design, library or default_library(), laxity_factor
        )
    if token is None:
        # Incumbent slots are additionally keyed by operating point and
        # sampling period, so a design/objective-scoped token is
        # collision-safe across runs sharing a persistent cache.
        token = f"{design.name}:{objective}:{sampling_ns:.6g}"

    policies = _roster(n_members, roster)
    shared = SynthesisStore.from_config(config)
    parallel = max(1, config.n_workers)
    reports: list[MemberReport] = []
    best: "tuple[float, SynthesisResult, MemberReport] | None" = None
    #: Every operating point any member has explored — the slots worth
    #: probing when shipping the slate to the next generation.
    known_points: set[tuple[float, float]] = set()
    try:
        for generation in range(generations):
            configs = [
                _member_config(config, policy, token) for policy in policies
            ]
            results = _run_generation(
                design, library, sampling_ns, objective, traces, configs,
                n_samples, shared, token, parallel, known_points,
            )
            for member, result in enumerate(results):
                if result is None:
                    continue
                known_points.update(result.history)
                cost = result.metrics.objective_value(result.objective)
                report = MemberReport(
                    generation=generation,
                    member=member,
                    policy=policies[member],
                    cost=cost,
                    vdd=result.vdd,
                    clk_ns=result.clk_ns,
                    elapsed_s=result.elapsed_s,
                    evaluations=result.telemetry.evaluations,
                )
                reports.append(report)
                if best is None or cost < best[0]:
                    best = (cost, result, report)
    finally:
        shared.close()

    if best is None:
        raise SynthesisError(
            f"no portfolio member found a feasible implementation for "
            f"{design.name!r} at sampling period {sampling_ns:.1f} ns"
        )
    return PortfolioResult(
        result=best[1],
        winner=best[2],
        members=reports,
        generations=generations,
        token=token,
        elapsed_s=time.perf_counter() - started,
    )


def _run_generation(
    design: "Design",
    library: "ModuleLibrary | None",
    sampling_ns: float,
    objective: str,
    traces: "TraceSet | None",
    configs: "list[SynthesisConfig]",
    n_samples: int,
    shared: "SynthesisStore",
    token: str,
    parallel: int,
    known_points: set,
) -> "list[SynthesisResult | None]":
    """Run one generation's members; returns per-member results.

    A member whose sweep finds nothing feasible yields ``None`` instead
    of failing the portfolio (another bias may still succeed).
    """
    from ..errors import SynthesisError

    if parallel > 1 and len(configs) > 1:
        slate = _collect_slate(
            shared, token, sorted(known_points), sampling_ns
        )
        payloads = [
            (design, library, sampling_ns, objective, traces, member_config,
             n_samples, slate, token)
            for member_config in configs
        ]
        try:
            with ProcessPoolExecutor(
                max_workers=min(parallel, len(configs))
            ) as pool:
                paired = list(pool.map(_member_worker, payloads))
        except (OSError, ImportError, BrokenProcessPool,
                pickle.PicklingError):
            paired = None
        if paired is not None:
            merged: _Slate = {}
            for _result, out_slate in paired:
                _merge_slates(merged, out_slate)
            _install_slate(shared, token, sampling_ns, merged)
            return [result for result, _slate in paired]

    results: "list[SynthesisResult | None]" = []
    for member_config in configs:
        try:
            results.append(_run_member(
                design, library, sampling_ns, objective, traces,
                member_config, n_samples, shared,
            ))
        except SynthesisError:
            results.append(None)
    return results
