"""Pluggable search policies, trace-mined priors and portfolio search.

The variable-depth improvement driver (:mod:`repro.synthesis.improve`)
delegates every discretionary decision — which candidate families to
discover in what order, how to rank and truncate candidates within a
step, when to fall back to splitting, when to stop a pass or the whole
point — to a :class:`~repro.search.policy.SearchPolicy`.  The default
policy reproduces the paper's fixed scheme **byte-identically** (same
traces, same telemetry); biased policies explore differently.

Layout
------
:mod:`repro.search.policy`     — the policy interface, the default and
                                 biased policies, and the registry that
                                 resolves ``SynthesisConfig.search_policy``;
:mod:`repro.search.priors`     — mine completed traces into per-move-kind
                                 × slack-regime gain statistics, persisted
                                 in the store's ``priors`` namespace under
                                 iso-invariant design fingerprints;
:mod:`repro.search.portfolio`  — run N differently-biased policies in
                                 parallel, cross-pollinating best-so-far
                                 solutions through the shared store.

See ``docs/SEARCH.md`` for the lifecycle:
trace → priors → policy → portfolio.
"""

from .policy import (
    DefaultPolicy,
    SearchPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from .priors import PriorsTable, mine_events

__all__ = [
    "DEFAULT_ROSTER",
    "DefaultPolicy",
    "PortfolioResult",
    "PriorsTable",
    "SearchPolicy",
    "available_policies",
    "make_policy",
    "mine_events",
    "portfolio_synthesize",
    "register_policy",
]

#: The portfolio driver builds on ``repro.synthesis.api``, which imports
#: this package while initializing (the env resolves its policy here) —
#: so it is exported lazily (PEP 562) to keep the load order acyclic.
_LAZY = {
    "DEFAULT_ROSTER": "portfolio",
    "portfolio_synthesize": "portfolio",
    "PortfolioResult": "portfolio",
}


def __getattr__(name: str):
    """Resolve the lazily exported portfolio API on first access."""
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
