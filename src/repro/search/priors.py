"""Trace-mined move priors: gain statistics that warm-start search.

Completed synthesis traces record, for every improvement step, which
move kind was chosen, its gain, and — via the pass's committed prefix —
whether the move survived into the committed solution.  This module
mines those events (any schema version the shared reader accepts) into
per-``(slack regime, move kind)`` statistics, persists them in the
synthesis store's ``priors`` namespace keyed by **iso-invariant design
fingerprints** (:func:`repro.dfg.canonical.design_fingerprint`), and
feeds them back into search through :class:`PriorsPolicy`: candidate
kinds with a reliably negative committed-gain history are skipped
before pricing, and move families are tried in mined-profit order.

The slack *regime* — how tight the schedule budget is relative to the
initial schedule — is what makes statistics transfer: a tight-budget
search lives off type-A speedups while a loose one profits from
sharing, regardless of the concrete design.  Mining classifies each
operating point by its ``init`` event; the policy classifies the live
point from its starting solution.

Priors are advisory and lossy by design: an unseen kind is always
priced (exploration beats a stale table), and a cold table makes
:class:`PriorsPolicy` behave exactly like the default policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..trace.reader import iter_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.store import SynthesisStore

from .policy import SearchPolicy, register_policy

__all__ = [
    "AGGREGATE_FINGERPRINT",
    "KindStats",
    "PriorsPolicy",
    "PriorsTable",
    "load_priors",
    "mine_events",
    "save_priors",
    "slack_regime",
]

#: Version of the priors value format inside the store's ``priors``
#: namespace; bumped on incompatible changes to :meth:`PriorsTable.
#: as_dict`.
PRIORS_FORMAT_VERSION = 1

#: Pseudo-fingerprint of the cross-design aggregate table: every mined
#: run merges into it, and a design with no exact-fingerprint entry
#: warm-starts from here.
AGGREGATE_FINGERPRINT = "__aggregate__"

#: Slack-regime boundaries on ``budget_cycles / initial_cycles``.
_TIGHT_BELOW = 1.15
_MEDIUM_BELOW = 1.6


def slack_regime(budget_cycles: int, schedule_cycles: int) -> str:
    """Classify an operating point's schedule slack.

    ``tight`` points barely meet (or miss) their budget and live off
    speed-recovering moves; ``loose`` points have cycles to burn on
    area/power consolidation; ``medium`` sits between.
    """
    ratio = budget_cycles / max(schedule_cycles, 1)
    if ratio < _TIGHT_BELOW:
        return "tight"
    if ratio < _MEDIUM_BELOW:
        return "medium"
    return "loose"


@dataclass
class KindStats:
    """Mined outcome statistics of one move kind in one slack regime."""

    #: Times this kind was the step's chosen move.
    chosen: int = 0
    #: Chosen moves that landed inside a committed pass prefix.
    committed: int = 0
    #: Total gain of chosen moves (positive = cost reduction).
    gain: float = 0.0
    #: Total gain of the committed subset.
    committed_gain: float = 0.0

    def merge(self, other: "KindStats") -> None:
        """Accumulate *other* into this record."""
        self.chosen += other.chosen
        self.committed += other.committed
        self.gain += other.gain
        self.committed_gain += other.committed_gain

    @property
    def score(self) -> float:
        """Expected committed gain per time this kind was chosen."""
        if self.chosen == 0:
            return 0.0
        return self.committed_gain / self.chosen


@dataclass
class PriorsTable:
    """Per-``(regime, kind)`` move statistics mined from traces."""

    stats: dict[tuple[str, str], KindStats] = field(default_factory=dict)
    #: Number of synthesis runs merged into this table.
    n_runs: int = 0

    def record(
        self, regime: str, kind: str, gain: float, committed: bool
    ) -> None:
        """Fold one chosen step into the table."""
        entry = self.stats.get((regime, kind))
        if entry is None:
            entry = self.stats[(regime, kind)] = KindStats()
        entry.chosen += 1
        entry.gain += gain
        if committed:
            entry.committed += 1
            entry.committed_gain += gain

    def merge(self, other: "PriorsTable") -> "PriorsTable":
        """Accumulate *other*'s statistics; returns self."""
        for key, theirs in other.stats.items():
            mine = self.stats.get(key)
            if mine is None:
                self.stats[key] = KindStats(
                    theirs.chosen, theirs.committed, theirs.gain,
                    theirs.committed_gain,
                )
            else:
                mine.merge(theirs)
        self.n_runs += other.n_runs
        return self

    def kind_score(self, regime: str, kind: str) -> float | None:
        """Score of *kind* in *regime*; ``None`` when never observed."""
        entry = self.stats.get((regime, kind))
        return entry.score if entry is not None else None

    def kind_support(self, regime: str, kind: str) -> int:
        """How many chosen observations back *kind* in *regime*."""
        entry = self.stats.get((regime, kind))
        return entry.chosen if entry is not None else 0

    def family_score(self, regime: str, family: str) -> float:
        """Aggregate score of a move family (kind prefix) in *regime*."""
        chosen = 0
        committed_gain = 0.0
        for (reg, kind), entry in self.stats.items():
            if reg == regime and kind.startswith(family):
                chosen += entry.chosen
                committed_gain += entry.committed_gain
        return committed_gain / chosen if chosen else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-able wire form (the store's ``priors`` value format)."""
        return {
            "format": PRIORS_FORMAT_VERSION,
            "n_runs": self.n_runs,
            "stats": {
                f"{regime}|{kind}": [
                    e.chosen, e.committed, e.gain, e.committed_gain
                ]
                for (regime, kind), e in sorted(self.stats.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PriorsTable":
        """Inverse of :meth:`as_dict`; unknown formats raise ValueError."""
        if payload.get("format") != PRIORS_FORMAT_VERSION:
            raise ValueError(
                f"unsupported priors format {payload.get('format')!r} "
                f"(this build reads {PRIORS_FORMAT_VERSION})"
            )
        table = cls(n_runs=int(payload.get("n_runs", 0)))
        for key, (chosen, committed, gain, cgain) in payload["stats"].items():
            regime, _, kind = key.partition("|")
            table.stats[(regime, kind)] = KindStats(
                int(chosen), int(committed), float(gain), float(cgain)
            )
        return table


# ----------------------------------------------------------------------
# Mining
# ----------------------------------------------------------------------

def mine_events(source: Iterable) -> PriorsTable:
    """Mine one trace (any readable schema) into a :class:`PriorsTable`.

    *source* is anything :func:`repro.trace.reader.iter_events` accepts:
    a path, an open stream, JSONL lines or parsed event dicts.  Steps of
    points whose ``init`` event is missing (truncated traces) are
    skipped; commitment comes from each pass's ``pass_end`` committed
    prefix, so schema v1 traces mine identically to v3 ones.
    """
    regimes: dict[int, str] = {}
    committed: dict[tuple[int, int], int] = {}
    steps: list[dict[str, Any]] = []
    saw_run = False
    for event in iter_events(source):
        kind = event["k"]
        if kind == "run_start":
            saw_run = True
        elif kind == "init":
            regimes[event["point"]] = slack_regime(
                event["budget"], event["cycles"]
            )
        elif kind == "pass_end":
            committed[(event["point"], event["pass"])] = event["committed"]
        elif kind == "step":
            steps.append(event)

    table = PriorsTable(n_runs=1 if saw_run else 0)
    for event in steps:
        regime = regimes.get(event["point"])
        if regime is None:
            continue
        is_committed = event["step"] < committed.get(
            (event["point"], event["pass"]), 0
        )
        table.record(regime, event["kind"], event["gain"], is_committed)
    return table


# ----------------------------------------------------------------------
# Store persistence (the ``priors`` namespace)
# ----------------------------------------------------------------------

def _priors_content(fingerprint: str) -> tuple:
    return ("priors", PRIORS_FORMAT_VERSION, fingerprint)


def save_priors(
    store: "SynthesisStore", fingerprint: str, table: PriorsTable
) -> PriorsTable:
    """Merge *table* into the stored priors of *fingerprint*.

    Also folds it into the cross-design aggregate entry
    (:data:`AGGREGATE_FINGERPRINT`), which is what lets a never-seen
    design warm-start from structurally different history.  Returns the
    merged per-fingerprint table.  Unlike every other store namespace,
    priors are mutable aggregates — writes go through
    :meth:`~repro.synthesis.store.SynthesisStore.replace`.
    """
    merged = table
    for key in (fingerprint, AGGREGATE_FINGERPRINT):
        existing = load_priors(store, key, aggregate_fallback=False)
        combined = PriorsTable() if existing is None else existing
        combined.merge(table)
        store.replace("priors", _priors_content(key), combined.as_dict())
        if key == fingerprint:
            merged = combined
    return merged


def load_priors(
    store: "SynthesisStore",
    fingerprint: str,
    aggregate_fallback: bool = True,
) -> PriorsTable | None:
    """Load the priors stored for *fingerprint*, if any.

    With *aggregate_fallback* (the default), a design with no
    per-fingerprint entry falls back to the cross-design aggregate.
    """
    from ..synthesis.store import MISSING

    payload = store.load("priors", _priors_content(fingerprint))
    if payload is MISSING and aggregate_fallback:
        payload = store.load(
            "priors", _priors_content(AGGREGATE_FINGERPRINT)
        )
    if payload is MISSING:
        return None
    try:
        return PriorsTable.from_dict(payload)
    except (ValueError, KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# The priors-guided policy
# ----------------------------------------------------------------------

@register_policy("priors")
class PriorsPolicy(SearchPolicy):
    """Bias search with mined move statistics; cold tables act default.

    Two levers, both regime-conditioned:

    * :meth:`family_order` tries the historically more profitable of
      type-A/B vs sharing first (winning exact cost ties);
    * :meth:`rank_candidates` drops candidates whose kind has a
      reliably negative committed-gain history (at least
      ``min_support`` observations), cutting evaluations without
      touching unexplored kinds.

    ``params``: ``table`` (a :meth:`PriorsTable.as_dict` payload,
    overrides the store), ``min_support`` (default 5), plus the base
    class's ``pollinate`` token.
    """

    def __init__(self, params: dict[str, Any] | None = None):
        super().__init__(params)
        self.table: PriorsTable | None = None
        self._regime = "medium"
        payload = self.params.get("table")
        if payload:
            self.table = PriorsTable.from_dict(payload)

    def bind(self, env) -> "PriorsPolicy":
        """Attach *env* and load priors for its design from the store."""
        super().bind(env)
        if self.table is None:
            from ..dfg.canonical import design_fingerprint

            self.table = load_priors(
                env.store,
                design_fingerprint(env.design, env.design.top),
            )
        return self

    def seed_solution(self, ctx, solution, cost):
        """Classify the point's slack regime, then seed as the base does."""
        # The starting solution's schedule is already computed (the
        # sweep's feasibility gate priced it), so this costs nothing.
        self._regime = slack_regime(
            solution.deadline_cycles, solution.schedule().length
        )
        return super().seed_solution(ctx, solution, cost)

    def family_order(self) -> tuple[str, ...]:
        """Order families by mined committed-gain, in this slack regime."""
        if self.table is None:
            return ("ab", "share")
        ab = max(
            self.table.family_score(self._regime, "A"),
            self.table.family_score(self._regime, "B"),
        )
        share = self.table.family_score(self._regime, "C")
        if share > ab:
            return ("share", "ab")
        return ("ab", "share")

    def rank_candidates(self, family, candidates, pass_idx, step_idx):
        """Drop kinds the mined record shows to be reliably unprofitable."""
        if self.table is None or len(candidates) <= 1:
            return candidates
        min_support = int(self.params.get("min_support", 5))
        kept = [
            c for c in candidates
            if not self._reliably_unprofitable(c.kind, min_support)
        ]
        # Never empty a family the default policy would have priced:
        # a table that condemns every kind is evidence about the past,
        # not a proof about this design.
        return kept if kept else candidates

    def _reliably_unprofitable(self, kind: str, min_support: int) -> bool:
        score = self.table.kind_score(self._regime, kind)
        if score is None:
            return False
        return (
            score <= 0.0
            and self.table.kind_support(self._regime, kind) >= min_support
        )
