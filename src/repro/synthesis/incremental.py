"""Incremental (delta) cost evaluation for the KL inner loop.

Pricing a candidate move used to mean a full re-evaluation: rebuild the
netlist, reschedule, and — the expensive part — re-assemble every
per-resource stream interleaving and push it through the switched-
capacitance model.  A local move (swap one cell, merge two registers)
leaves most of those stream-derived energy terms untouched, so this
module prices solutions *by delta*: the evaluation context keeps a
:class:`Breakdown` of the last full evaluation, and every term whose
inputs provably did not change is reused instead of recomputed.

Bit-identity is the design constraint, enforced structurally rather
than numerically: there is exactly **one** evaluation function
(:func:`evaluate_solution`), used for both the from-scratch and the
delta path.  It computes each energy term either fresh or by copying
the base solution's float, and accumulates them in exactly the order
the original evaluator used — so a reused term contributes the very
same IEEE-754 value to the very same summation sequence, and the
resulting :class:`~repro.synthesis.costs.Metrics` are equal bit for
bit.  Golden cost snapshots therefore do not move when incremental
evaluation is switched on.

What is reused is the *switching activity* of each resource — the only
stream-derived (and therefore expensive) factor of its energy term.
Everything downstream of the activity (cell energy at that activity,
glitch surcharge, width scaling, idle clocking) is cheap arithmetic and
is always replayed, so a reused activity flows through the identical
float operations a fresh one would.  What decides reuse is an
*activity key*, not the move's footprint:

* functional unit / complex module — (executions in scheduled order,
  width): these determine the operand streams and their interleaving;
* register — (written signals in availability order, width): these
  determine the write-value stream.

Notably the keys exclude the bound cell and the schedule length: an
A-cell swap reuses the touched instance's own activity (same operands,
different cell), and a schedule shift reuses every register's write
activity while the idle-clocking arithmetic is replayed with the new
length.  The keys are built from the candidate's own (cheaply
recomputed) netlist and schedule, so any side effect a move has on an
untouched resource — a register merge reordering writes, a serialization
change on a shared unit — changes that resource's key and forces
recomputation.  Moves that can change the schedule length or the
register-conflict set globally (type-B resynthesis, chain formation,
module merges) carry no footprint at all and are priced from scratch;
for footprinted moves, a wholesale key mismatch degenerates into the
full evaluation automatically (counted as a delta fall-back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from ..power.activity import batch_activities
from ..power.estimator import (
    GLITCH_FRACTION,
    REGISTER_CLOCK_FRACTION,
    ControllerUsage,
    InterconnectUsage,
    MuxUsage,
    PowerReport,
)
from .datapath_build import build_netlist
from .solution import Instance, Solution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .costs import EvaluationContext, Metrics

__all__ = [
    "Breakdown",
    "EvaluationPlan",
    "evaluate_solution",
    "plan_evaluation",
    "finish_evaluation",
]


@dataclass
class Breakdown:
    """Per-resource switching activities of one evaluated solution.

    Each entry maps a resource id to ``(activity key, activity)``: the
    key captures every input of the stream-driven activity computation
    (the expensive factor of the resource's energy term), the value is
    the float it produced.  A later evaluation reuses the activity when
    — and only when — its own key is equal, then replays the cheap
    energy arithmetic on top of it.  ``header`` pins the context the
    activities were computed in (DFG identity and operating point); a
    header mismatch discards the whole breakdown.

    FU and register entries additionally carry ``(energy signature,
    energy)``: the signature covers every input of the term's energy
    arithmetic *beyond* the activity key and header (the cell and
    glitch count for FUs, the schedule length for registers).  When a
    later evaluation matches both the key and the signature, the term's
    energy is the same pure function of the same inputs, so the cached
    float is copied instead of recomputed — bit-identical by
    construction, it merely skips re-running identical arithmetic.
    """

    header: tuple
    #: simple FU instance id → (key, activity, energy sig, energy).
    fu: dict[str, tuple] = field(default_factory=dict)
    #: module instance id → (key, interleaved input activity).
    module: dict[str, tuple[tuple, float]] = field(default_factory=dict)
    #: register id → (key, activity, energy sig, energy).
    reg: dict[str, tuple] = field(default_factory=dict)


#: (id(mux cell), fan-in, vdd) → (cell, energy): memoized
#: ``MuxUsage(...).energy_per_sample`` results.  The energy is a pure
#: function of the key; the cell is pinned in the value (id-reuse
#: idiom).  Candidates at one operating point hit the same handful of
#: fan-ins thousands of times per pricing step.
_MUX_ENERGY: dict = {}

#: (n_states, n_control_signals, vdd) → energy: memoized
#: ``ControllerUsage(...).energy_per_sample`` results (pure arithmetic
#: on the key — nothing to pin).
_CTRL_ENERGY: dict = {}


def _reset_energy_memos() -> None:
    _MUX_ENERGY.clear()
    _CTRL_ENERGY.clear()


#: ``(_AREA_REF, area_of, Metrics)`` bound from ``.costs`` on first use.
#: A module-scope import would be circular (costs imports this module),
#: and re-importing inside :func:`plan_evaluation` /
#: :func:`finish_evaluation` costs a trip through the import machinery
#: per priced candidate; a None check replaces it.
_COSTS_NAMES: tuple | None = None


def _bind_costs() -> None:
    global _COSTS_NAMES
    from .costs import _AREA_REF, Metrics, area_of

    _COSTS_NAMES = (_AREA_REF, area_of, Metrics)


def _header(solution: Solution) -> tuple:
    """Context fingerprint a breakdown is only valid under."""
    return (
        id(solution.dfg),
        solution.clk_ns,
        solution.vdd,
        solution.sampling_ns,
    )


def _module_addends(
    solution: Solution,
    inst: Instance,
    groups: list[tuple[str, ...]],
    input_activity: float,
    glitch_evals: int,
) -> tuple[float, ...]:
    """The ordered ``extra_energy`` addends of one module instance.

    One addend per execution (characterized energy at the interleaved
    input activity) plus the steering-mux glitch term, in the exact
    order the original evaluator accumulated them.
    """
    assert inst.module is not None
    addends: list[float] = []
    for group in groups:
        (node_id,) = group
        behavior = solution.dfg.node(node_id).behavior
        addends.append(
            inst.module.energy_per_exec(
                solution.vdd, input_activity, behavior=behavior
            )
        )
    # Shared modules glitch on their steering muxes too.
    addends.append(
        glitch_evals
        * GLITCH_FRACTION
        * inst.module.energy_per_exec(solution.vdd, 0.5)
        / max(len(groups), 1)
    )
    return tuple(addends)


class _StreamTerm(NamedTuple):
    """One stream-derived energy term of a planned evaluation.

    ``activity`` is set when the term's switching activity is already
    known (reused from the base breakdown, or structurally zero);
    otherwise ``ports`` indexes into the plan's activity-request list —
    one request per operand port for FU/module terms, exactly one for
    register terms.

    A NamedTuple built positionally via ``_make`` (plain-tuple
    construction): tens of thousands of terms are created per pricing
    step, and a dataclass ``__init__`` costs ~1µs each.
    """

    kind: str  # "module" | "fu" | "reg"
    res_id: str
    key: tuple
    width: int
    reused: bool
    activity: float | None
    ports: tuple[int, ...]
    # FU/module extras.
    inst: Instance | None
    groups: tuple[tuple[str, ...], ...]
    glitch_evals: int
    # Register extras.
    n_writes: int
    # Energy caching (FU/reg only): ``energy_sig`` covers the term's
    # energy inputs beyond (header, key, activity); ``energy`` is the
    # base's cached float when both key and sig matched, else None.
    energy_sig: tuple
    energy: float | None


@dataclass
class EvaluationPlan:
    """Everything :func:`finish_evaluation` needs except the activities.

    Produced by :func:`plan_evaluation`: the netlist has been rebuilt,
    the schedule resolved, every stream-free term computed, and every
    stream-derived term either matched against the base breakdown or
    turned into entries of ``requests`` — the ``(streams, width)``
    activity requests still to be priced.  Splitting the evaluator here
    lets :meth:`~repro.synthesis.costs.EvaluationContext.evaluate_batch`
    gather the requests of a whole candidate set and resolve them with
    one batched kernel call before replaying each candidate's float
    arithmetic unchanged.
    """

    solution: Solution
    header: tuple
    terms: list[_StreamTerm]
    requests: list[tuple[list[np.ndarray], int]]
    area: float  # includes controller area
    schedule_length: int
    feasible: bool
    violation: float
    mux_terms: list[float]
    wire_energy: float
    controller_energy: float


def plan_evaluation(
    ctx: "EvaluationContext",
    solution: Solution,
    base: Breakdown | None = None,
) -> EvaluationPlan:
    """Phase one of :func:`evaluate_solution`: everything but activities.

    Rebuilds the netlist, resolves the schedule and computes all
    stream-free terms; stream-derived terms are keyed against *base*
    and unresolved activities become batched kernel requests.
    """
    if _COSTS_NAMES is None:
        _bind_costs()
    _AREA_REF, area_of, _Metrics = _COSTS_NAMES

    netlist = build_netlist(solution)
    area = area_of(solution, netlist)
    sched = ctx.schedule_of(solution)
    feasible = solution.is_feasible()
    violation = 0.0
    if not feasible:
        excess = max(0, sched.length - solution.deadline_cycles)
        violation = excess / max(solution.deadline_cycles, 1)
        violation += 0.1 * len(solution.register_conflicts())

    fanin = netlist.fanin_ports()
    header = _header(solution)
    if base is not None and base.header != header:
        base = None
    vdd = solution.vdd

    def instance_width(inst_id: str) -> int:
        return max(
            (
                solution.dfg.node(node_id).width
                for group in solution.executions[inst_id]
                for node_id in group
            ),
            default=16,
        )

    multi_ports_of: dict[str, int] = {}
    for (comp, _p), n_srcs in fanin.items():
        if n_srcs > 1:
            multi_ports_of[comp] = multi_ports_of.get(comp, 0) + 1

    # Glitch counts — spurious evaluations from input-mux switching on a
    # shared unit: each multi-source port re-triggers the combinational
    # logic once per select change (≈ executions − 1) — are computed
    # inline in the instance loop below.

    terms: list[_StreamTerm] = []
    new_term = _StreamTerm._make
    netlist_comps = netlist._components
    requests: list[tuple[list[np.ndarray], int]] = []

    def port_requests(groups: list[tuple[str, ...]], width: int) -> tuple[int, ...]:
        """Per-port activity requests of one FU/module instance — the
        same port decomposition :func:`~repro.power.activity.
        operand_activity` performs."""
        streams_per_op = [
            ctx._operand_streams(solution, group) for group in groups
        ]
        n_ports = max(len(ops) for ops in streams_per_op)
        slots = []
        for port in range(n_ports):
            port_streams = [
                ops[port] for ops in streams_per_op if port < len(ops)
            ]
            slots.append(len(requests))
            requests.append((port_streams, width))
        return tuple(slots)

    # Stream-derived terms, in instance insertion order — the order the
    # original evaluator built (and summed) its usage records in.  Only
    # the switching activity of each term is reused from the base; the
    # energy arithmetic on top of it is replayed every time, with the
    # candidate's own cell, glitch count and schedule length.
    exec_groups = sched.exec_groups_memo
    base_fu = base.fu if base is not None else None
    base_module = base.module if base is not None else None
    base_reg = base.reg if base is not None else None
    for inst_id, inst in solution.instances.items():
        groups = exec_groups.get(inst_id)
        if groups is None:
            groups = tuple(ctx._execution_order(solution, inst_id))
            exec_groups[inst_id] = groups
        if not groups:
            continue
        is_module = inst.is_module
        if is_module:
            # Module components carry no width in the netlist; their
            # stream width is the widest hierarchical node they run.
            width = instance_width(inst_id)
            kind = "module"
            energy_sig: tuple = ()
            prior = base_module.get(inst_id) if base_module is not None else None
        else:
            # Same max-over-executed-nodes the netlist builder just
            # computed for this FU component — read it back instead
            # (raw component map: the accessor wrapper is measurable
            # at this call rate, and the id exists by construction).
            width = netlist_comps[inst_id].width
            kind = "fu"
            # Beyond (header, key, activity) the FU energy depends only
            # on the bound cell (A-cell swaps keep the key!) and the
            # netlist-derived glitch count.
            prior = base_fu.get(inst_id) if base_fu is not None else None
        n_execs = len(groups)
        glitch_evals = (
            multi_ports_of.get(inst_id, 0) * (n_execs - 1)
            if n_execs > 1
            else 0
        )
        if not is_module:
            assert inst.cell is not None
            energy_sig = (inst.cell.name, glitch_evals)
        key = (groups, width)
        energy: float | None = None
        if prior is not None and prior[0] == key:
            activity: float | None = prior[1]
            reused, ports = True, ()
            if (
                not is_module
                and len(prior) == 4
                and prior[2] == energy_sig
            ):
                energy = prior[3]
        else:
            activity, reused = None, False
            ports = port_requests(groups, width)
            if not ports:
                activity = 0.0  # no operand ports → defined as zero
        terms.append(new_term((
            kind, inst_id, key, width, reused, activity, ports,
            inst, groups, glitch_evals, 0, energy_sig, energy,
        )))

    sched_avail = sched.avail
    # Beyond (header, key, activity) a register's energy depends only on
    # the schedule length (idle clocking) and the library register cell.
    reg_sig = (sched.length, solution.library.register_cell.name)
    for reg_id, signals in solution.reg_signals.items():
        # Single-value registers dominate; sorting their one signal
        # (with a lambda key) was measurable across thousands of plans.
        if len(signals) > 1:
            ordered = sorted(signals, key=lambda s: sched_avail.get(s, 0))
        else:
            ordered = signals
        # The netlist builder computed this register's width from the
        # same signal set moments ago (no registers are skipped on the
        # evaluation path).
        reg_width = netlist_comps[reg_id].width
        key = (tuple(ordered), reg_width)
        prior = base_reg.get(reg_id) if base_reg is not None else None
        energy = None
        if prior is not None and prior[0] == key:
            activity = prior[1]
            reused, ports = True, ()
            if len(prior) == 4 and prior[2] == reg_sig:
                energy = prior[3]
        else:
            activity, reused = None, False
            ports = (len(requests),)
            requests.append(
                (
                    [ctx.sim.stream(ctx.path, signal) for signal in ordered],
                    reg_width,
                )
            )
        terms.append(new_term((
            "reg", reg_id, key, reg_width, reused, activity, ports,
            None, (), 0, len(ordered), reg_sig, energy,
        )))

    # Stream-free terms are always recomputed: they are cheap, and
    # computing them from the candidate's own netlist is what catches a
    # local move's side effects on shared structure.
    mux_terms: list[float] = []
    mux_cell = solution.library.mux_cell
    for (_dst, _port), n_srcs in fanin.items():
        if n_srcs > 1:
            mkey = (id(mux_cell), n_srcs, vdd)
            cached = _MUX_ENERGY.get(mkey)
            if cached is not None and cached[0] is mux_cell:
                mux_terms.append(cached[1])
            else:
                if len(_MUX_ENERGY) >= 4096:
                    _MUX_ENERGY.clear()
                mux_energy = MuxUsage(
                    cell=mux_cell,
                    n_inputs=n_srcs,
                    accesses_per_sample=n_srcs,
                ).energy_per_sample(vdd)
                _MUX_ENERGY[mkey] = (mux_cell, mux_energy)
                mux_terms.append(mux_energy)

    # Average wire length grows with the square root of circuit area;
    # _AREA_REF pins the factor to 1.0 for a mid-size datapath.
    interconnect = InterconnectUsage(
        n_connections=netlist.n_connections(),
        length_factor=math.sqrt(max(area, 1.0) / _AREA_REF),
    )

    # Controller estimate: one start per execution, one load per
    # registered value, one select per mux leg (see the paper's
    # FSM-controller output; SIS-synthesized in the original flow).
    n_starts = sum(len(groups) for groups in solution.executions.values())
    controller = ControllerUsage(
        n_states=max(sched.length, 1),
        n_control_signals=(
            n_starts + len(solution.reg_signals) + netlist.mux_legs()
        ),
    )
    ckey = (controller.n_states, controller.n_control_signals, vdd)
    controller_energy = _CTRL_ENERGY.get(ckey)
    if controller_energy is None:
        if len(_CTRL_ENERGY) >= 4096:
            _CTRL_ENERGY.clear()
        controller_energy = controller.energy_per_sample(vdd)
        _CTRL_ENERGY[ckey] = controller_energy

    return EvaluationPlan(
        solution=solution,
        header=header,
        terms=terms,
        requests=requests,
        area=area + controller.area(),
        schedule_length=sched.length,
        feasible=feasible,
        violation=violation,
        mux_terms=mux_terms,
        wire_energy=interconnect.energy_per_sample(vdd),
        controller_energy=controller_energy,
    )


def finish_evaluation(
    plan: EvaluationPlan, activities: list[float]
) -> tuple["Metrics", Breakdown, int, int]:
    """Phase two: replay the per-term float arithmetic of a plan.

    ``activities`` resolves ``plan.requests`` position for position
    (:func:`repro.power.activity.batch_activities` output).  The
    arithmetic below accumulates terms in exactly the order the
    original single-pass evaluator used, so results are bit-identical
    regardless of how the activities were batched.
    """
    if _COSTS_NAMES is None:
        _bind_costs()
    Metrics = _COSTS_NAMES[2]

    solution = plan.solution
    vdd = solution.vdd
    breakdown = Breakdown(plan.header)
    bd_fu = breakdown.fu
    bd_reg = breakdown.reg
    # Every register term of one plan scales the identical idle
    # clock-tree product (fraction × schedule length × idle-op energy),
    # so it is computed once here — same floats in the same order as
    # ``RegisterUsage.energy_per_sample``, whose arithmetic the replay
    # branches below mirror term for term.
    reg_cell = solution.library.register_cell
    reg_clock_energy = (
        REGISTER_CLOCK_FRACTION
        * plan.schedule_length
        * reg_cell.energy_per_op(vdd, 0.0)
    )
    reused = 0
    fu_terms: list[float] = []
    reg_terms: list[float] = []
    extra_energy = 0.0
    for term in plan.terms:
        # One positional unpack per term (attribute access per field
        # would cost ~10 extra lookups on this very hot loop).
        (kind, res_id, key, width, was_reused, activity, ports, inst,
         groups, glitch_evals, n_writes, energy_sig, energy) = term
        if activity is None:
            if kind == "reg" or len(ports) == 1:
                # Registers request exactly one activity; a one-port
                # unit's mean IS that port's activity (np.mean of a
                # single float is exact), so the kernel result is used
                # directly either way.
                activity = activities[ports[0]]
            else:
                # The unit's activity is the mean over its operand ports
                # — the same float(np.mean([...])) the scalar path
                # computes.
                activity = float(
                    np.mean([activities[p] for p in ports])
                )
        reused += was_reused
        if kind == "module":
            assert inst is not None
            breakdown.module[res_id] = (key, activity)
            addends = _module_addends(
                solution, inst, list(groups), activity, glitch_evals,
            )
            for addend in addends:
                extra_energy += addend
        elif kind == "fu":
            # A None energy means key or signature mismatch: replay the
            # arithmetic.  A cached float is the result of the identical
            # arithmetic on identical inputs (same key, same signature,
            # same header).
            if energy is None:
                # Inlined ``FUUsage.energy_per_sample`` (identical ops
                # in identical order): constructing a usage record per
                # term is measurable on this loop.
                assert inst is not None and inst.cell is not None
                cell = inst.cell
                activations = len(groups)
                if activations == 0:
                    energy = 0.0
                else:
                    useful = activations * cell.energy_per_op(vdd, activity)
                    glitch = (
                        glitch_evals
                        * GLITCH_FRACTION
                        * cell.energy_per_op(vdd, 0.5)
                    )
                    energy = (useful + glitch) * (width / 16.0)
            bd_fu[res_id] = (key, activity, energy_sig, energy)
            fu_terms.append(energy)
        else:
            if energy is None:
                # Inlined ``RegisterUsage.energy_per_sample`` with the
                # plan-constant clock term hoisted above.
                if n_writes == 0:
                    write_energy = 0.0
                else:
                    write_energy = n_writes * reg_cell.energy_per_op(
                        vdd, activity
                    )
                energy = (write_energy + reg_clock_energy) * (width / 16.0)
            bd_reg[res_id] = (key, activity, energy_sig, energy)
            reg_terms.append(energy)

    report = PowerReport(
        fu_energy=sum(fu_terms),
        register_energy=sum(reg_terms),
        mux_energy=sum(plan.mux_terms),
        wire_energy=plan.wire_energy,
        extra_energy=extra_energy,
        sampling_period_ns=solution.sampling_ns,
        vdd=vdd,
        controller_energy=plan.controller_energy,
    )
    metrics = Metrics(
        area=plan.area,
        energy_per_sample=report.total_energy,
        power=report.power,
        schedule_length=plan.schedule_length,
        feasible=plan.feasible,
        report=report,
        violation=plan.violation,
    )
    return metrics, breakdown, reused, len(plan.terms)


def evaluate_solution(
    ctx: "EvaluationContext",
    solution: Solution,
    base: Breakdown | None = None,
) -> tuple["Metrics", Breakdown, int, int]:
    """Evaluate *solution*, reusing *base*'s terms where keys match.

    With ``base=None`` this **is** the full evaluator (netlist rebuild
    plus trace-driven estimation); with a base breakdown it prices the
    solution incrementally.  Both paths run the identical float
    operations in the identical order, so the returned metrics are bit
    for bit the same either way.

    Returns ``(metrics, breakdown, reused_terms, stream_terms)`` where
    the counts cover the stream-derived terms (FU, module, register)
    that were copied from the base versus present in total.
    """
    plan = plan_evaluation(ctx, solution, base)
    activities = batch_activities(plan.requests) if plan.requests else []
    return finish_evaluation(plan, activities)
