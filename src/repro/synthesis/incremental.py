"""Incremental (delta) cost evaluation for the KL inner loop.

Pricing a candidate move used to mean a full re-evaluation: rebuild the
netlist, reschedule, and — the expensive part — re-assemble every
per-resource stream interleaving and push it through the switched-
capacitance model.  A local move (swap one cell, merge two registers)
leaves most of those stream-derived energy terms untouched, so this
module prices solutions *by delta*: the evaluation context keeps a
:class:`Breakdown` of the last full evaluation, and every term whose
inputs provably did not change is reused instead of recomputed.

Bit-identity is the design constraint, enforced structurally rather
than numerically: there is exactly **one** evaluation function
(:func:`evaluate_solution`), used for both the from-scratch and the
delta path.  It computes each energy term either fresh or by copying
the base solution's float, and accumulates them in exactly the order
the original evaluator used — so a reused term contributes the very
same IEEE-754 value to the very same summation sequence, and the
resulting :class:`~repro.synthesis.costs.Metrics` are equal bit for
bit.  Golden cost snapshots therefore do not move when incremental
evaluation is switched on.

What is reused is the *switching activity* of each resource — the only
stream-derived (and therefore expensive) factor of its energy term.
Everything downstream of the activity (cell energy at that activity,
glitch surcharge, width scaling, idle clocking) is cheap arithmetic and
is always replayed, so a reused activity flows through the identical
float operations a fresh one would.  What decides reuse is an
*activity key*, not the move's footprint:

* functional unit / complex module — (executions in scheduled order,
  width): these determine the operand streams and their interleaving;
* register — (written signals in availability order, width): these
  determine the write-value stream.

Notably the keys exclude the bound cell and the schedule length: an
A-cell swap reuses the touched instance's own activity (same operands,
different cell), and a schedule shift reuses every register's write
activity while the idle-clocking arithmetic is replayed with the new
length.  The keys are built from the candidate's own (cheaply
recomputed) netlist and schedule, so any side effect a move has on an
untouched resource — a register merge reordering writes, a serialization
change on a shared unit — changes that resource's key and forces
recomputation.  Moves that can change the schedule length or the
register-conflict set globally (type-B resynthesis, chain formation,
module merges) carry no footprint at all and are priced from scratch;
for footprinted moves, a wholesale key mismatch degenerates into the
full evaluation automatically (counted as a delta fall-back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..power.activity import interleaved_activity, operand_activity
from ..power.estimator import (
    GLITCH_FRACTION,
    ControllerUsage,
    FUUsage,
    InterconnectUsage,
    MuxUsage,
    PowerReport,
    RegisterUsage,
)
from .datapath_build import build_netlist
from .solution import Instance, Solution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .costs import EvaluationContext, Metrics

__all__ = ["Breakdown", "evaluate_solution"]


@dataclass
class Breakdown:
    """Per-resource switching activities of one evaluated solution.

    Each entry maps a resource id to ``(activity key, activity)``: the
    key captures every input of the stream-driven activity computation
    (the expensive factor of the resource's energy term), the value is
    the float it produced.  A later evaluation reuses the activity when
    — and only when — its own key is equal, then replays the cheap
    energy arithmetic on top of it.  ``header`` pins the context the
    activities were computed in (DFG identity and operating point); a
    header mismatch discards the whole breakdown.
    """

    header: tuple
    #: simple FU instance id → (key, interleaved operand activity).
    fu: dict[str, tuple[tuple, float]] = field(default_factory=dict)
    #: module instance id → (key, interleaved input activity).
    module: dict[str, tuple[tuple, float]] = field(default_factory=dict)
    #: register id → (key, interleaved write activity).
    reg: dict[str, tuple[tuple, float]] = field(default_factory=dict)


def _header(solution: Solution) -> tuple:
    """Context fingerprint a breakdown is only valid under."""
    return (
        id(solution.dfg),
        solution.clk_ns,
        solution.vdd,
        solution.sampling_ns,
    )


def _module_addends(
    solution: Solution,
    inst: Instance,
    groups: list[tuple[str, ...]],
    input_activity: float,
    glitch_evals: int,
) -> tuple[float, ...]:
    """The ordered ``extra_energy`` addends of one module instance.

    One addend per execution (characterized energy at the interleaved
    input activity) plus the steering-mux glitch term, in the exact
    order the original evaluator accumulated them.
    """
    assert inst.module is not None
    addends: list[float] = []
    for group in groups:
        (node_id,) = group
        behavior = solution.dfg.node(node_id).behavior
        addends.append(
            inst.module.energy_per_exec(
                solution.vdd, input_activity, behavior=behavior
            )
        )
    # Shared modules glitch on their steering muxes too.
    addends.append(
        glitch_evals
        * GLITCH_FRACTION
        * inst.module.energy_per_exec(solution.vdd, 0.5)
        / max(len(groups), 1)
    )
    return tuple(addends)


def evaluate_solution(
    ctx: "EvaluationContext",
    solution: Solution,
    base: Breakdown | None = None,
) -> tuple["Metrics", Breakdown, int, int]:
    """Evaluate *solution*, reusing *base*'s terms where keys match.

    With ``base=None`` this **is** the full evaluator (netlist rebuild
    plus trace-driven estimation); with a base breakdown it prices the
    solution incrementally.  Both paths run the identical float
    operations in the identical order, so the returned metrics are bit
    for bit the same either way.

    Returns ``(metrics, breakdown, reused_terms, stream_terms)`` where
    the counts cover the stream-derived terms (FU, module, register)
    that were copied from the base versus present in total.
    """
    # Local import: costs imports this module lazily, so importing it
    # back at module scope would be circular.
    from .costs import _AREA_REF, Metrics, area_of

    netlist = build_netlist(solution)
    area = area_of(solution, netlist)
    sched = ctx.schedule_of(solution)
    feasible = solution.is_feasible()
    violation = 0.0
    if not feasible:
        excess = max(0, sched.length - solution.deadline_cycles)
        violation = excess / max(solution.deadline_cycles, 1)
        violation += 0.1 * len(solution.register_conflicts())

    fanin = netlist.fanin_ports()
    header = _header(solution)
    if base is not None and base.header != header:
        base = None
    breakdown = Breakdown(header)
    reused = 0
    stream_terms = 0
    vdd = solution.vdd

    def instance_width(inst_id: str) -> int:
        return max(
            (
                solution.dfg.node(node_id).width
                for group in solution.executions[inst_id]
                for node_id in group
            ),
            default=16,
        )

    multi_ports_of: dict[str, int] = {}
    for (comp, _p), n_srcs in fanin.items():
        if n_srcs > 1:
            multi_ports_of[comp] = multi_ports_of.get(comp, 0) + 1

    def glitches(inst_id: str, n_execs: int) -> int:
        """Spurious evaluations from input-mux switching on a shared
        unit: each multi-source port re-triggers the combinational
        logic once per select change (≈ executions − 1)."""
        if n_execs < 2:
            return 0
        return multi_ports_of.get(inst_id, 0) * (n_execs - 1)

    # Stream-derived terms, in instance insertion order — the order the
    # original evaluator built (and summed) its usage records in.  Only
    # the switching activity of each term is reused from the base; the
    # energy arithmetic on top of it is replayed every time, with the
    # candidate's own cell, glitch count and schedule length.
    fu_terms: list[float] = []
    extra_energy = 0.0
    for inst_id, inst in solution.instances.items():
        groups = ctx._execution_order(solution, inst_id)
        if not groups:
            continue
        if inst.is_module:
            # Module components carry no width in the netlist; their
            # stream width is the widest hierarchical node they run.
            width = instance_width(inst_id)
        else:
            # Same max-over-executed-nodes the netlist builder just
            # computed for this FU component — read it back instead.
            width = netlist.component(inst_id).width
        glitch_evals = glitches(inst_id, len(groups))
        key = (tuple(groups), width)
        stream_terms += 1
        if inst.is_module:
            prior = base.module.get(inst_id) if base is not None else None
            if prior is not None and prior[0] == key:
                input_activity = prior[1]
                reused += 1
            else:
                input_activity = operand_activity(
                    [ctx._operand_streams(solution, group) for group in groups],
                    width,
                )
            breakdown.module[inst_id] = (key, input_activity)
            addends = _module_addends(
                solution, inst, groups, input_activity, glitch_evals
            )
            for addend in addends:
                extra_energy += addend
        else:
            assert inst.cell is not None
            prior = base.fu.get(inst_id) if base is not None else None
            if prior is not None and prior[0] == key:
                activity = prior[1]
                reused += 1
            else:
                activity = operand_activity(
                    [ctx._operand_streams(solution, group) for group in groups],
                    width,
                )
            breakdown.fu[inst_id] = (key, activity)
            energy = FUUsage(
                cell=inst.cell,
                operand_streams_per_op=[],
                width=width,
                activations_per_sample=len(groups),
                glitch_evaluations=glitch_evals,
            ).energy_per_sample(vdd, activity=activity)
            fu_terms.append(energy)

    reg_terms: list[float] = []
    for reg_id, signals in solution.reg_signals.items():
        ordered = sorted(signals, key=lambda s: sched.avail.get(s, 0))
        # The netlist builder computed this register's width from the
        # same signal set moments ago (no registers are skipped on the
        # evaluation path).
        reg_width = netlist.component(reg_id).width
        key = (tuple(ordered), reg_width)
        stream_terms += 1
        prior = base.reg.get(reg_id) if base is not None else None
        if prior is not None and prior[0] == key:
            activity = prior[1]
            reused += 1
        else:
            activity = interleaved_activity(
                [ctx.sim.stream(ctx.path, signal) for signal in ordered],
                reg_width,
            )
        breakdown.reg[reg_id] = (key, activity)
        energy = RegisterUsage(
            cell=solution.library.register_cell,
            value_streams=[],
            width=reg_width,
            clocked_cycles=sched.length,
            writes_per_sample=len(ordered),
        ).energy_per_sample(vdd, activity=activity)
        reg_terms.append(energy)

    # Stream-free terms are always recomputed: they are cheap, and
    # computing them from the candidate's own netlist is what catches a
    # local move's side effects on shared structure.
    mux_terms: list[float] = []
    for (_dst, _port), n_srcs in fanin.items():
        if n_srcs > 1:
            mux_terms.append(
                MuxUsage(
                    cell=solution.library.mux_cell,
                    n_inputs=n_srcs,
                    accesses_per_sample=n_srcs,
                ).energy_per_sample(vdd)
            )

    # Average wire length grows with the square root of circuit area;
    # _AREA_REF pins the factor to 1.0 for a mid-size datapath.
    interconnect = InterconnectUsage(
        n_connections=netlist.n_connections(),
        length_factor=math.sqrt(max(area, 1.0) / _AREA_REF),
    )

    # Controller estimate: one start per execution, one load per
    # registered value, one select per mux leg (see the paper's
    # FSM-controller output; SIS-synthesized in the original flow).
    n_starts = sum(len(groups) for groups in solution.executions.values())
    controller = ControllerUsage(
        n_states=max(sched.length, 1),
        n_control_signals=(
            n_starts + len(solution.reg_signals) + netlist.mux_legs()
        ),
    )
    area += controller.area()

    report = PowerReport(
        fu_energy=sum(fu_terms),
        register_energy=sum(reg_terms),
        mux_energy=sum(mux_terms),
        wire_energy=interconnect.energy_per_sample(vdd),
        extra_energy=extra_energy,
        sampling_period_ns=solution.sampling_ns,
        vdd=vdd,
        controller_energy=controller.energy_per_sample(vdd),
    )
    metrics = Metrics(
        area=area,
        energy_per_sample=report.total_energy,
        power=report.power,
        schedule_length=sched.length,
        feasible=feasible,
        report=report,
        violation=violation,
    )
    return metrics, breakdown, reused, stream_terms
