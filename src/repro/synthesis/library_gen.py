"""Populating the complex-module library from a design's behaviors.

The paper's library contains pre-characterized complex RTL modules
(Figure 2: C1..C5) that hierarchical synthesis draws on via move A.
This module builds such a library automatically: every behavior of a
design is synthesized standalone under a couple of (objective, laxity)
corners and the results are characterized and registered.  This is the
"offline" library-preparation step; the synthesis-time comparisons of
Tables 3/4 do not include it, just as the paper's CPU times do not
include building its module library.
"""

from __future__ import annotations

from ..dfg.hierarchy import Design
from ..library.library import ModuleLibrary, default_library
from .api import synthesize
from .context import SynthesisConfig
from .costs import Objective
from .modulegen import characterize_module

__all__ = ["build_complex_library"]


def build_complex_library(
    design: Design,
    library: ModuleLibrary | None = None,
    objectives: tuple[Objective, ...] = ("area", "power"),
    laxity_factors: tuple[float, ...] = (1.2, 2.4),
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
) -> ModuleLibrary:
    """Synthesize and register complex modules for every sub-behavior.

    Each DFG *variant* of each non-top behavior is synthesized once per
    (objective, laxity factor) corner; the corners give the library the
    spread the paper's Figure 2 shows (fast/parallel modules next to
    compact shared ones and low-power slow ones).
    """
    library = library if library is not None else default_library()
    config = config or SynthesisConfig()
    top_behavior = design.top.behavior

    for behavior in design.behaviors():
        if behavior == top_behavior:
            continue
        for variant in design.variants(behavior):
            wrapper = Design(f"lib_{variant.name}")
            for dfg in design.dfgs():
                if dfg.name != design.top_name:
                    wrapper.add_dfg(dfg)
            wrapper.set_top(variant.name)
            for laxity in laxity_factors:
                for objective in objectives:
                    result = synthesize(
                        wrapper,
                        library,
                        laxity_factor=laxity,
                        objective=objective,
                        config=config,
                        n_samples=n_samples,
                    )
                    module = characterize_module(
                        f"{variant.name}_{objective}_lf{laxity:g}",
                        behavior,
                        result.solution,
                        result.sim,
                        (),
                    )
                    library.add_complex_module(module)
    return library
