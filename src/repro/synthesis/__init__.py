"""The synthesis core: the paper's primary contribution.

Entry points:

* :func:`~repro.synthesis.api.synthesize` — hierarchical synthesis of a
  design under a throughput constraint (area or power objective);
* :func:`~repro.synthesis.api.synthesize_flat` — the flattened baseline
  (ref. [10]) used for the paper's comparisons;
* :func:`~repro.synthesis.api.voltage_scale` — post-synthesis Vdd
  scaling of an area-optimized architecture.

Internals: :mod:`solution` (architecture state), :mod:`initial`
(INITIAL_SOLUTION), :mod:`moves` (move types A–D), :mod:`improve`
(variable-depth iterative improvement, Figure 4), :mod:`costs`
(trace-driven cost function), :mod:`modulegen` (module
characterization + RTL-embedding merges), :mod:`pruning` (Vdd/clock
sets) and :mod:`datapath_build` (netlist + FSM construction).
"""

from ..telemetry import Telemetry
from .api import (
    PointCandidate,
    SynthesisResult,
    synthesize,
    synthesize_flat,
    voltage_scale,
)
from .caching import LRUCache
from .context import SynthesisConfig, SynthesisEnv, ensure_behavior
from .costs import EvaluationContext, Metrics, Objective, area_of
from .datapath_build import build_controller, build_netlist
from .improve import PassRecord, improve_solution, resynthesize_module
from .initial import initial_module_for, initial_solution
from .modulegen import ModuleInternal, characterize_module, merge_modules
from .moves import (
    Candidate,
    normalize_registers,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from .pruning import (
    candidate_clocks,
    candidate_vdds,
    laxity_sampling_ns,
    min_sampling_period_ns,
)
from .solution import Instance, Solution

__all__ = [
    "Candidate",
    "EvaluationContext",
    "Instance",
    "LRUCache",
    "Metrics",
    "Telemetry",
    "ModuleInternal",
    "Objective",
    "PassRecord",
    "PointCandidate",
    "Solution",
    "SynthesisConfig",
    "SynthesisEnv",
    "SynthesisResult",
    "area_of",
    "build_controller",
    "build_netlist",
    "candidate_clocks",
    "candidate_vdds",
    "characterize_module",
    "ensure_behavior",
    "improve_solution",
    "initial_module_for",
    "initial_solution",
    "laxity_sampling_ns",
    "merge_modules",
    "min_sampling_period_ns",
    "normalize_registers",
    "resynthesize_module",
    "sharing_candidates",
    "splitting_candidates",
    "synthesize",
    "synthesize_flat",
    "type_a_b_candidates",
    "voltage_scale",
]
