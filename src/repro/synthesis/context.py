"""Shared synthesis environment and tuning knobs.

One :class:`SynthesisEnv` is created per top-level ``synthesize()``
call and threaded through initial-solution construction, move
generation and the iterative-improvement driver.  It owns the things
that are fixed for the run (design, library, objective, configuration)
and caches the complex modules synthesized for behaviors the library
cannot supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..dfg.graph import DFG
from ..dfg.hierarchy import Design
from ..errors import LibraryError
from ..library.library import ModuleLibrary
from ..power.simulate import SimTrace, simulate_subgraph
from ..rtl.module import RTLModule
from .costs import EvaluationContext, Objective

__all__ = ["SynthesisConfig", "SynthesisEnv", "ensure_behavior"]


@dataclass
class SynthesisConfig:
    """Effort/size knobs for the iterative-improvement engine.

    Defaults are tuned so a 30-operation behavior synthesizes in a few
    seconds; raise the limits for deeper exploration.
    """

    #: Moves per variable-depth pass (Figure 4's MAX_MOVES).
    max_moves: int = 10
    #: Maximum improvement passes per (Vdd, clock) point.
    max_passes: int = 6
    #: Instances targeted per type-A/B move-selection round ("module
    #: group formation", Figure 5).
    max_ab_targets: int = 6
    #: Candidate pairs examined per resource-sharing round.
    max_share_pairs: int = 16
    #: Candidate instances examined per resource-splitting round.
    max_split_candidates: int = 8
    #: Improvement passes used when move B resynthesizes a sub-module.
    resynth_passes: int = 1
    #: Moves per pass during move-B resynthesis.
    resynth_moves: int = 6
    #: Gains below this threshold count as zero.
    epsilon: float = 1e-9
    #: Clock-period candidates kept per supply voltage after pruning.
    n_clocks: int = 2
    #: Enable move B (descend and resynthesize complex modules).
    enable_resynthesis: bool = True
    #: Enable RTL embedding when sharing complex modules of different types.
    enable_embedding: bool = True


class SynthesisEnv:
    """Run-wide state shared by all synthesis stages."""

    def __init__(
        self,
        design: Design,
        library: ModuleLibrary,
        objective: Objective,
        config: SynthesisConfig | None = None,
    ):
        self.design = design
        self.library = library
        self.objective = objective
        self.config = config or SynthesisConfig()
        #: Modules synthesized on demand, keyed by (behavior, clk, vdd).
        self.module_cache: dict[tuple[str, float, float], RTLModule] = {}
        #: Fresh-name counter for generated module types.
        self._module_counter = 0

    def fresh_module_name(self, behavior: str) -> str:
        self._module_counter += 1
        return f"{behavior}_v{self._module_counter}"

    def context(self, sim: SimTrace) -> EvaluationContext:
        """Evaluation context for a DFG simulated at path ``()``."""
        return EvaluationContext(sim, (), self.objective)

    def sub_sim(self, dfg: DFG, input_streams: list[np.ndarray]) -> SimTrace:
        """Simulate a sub-behavior fed by its parent's streams."""
        return simulate_subgraph(self.design, dfg, input_streams)


def ensure_behavior(module: RTLModule, behavior: str, library: ModuleLibrary) -> bool:
    """Make *module* usable for *behavior*, via equivalence if needed.

    Returns True if the module supports the behavior directly or
    through a declared equivalence (in which case the implementation is
    aliased under the requested name); False otherwise.
    """
    if module.supports(behavior):
        return True
    for candidate in library.equivalences.equivalence_class(behavior):
        if module.supports(candidate):
            impl = module.impl(candidate)
            module.add_behavior(behavior, impl.profile, impl.cap_internal)
            return True
    return False
