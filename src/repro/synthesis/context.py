"""Shared synthesis environment and tuning knobs.

One :class:`SynthesisEnv` is created per top-level ``synthesize()``
call and threaded through initial-solution construction, move
generation and the iterative-improvement driver.  It owns the things
that are fixed for the run (design, library, objective, configuration)
and caches the complex modules synthesized for behaviors the library
cannot supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..dfg.graph import DFG
from ..dfg.hierarchy import Design
from ..errors import LibraryError
from ..library.library import ModuleLibrary
from ..power.simulate import SimTrace, simulate_subgraph
from ..rtl.module import RTLModule
from ..telemetry import Telemetry
from ..trace.recorder import TraceRecorder
from .caching import LRUCache
from .costs import DEFAULT_COST_CACHE_SIZE, EvaluationContext, Objective

__all__ = ["SynthesisConfig", "SynthesisEnv", "ensure_behavior"]


@dataclass
class SynthesisConfig:
    """Effort/size knobs for the iterative-improvement engine.

    Defaults are tuned so a 30-operation behavior synthesizes in a few
    seconds; raise the limits for deeper exploration.
    """

    #: Moves per variable-depth pass (Figure 4's MAX_MOVES).
    max_moves: int = 10
    #: Maximum improvement passes per (Vdd, clock) point.
    max_passes: int = 6
    #: Instances targeted per type-A/B move-selection round ("module
    #: group formation", Figure 5).
    max_ab_targets: int = 6
    #: Candidate pairs examined per resource-sharing round.
    max_share_pairs: int = 16
    #: Candidate instances examined per resource-splitting round.
    max_split_candidates: int = 8
    #: Improvement passes used when move B resynthesizes a sub-module.
    resynth_passes: int = 1
    #: Moves per pass during move-B resynthesis.
    resynth_moves: int = 6
    #: Gains below this threshold count as zero.
    epsilon: float = 1e-9
    #: Clock-period candidates kept per supply voltage after pruning.
    n_clocks: int = 2
    #: Enable move B (descend and resynthesize complex modules).
    enable_resynthesis: bool = True
    #: Enable RTL embedding when sharing complex modules of different types.
    enable_embedding: bool = True
    #: Worker processes for the outer (Vdd, clock) operating-point sweep.
    #: 1 = serial; >1 fans the independent points out over a process
    #: pool (results are bit-identical to the serial path).
    n_workers: int = 1
    #: Bound on the fingerprint-keyed cost cache (0 disables memoization).
    cost_cache_size: int = DEFAULT_COST_CACHE_SIZE
    #: Bound on the per-point module / resynthesis memo caches.
    module_cache_size: int = 256
    #: Differentially verify every committed KL pass prefix: execute the
    #: committed solution's RTL cycle by cycle and cross-check it against
    #: the (already memoized) DFG simulation.  A divergence raises
    #: :class:`~repro.errors.VerificationError` with a shrunk
    #: counterexample.  Off by default — it roughly doubles the cost of a
    #: committed pass; see ``docs/VERIFICATION.md``.
    verify_moves: bool = False
    #: Price local candidate moves incrementally: by delta against the
    #: current solution's per-term energy breakdown, with schedules
    #: shared across candidates whose task sets are equal.  Bit-identical
    #: results either way; see ``docs/PERFORMANCE.md``.
    incremental: bool = True
    #: Debug mode: recompute every delta-priced candidate from scratch
    #: as well and raise :class:`~repro.errors.SynthesisError` on any
    #: bitwise mismatch.  Roughly doubles pricing cost.
    validate_incremental: bool = False
    #: Discard provably dominated / structurally hopeless candidates
    #: before pricing (counted per family in telemetry as
    #: ``moves_pruned``).  Outcome-preserving by construction.
    prune: bool = True
    #: Threads for candidate scoring inside one improvement step.
    #: 1 = serial; >1 prices uncached candidates speculatively on a
    #: thread pool while all accounting stays serial, so results,
    #: telemetry and traces are identical at any setting.  Composes
    #: with ``n_workers`` (each sweep worker scores with its own pool).
    score_workers: int = 1
    #: Record the search as structured trace events (run → point → pass
    #: → move, with gain attribution); surfaced on
    #: ``SynthesisResult.trace_events`` and the CLI's ``--trace`` flag.
    #: See ``docs/TRACING.md``.
    trace: bool = False
    #: Include ``perf_counter_ns`` span timings in the trace.  Disable
    #: for byte-identical traces across runs and worker counts.
    trace_timings: bool = True
    #: Also emit one event per cost evaluation (cache hit/miss
    #: provenance).  Verbose; off by default.
    trace_evals: bool = False
    #: Hard bound on buffered trace events (excess is dropped+counted).
    trace_max_events: int = 1_000_000
    #: Run metadata embedded in the trace's ``run_start`` event (the CLI
    #: records benchmark/traces/seed here so ``repro-trace replay`` can
    #: reconstruct the run without the original process).
    trace_meta: dict | None = None


class SynthesisEnv:
    """Run-wide state shared by all synthesis stages."""

    def __init__(
        self,
        design: Design,
        library: ModuleLibrary,
        objective: Objective,
        config: SynthesisConfig | None = None,
    ):
        self.design = design
        self.library = library
        self.objective = objective
        self.config = config or SynthesisConfig()
        self.telemetry = Telemetry()
        #: Structured search trace (None when tracing is off).  Workers
        #: of the parallel sweep each own a fresh recorder; the parent
        #: merges their buffers in point order.
        self.trace: TraceRecorder | None = (
            TraceRecorder(
                timings=self.config.trace_timings,
                max_events=self.config.trace_max_events,
            )
            if self.config.trace
            else None
        )
        cap = self.config.module_cache_size
        #: Modules synthesized on demand, keyed by (behavior, clk, vdd).
        self.module_cache: LRUCache[tuple[str, float, float], RTLModule] = (
            LRUCache(cap)
        )
        #: Move-B resynthesis memo, keyed by
        #: (module name, node, budget, clk, vdd).  Generated module names
        #: are only unique within one operating point, so this cache (and
        #: module_cache) must be dropped between points — see
        #: :meth:`reset_point_caches`.
        self._resynth_cache: LRUCache[tuple, RTLModule | None] = LRUCache(cap)
        #: Re-entrancy guard: move B never descends more than one level.
        self._resynth_active = False
        #: Fresh-name counter for generated module types.
        self._module_counter = 0
        #: One shared EvaluationContext per SimTrace object, so the cost
        #: cache persists across the many context() calls of one point.
        #: The context holds the sim strongly, keeping id() keys valid.
        self._contexts: dict[int, EvaluationContext] = {}

    def fresh_module_name(self, behavior: str) -> str:
        """Mint a unique name for a newly synthesized complex module."""
        self._module_counter += 1
        return f"{behavior}_v{self._module_counter}"

    def reset_point_caches(self) -> None:
        """Drop per-operating-point state between (Vdd, clock) points.

        Generated module names restart from ``_v1`` at every point, so a
        cache entry surviving from another point could be hit through a
        name collision while describing a module characterized at a
        different (clk, vdd).  Resetting the counter too makes the names
        (and thus results) of the serial sweep bit-identical to the
        parallel sweep, which runs every point in a fresh worker.
        Telemetry is cumulative and deliberately survives the reset.
        """
        self.module_cache.clear()
        self._resynth_cache.clear()
        self._resynth_active = False
        self._module_counter = 0
        self._contexts.clear()

    def context(self, sim: SimTrace) -> EvaluationContext:
        """Evaluation context (with shared cost cache) for *sim* at path ``()``."""
        ctx = self._contexts.get(id(sim))
        if ctx is None:
            ctx = EvaluationContext(
                sim,
                (),
                self.objective,
                telemetry=self.telemetry,
                cache_size=self.config.cost_cache_size,
                recorder=self.trace if self.config.trace_evals else None,
                validate_incremental=self.config.validate_incremental,
                reuse_schedules=self.config.incremental,
            )
            # Bounded: evict the oldest context (and its strong sim ref;
            # live id() keys stay valid because live contexts pin their
            # sim objects).
            while len(self._contexts) >= 64:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[id(sim)] = ctx
        return ctx

    def sub_sim(self, dfg: DFG, input_streams: list[np.ndarray]) -> SimTrace:
        """Simulate a sub-behavior fed by its parent's streams."""
        return simulate_subgraph(self.design, dfg, input_streams)


def ensure_behavior(module: RTLModule, behavior: str, library: ModuleLibrary) -> bool:
    """Make *module* usable for *behavior*, via equivalence if needed.

    Returns True if the module supports the behavior directly or
    through a declared equivalence (in which case the implementation is
    aliased under the requested name); False otherwise.
    """
    if module.supports(behavior):
        return True
    for candidate in library.equivalences.equivalence_class(behavior):
        if module.supports(candidate):
            impl = module.impl(candidate)
            module.add_behavior(behavior, impl.profile, impl.cap_internal)
            return True
    return False
