"""Shared synthesis environment and tuning knobs.

One :class:`SynthesisEnv` is created per top-level ``synthesize()``
call and threaded through initial-solution construction, move
generation and the iterative-improvement driver.  It owns the things
that are fixed for the run (design, library, objective, configuration)
and caches the complex modules synthesized for behaviors the library
cannot supply.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..dfg.graph import DFG
from ..dfg.hierarchy import Design
from ..errors import LibraryError
from ..library.library import ModuleLibrary
from ..power.activity import reset_activity_caches
from ..search import make_policy
from .incremental import _reset_energy_memos
from ..power.simulate import SimTrace, simulate_subgraph
from ..rtl.module import RTLModule
from ..telemetry import Telemetry
from ..trace.recorder import TraceRecorder
from .caching import LRUCache
from .costs import DEFAULT_COST_CACHE_SIZE, EvaluationContext, Objective
from .store import SynthesisStore, context_signature, module_content_signature

__all__ = ["SynthesisConfig", "SynthesisEnv", "ensure_behavior"]


@dataclass
class SynthesisConfig:
    """Effort/size knobs for the iterative-improvement engine.

    Defaults are tuned so a 30-operation behavior synthesizes in a few
    seconds; raise the limits for deeper exploration.
    """

    #: Moves per variable-depth pass (Figure 4's MAX_MOVES).
    max_moves: int = 10
    #: Maximum improvement passes per (Vdd, clock) point.
    max_passes: int = 6
    #: Instances targeted per type-A/B move-selection round ("module
    #: group formation", Figure 5).
    max_ab_targets: int = 6
    #: Candidate pairs examined per resource-sharing round.
    max_share_pairs: int = 16
    #: Candidate instances examined per resource-splitting round.
    max_split_candidates: int = 8
    #: Improvement passes used when move B resynthesizes a sub-module.
    resynth_passes: int = 1
    #: Moves per pass during move-B resynthesis.
    resynth_moves: int = 6
    #: Gains below this threshold count as zero.
    epsilon: float = 1e-9
    #: Clock-period candidates kept per supply voltage after pruning.
    n_clocks: int = 2
    #: Enable move B (descend and resynthesize complex modules).
    enable_resynthesis: bool = True
    #: Enable RTL embedding when sharing complex modules of different types.
    enable_embedding: bool = True
    #: Worker processes for the outer (Vdd, clock) operating-point sweep.
    #: 1 = serial; >1 fans the independent points out over a process
    #: pool (results are bit-identical to the serial path).
    n_workers: int = 1
    #: Bound on the fingerprint-keyed cost cache (0 disables memoization).
    cost_cache_size: int = DEFAULT_COST_CACHE_SIZE
    #: Bound on the per-point module / resynthesis memo caches.
    module_cache_size: int = 256
    #: Differentially verify every committed KL pass prefix: execute the
    #: committed solution's RTL cycle by cycle and cross-check it against
    #: the (already memoized) DFG simulation.  A divergence raises
    #: :class:`~repro.errors.VerificationError` with a shrunk
    #: counterexample.  Off by default — it roughly doubles the cost of a
    #: committed pass; see ``docs/VERIFICATION.md``.
    verify_moves: bool = False
    #: Price local candidate moves incrementally: by delta against the
    #: current solution's per-term energy breakdown, with schedules
    #: shared across candidates whose task sets are equal.  Bit-identical
    #: results either way; see ``docs/PERFORMANCE.md``.
    incremental: bool = True
    #: Debug mode: recompute every delta-priced candidate from scratch
    #: as well and raise :class:`~repro.errors.SynthesisError` on any
    #: bitwise mismatch.  Roughly doubles pricing cost.
    validate_incremental: bool = False
    #: Price each KL round's candidate set through the batched activity
    #: kernel: collect every activity-key miss across the whole set and
    #: resolve them in one array pass (see
    #: :meth:`~repro.synthesis.costs.EvaluationContext.evaluate_batch`).
    #: Execution knob only — results, counters and traces are
    #: bit-identical either way.
    batch_activity: bool = True
    #: Discard provably dominated / structurally hopeless candidates
    #: before pricing (counted per family in telemetry as
    #: ``moves_pruned``).  Outcome-preserving by construction.
    prune: bool = True
    #: Discover each KL round's candidate set through the relational
    #: engine (:mod:`repro.synthesis.relational`): batched SQL joins
    #: emitting lazy candidate descriptors, with ``Solution.clone()``
    #: deferred past pruning.  Execution knob only — the candidate
    #: multiset, final solutions, goldens and traces are bit-identical
    #: to the legacy per-pair loops (``--no-relational``).
    relational: bool = True
    #: Threads for candidate scoring inside one improvement step.
    #: 1 = serial; >1 prices uncached candidates speculatively on a
    #: thread pool while all accounting stays serial, so results,
    #: telemetry and traces are identical at any setting.  Composes
    #: with ``n_workers`` (each sweep worker scores with its own pool).
    score_workers: int = 1
    #: Record the search as structured trace events (run → point → pass
    #: → move, with gain attribution); surfaced on
    #: ``SynthesisResult.trace_events`` and the CLI's ``--trace`` flag.
    #: See ``docs/TRACING.md``.
    trace: bool = False
    #: Include ``perf_counter_ns`` span timings in the trace.  Disable
    #: for byte-identical traces across runs and worker counts.
    trace_timings: bool = True
    #: Also emit one event per cost evaluation (cache hit/miss
    #: provenance).  Verbose; off by default.
    trace_evals: bool = False
    #: Hard bound on buffered trace events (excess is dropped+counted).
    trace_max_events: int = 1_000_000
    #: Run metadata embedded in the trace's ``run_start`` event (the CLI
    #: records benchmark/traces/seed here so ``repro-trace replay`` can
    #: reconstruct the run without the original process).
    trace_meta: dict | None = None
    #: Directory of the persistent (cross-run) synthesis-store tier;
    #: ``None`` keeps the store purely in-memory.  See
    #: :mod:`repro.synthesis.store` and the CLI's ``--cache-dir``.
    cache_dir: str | None = None
    #: Disable the persistent tier even when ``cache_dir`` is set
    #: (``--no-persistent-cache``): the directory is neither read nor
    #: written, but the in-memory run tier still works.
    persistent_cache: bool = True
    #: Bound on the run-level blob tier of the synthesis store
    #: (entries; each holds one pickled module/resynthesis/schedule
    #: result, shared across operating points within a run).
    run_cache_size: int = 4096
    #: Shard count of the persistent store tier (``None`` auto-detects
    #: the on-disk layout, which is 1 for fresh directories).  Sharding
    #: splits the SQLite tier across several database files by digest
    #: prefix so many concurrent writers — the job server's worker
    #: fleet — do not serialize on one writer lock.  Execution knob
    #: only: results are bit-identical at any count.
    store_shards: int | None = None
    #: Search policy driving the improvement loop's discretionary
    #: decisions (family order, candidate ranking, restarts, early
    #: termination).  ``"default"`` reproduces the paper's fixed scheme
    #: byte-identically; see :mod:`repro.search.policy` for the biased
    #: alternatives (``repro synth --policy``, ``--portfolio``).
    search_policy: str = "default"
    #: Keyword parameters of the selected policy (e.g. a mined priors
    #: table, the portfolio cross-pollination token).  Plain JSON-able
    #: values only.
    policy_params: dict | None = None


class SynthesisEnv:
    """Run-wide state shared by all synthesis stages."""

    def __init__(
        self,
        design: Design,
        library: ModuleLibrary,
        objective: Objective,
        config: SynthesisConfig | None = None,
        store: SynthesisStore | None = None,
    ):
        self.design = design
        self.library = library
        self.objective = objective
        self.config = config or SynthesisConfig()
        self.telemetry = Telemetry()
        #: Structured search trace (None when tracing is off).  Workers
        #: of the parallel sweep each own a fresh recorder; the parent
        #: merges their buffers in point order.
        self.trace: TraceRecorder | None = (
            TraceRecorder(
                timings=self.config.trace_timings,
                max_events=self.config.trace_max_events,
            )
            if self.config.trace
            else None
        )
        #: The tiered synthesis store (point / run / persistent); every
        #: memoized module, resynthesis result and schedule routes
        #: through it.  See :mod:`repro.synthesis.store`.
        self.store = store if store is not None else SynthesisStore.from_config(
            self.config
        )
        self.store.bind(self.telemetry)
        #: Invalidation signature shared by every content key this env
        #: writes: schema version + library + search-shaping config.
        self.store_signature = context_signature(library, self.config)
        #: The search policy steering the improvement driver.  Resolved
        #: from the registry *after* the store exists: a priors policy
        #: loads its mined table from the store at bind time.  Store
        #: content keys stay policy-independent (nested resynthesis
        #: always runs the default scheme), so differently-biased envs
        #: can share one store.
        self.policy = make_policy(
            self.config.search_policy, self.config.policy_params
        ).bind(self)
        #: Modules synthesized on demand, keyed by (behavior, clk, vdd).
        #: This *is* the store's point tier for the "module" namespace —
        #: the attribute is kept for its legacy name.
        self.module_cache: LRUCache[tuple[str, float, float], RTLModule] = (
            self.store.point_tier("module")
        )
        #: Move-B resynthesis memo (the store's "resynth" point tier),
        #: keyed by canonical module content — not by generated module
        #: names, which are only unique within one operating point.
        #: Point tiers are dropped between points; see
        #: :meth:`reset_point_caches`.
        self._resynth_cache: LRUCache = self.store.point_tier("resynth")
        #: Re-entrancy guard: move B never descends more than one level.
        self._resynth_active = False
        #: Fresh-name counter for generated module types.
        self._module_counter = 0
        #: Per-point registry of generated module names (name → module
        #: object): detects collisions between store-loaded and locally
        #: minted modules so a name always denotes one module per point.
        self._loaded_names: dict[str, RTLModule] = {}
        #: One shared EvaluationContext per SimTrace object, so the cost
        #: cache persists across the many context() calls of one point.
        #: The context holds the sim strongly, keeping id() keys valid.
        self._contexts: dict[int, EvaluationContext] = {}

    def fresh_module_name(self, behavior: str) -> str:
        """Mint a unique name for a newly synthesized complex module."""
        self._module_counter += 1
        return f"{behavior}_v{self._module_counter}"

    def register_module(self, module: RTLModule) -> RTLModule:
        """Record a freshly characterized module's generated name.

        Keeps the per-point name registry complete, so a later
        store-loaded module carrying the same stored name is detected
        and renamed instead of aliasing two distinct modules (module
        names feed solution fingerprints and candidate descriptions).
        """
        self._loaded_names.setdefault(module.name, module)
        return module

    def adopt_loaded_module(self, module: RTLModule | None) -> RTLModule | None:
        """Integrate a module unpickled from the run/persistent tier.

        Two obligations keep warm runs bit-identical to cold ones:

        1. The name counter is bumped past every ``_v{k}`` suffix in the
           loaded module tree.  In an identical rerun, loaded names are
           exactly the names the cold run minted, and the counter then
           tracks the cold run's sequence, so any later genuine miss
           mints the same next name cold and warm — and never collides
           with a loaded name.
        2. Every module in the tree is checked against the per-point
           name registry.  A loaded module whose name is already bound
           to an *equal-content* module (e.g. a standalone load of a
           module that also arrived nested inside an earlier load — one
           object cold, two unpickled copies warm) keeps its name: all
           pricing reads values, never object identity.  A name bound
           to *different* content (possible only when mixing cache
           entries from non-identical runs) is renamed via
           :meth:`fresh_module_name` so a name always denotes one
           module per point.
        """
        if module is None:
            return None
        highest = 0
        seen: set[int] = set()
        stack = [module]
        tree: list[RTLModule] = []
        while stack:
            mod = stack.pop()
            if id(mod) in seen:
                continue
            seen.add(id(mod))
            tree.append(mod)
            match = re.search(r"_v(\d+)$", mod.name)
            if match:
                highest = max(highest, int(match.group(1)))
            solution = getattr(getattr(mod, "internal", None), "solution", None)
            if solution is not None:
                for inst in solution.instances.values():
                    if inst.module is not None:
                        stack.append(inst.module)
        if highest > self._module_counter:
            self._module_counter = highest
        for mod in tree:
            existing = self._loaded_names.get(mod.name)
            if existing is None:
                self._loaded_names[mod.name] = mod
            elif existing is not mod and (
                module_content_signature(existing, self.design)
                != module_content_signature(mod, self.design)
            ):
                fresh = self.fresh_module_name(mod.behavior)
                mod.name = fresh
                mod.netlist.name = fresh
                self._loaded_names[fresh] = mod
        return module

    def reset_point_caches(self) -> None:
        """Drop per-operating-point state between (Vdd, clock) points.

        Generated module names restart from ``_v1`` at every point, so a
        point-tier entry surviving from another point could be hit while
        describing a module characterized at a different (clk, vdd).
        Resetting the counter too makes the names (and thus results) of
        the serial sweep bit-identical to the parallel sweep, which runs
        every point in a fresh worker.  The store's run and persistent
        tiers survive — they are content-addressed, not name-addressed —
        as does telemetry, which is cumulative by design.
        """
        self.store.reset_point()
        self._resynth_active = False
        self._module_counter = 0
        self._loaded_names.clear()
        self._contexts.clear()
        # Activity memos are keyed by stream-array identity; dropping
        # them costs only a (batched) recompute at the next point while
        # guaranteeing a long-lived process never pins streams of
        # finished points.  Matches the parallel sweep, whose workers
        # start each point with empty process-local caches.
        reset_activity_caches()
        _reset_energy_memos()

    def context(self, sim: SimTrace) -> EvaluationContext:
        """Evaluation context (with shared cost cache) for *sim* at path ``()``."""
        ctx = self._contexts.get(id(sim))
        if ctx is None:
            ctx = EvaluationContext(
                sim,
                (),
                self.objective,
                telemetry=self.telemetry,
                cache_size=self.config.cost_cache_size,
                # Nested resynthesis is untraced (see improve_solution),
                # including its eval spans: a warm store hit skips the
                # nested run wholesale, so recording it would break
                # cold-vs-warm trace identity.
                recorder=(
                    self.trace
                    if self.config.trace_evals and not self._resynth_active
                    else None
                ),
                validate_incremental=self.config.validate_incremental,
                reuse_schedules=self.config.incremental,
                store=self.store,
                design=self.design,
                store_prefix=self.store_signature,
                # Metrics sharing elides counted top-level evaluations,
                # so it stays off whenever this context's evaluations
                # land in a recorded trace; nested resynthesis is
                # untraced wholesale (scratch telemetry, no recorder)
                # and therefore always shares.
                share_metrics=(
                    not self.config.trace or self._resynth_active
                ),
                batch_pricing=self.config.batch_activity,
            )
            # Bounded: evict the oldest context (and its strong sim ref;
            # live id() keys stay valid because live contexts pin their
            # sim objects).
            while len(self._contexts) >= 64:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[id(sim)] = ctx
        return ctx

    def sub_sim(self, dfg: DFG, input_streams: list[np.ndarray]) -> SimTrace:
        """Simulate a sub-behavior fed by its parent's streams."""
        return simulate_subgraph(self.design, dfg, input_streams)


def ensure_behavior(module: RTLModule, behavior: str, library: ModuleLibrary) -> bool:
    """Make *module* usable for *behavior*, via equivalence if needed.

    Returns True if the module supports the behavior directly or
    through a declared equivalence (in which case the implementation is
    aliased under the requested name); False otherwise.
    """
    if module.supports(behavior):
        return True
    for candidate in library.equivalences.equivalence_class(behavior):
        if module.supports(candidate):
            impl = module.impl(candidate)
            module.add_behavior(behavior, impl.profile, impl.cap_internal)
            return True
    return False
