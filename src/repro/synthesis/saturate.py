"""Move-A equivalence saturation: batch rewrites to a bounded fixpoint.

Move A swaps a module instance for a *functionally equivalent but
anisomorphic* implementation of the same behavior.  The paper assumes
the designer supplies those alternatives; this module grows the supply
automatically.  Each flat behavior of a :class:`~repro.dfg.hierarchy.
Design` is lowered into a hash-consed expression table inside an
in-memory SQLite database, a small set of *bit-true* rewrite rules is
applied as set-at-a-time ``INSERT OR IGNORE ... SELECT`` batch steps
(the relational idiom :mod:`repro.synthesis.relational` uses for
candidate discovery), and the resulting equivalence classes are read
back out as new DFG variants.  Registering a variant via
:meth:`Design.add_dfg` is all it takes to feed move A: the complex
library builder characterizes every variant of a behavior, and the
improvement loop then prices them against each other.

Rewrite rules (all exact under the two's-complement width wrapping
:func:`repro.dfg.ops.apply_operation` performs):

* **commutativity** — ``op(a, b) = op(b, a)`` for every operation
  :data:`~repro.dfg.ops.OP_INFO` marks commutative (ADD, MULT, MIN,
  MAX);
* **sub lowering** — ``a - b = a + neg(b)``; exact because negation
  and addition wrap modulo ``2**width``;
* **add associativity** — ``a + (b + c) = (a + b) + c`` when all three
  additions share one width: intermediate wrapping to the common width
  preserves the sum modulo ``2**width``.

Saturation is *bounded*, not complete: the round count and the row cap
keep the table finite (associativity alone would otherwise enumerate
every parenthesization).  Within the bound the loop runs the classic
equality-saturation cycle — canonicalize operands through the current
union-find, fire every rule as one batched statement, merge the classes
the matches prove equal — and stops early at a fixpoint.

Every extracted variant is verified before registration by simulating
both DFGs on shared white-noise stimulus and comparing output streams
sample-for-sample; a variant that fails (which a correct rule set never
produces) is silently discarded rather than poisoning the design.  The
whole pass is deterministic: no RNG, extraction enumerates choice
indices in order, and SQLite reads are explicitly ordered.
"""

from __future__ import annotations

import sqlite3

import numpy as np

from ..dfg.canonical import canonical_fingerprint
from ..dfg.graph import DFG, NodeKind, Signal
from ..dfg.hierarchy import Design
from ..dfg.ops import OP_INFO, Operation
from ..errors import DFGError

__all__ = ["saturate_design", "saturate_dfg"]

#: Leaf sentinel for the operand columns: SQLite treats NULLs as
#: distinct inside UNIQUE constraints, which would defeat hash-consing,
#: so leaves and unary second operands store -1 instead (row ids are
#: always positive).
_NONE = -1

_COMMUTATIVE = tuple(
    op.name for op in Operation if OP_INFO[op].commutative
)


class _CycleError(Exception):
    """Extraction walked into a class currently being expanded."""


def _connect() -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    conn.execute(
        "CREATE TABLE expr ("
        " id INTEGER PRIMARY KEY,"
        " op TEXT NOT NULL,"
        " a INTEGER NOT NULL,"
        " b INTEGER NOT NULL,"
        " width INTEGER NOT NULL,"
        " UNIQUE (op, a, b, width))"
    )
    # Union-find snapshot, refreshed each round; joined by every rule to
    # canonicalize operands before matching.
    conn.execute("CREATE TABLE cls (id INTEGER PRIMARY KEY, rep INTEGER NOT NULL)")
    return conn


class _UnionFind:
    """Deterministic union-find: the smallest member id represents."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def add(self, x: int) -> None:
        self._parent.setdefault(x, x)

    def find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if ry < rx:
            rx, ry = ry, rx
        self._parent[ry] = rx
        return True

    def ids(self) -> list[int]:
        return list(self._parent)


def _intern(conn: sqlite3.Connection, op: str, a: int, b: int, width: int) -> int:
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width) VALUES (?, ?, ?, ?)",
        (op, a, b, width),
    )
    (eid,) = conn.execute(
        "SELECT id FROM expr WHERE op = ? AND a = ? AND b = ? AND width = ?",
        (op, a, b, width),
    ).fetchone()
    return eid


def _encode(conn: sqlite3.Connection, dfg: DFG) -> dict[str, int] | None:
    """Lower *dfg* into the expr table; node id -> expr id.

    Returns ``None`` when the graph is outside the saturator's fragment
    (hierarchical nodes, or an operation of arity above two).
    """
    if dfg.hier_nodes():
        return None
    ids: dict[str, int] = {}
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        if node.kind == NodeKind.INPUT:
            ids[nid] = _intern(conn, f"in:{nid}", _NONE, _NONE, node.width)
        elif node.kind == NodeKind.CONST:
            ids[nid] = _intern(conn, f"const:{node.value}", _NONE, _NONE, node.width)
        elif node.kind == NodeKind.OP:
            assert node.op is not None
            operands = [ids[edge.src] for edge in dfg.in_edges(nid)]
            if len(operands) > 2:
                return None
            a = operands[0] if operands else _NONE
            b = operands[1] if len(operands) > 1 else _NONE
            ids[nid] = _intern(conn, node.op.name, a, b, node.width)
        # OUTPUT nodes carry no expression of their own.
    return ids


def _refresh_cls(conn: sqlite3.Connection, uf: _UnionFind) -> None:
    conn.execute("DELETE FROM cls")
    conn.executemany(
        "INSERT INTO cls (id, rep) VALUES (?, ?)",
        [(i, uf.find(i)) for i in sorted(uf.ids())],
    )


# Canonicalized operand columns, shared by every rule below.  LEFT JOIN
# lets the -1 leaf sentinel (absent from cls) pass through unchanged.
_CANON = (
    " FROM expr e"
    " LEFT JOIN cls ca ON ca.id = e.a"
    " LEFT JOIN cls cb ON cb.id = e.b"
)
_A = "COALESCE(ca.rep, e.a)"
_B = "COALESCE(cb.rep, e.b)"


def _saturate_round(conn: sqlite3.Connection, uf: _UnionFind) -> int:
    """One batch round: congruence, then every rewrite rule.  Returns the
    number of changes (new rows + class merges) so the caller can detect
    a fixpoint.
    """
    _refresh_cls(conn, uf)
    before = conn.total_changes
    merges = 0

    def union_pairs(rows: list[tuple[int, int]]) -> None:
        nonlocal merges
        for x, y in rows:
            uf.add(x)
            uf.add(y)
            if uf.union(x, y):
                merges += 1

    # Congruence by substitution: re-intern every row with canonical
    # operands; a row that collapses onto another proves its class equal
    # to that row's class.
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT e.op, {_A}, {_B}, e.width{_CANON}"
        f" WHERE {_A} <> e.a OR {_B} <> e.b"
    )
    union_pairs(
        conn.execute(
            "SELECT e.id, s.id"
            f"{_CANON}"
            f" JOIN expr s ON s.op = e.op AND s.a = {_A} AND s.b = {_B}"
            "  AND s.width = e.width"
            " WHERE s.id <> e.id ORDER BY e.id"
        ).fetchall()
    )

    # Commutativity: op(a, b) = op(b, a).
    placeholders = ",".join("?" * len(_COMMUTATIVE))
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT e.op, {_B}, {_A}, e.width{_CANON}"
        f" WHERE e.op IN ({placeholders}) AND e.b <> {_NONE}",
        _COMMUTATIVE,
    )
    union_pairs(
        conn.execute(
            "SELECT e.id, s.id"
            f"{_CANON}"
            f" JOIN expr s ON s.op = e.op AND s.a = {_B} AND s.b = {_A}"
            "  AND s.width = e.width"
            f" WHERE e.op IN ({placeholders}) AND e.b <> {_NONE}"
            "  AND s.id <> e.id ORDER BY e.id",
            _COMMUTATIVE,
        ).fetchall()
    )

    # Sub lowering: a - b = a + neg(b), in two batch steps (the NEG rows
    # must exist before the ADD rows can reference them).
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT 'NEG', {_B}, {_NONE}, e.width{_CANON} WHERE e.op = 'SUB'"
    )
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT 'ADD', {_A}, n.id, e.width"
        f"{_CANON}"
        f" JOIN expr n ON n.op = 'NEG' AND n.a = {_B} AND n.b = {_NONE}"
        "  AND n.width = e.width"
        " WHERE e.op = 'SUB'"
    )
    union_pairs(
        conn.execute(
            "SELECT e.id, s.id"
            f"{_CANON}"
            f" JOIN expr n ON n.op = 'NEG' AND n.a = {_B} AND n.b = {_NONE}"
            "  AND n.width = e.width"
            f" JOIN expr s ON s.op = 'ADD' AND s.a = {_A} AND s.b = n.id"
            "  AND s.width = e.width"
            " WHERE e.op = 'SUB' ORDER BY e.id"
        ).fetchall()
    )

    # Add associativity (left rotation): x + (u + v) = (x + u) + v when
    # both additions share e.width; commutativity supplies the mirrored
    # forms on later rounds.
    inner = (
        f" JOIN expr i ON i.id = {_B} AND i.op = 'ADD' AND i.width = e.width"
        " LEFT JOIN cls cia ON cia.id = i.a"
        " LEFT JOIN cls cib ON cib.id = i.b"
    )
    ia, ib = "COALESCE(cia.rep, i.a)", "COALESCE(cib.rep, i.b)"
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT 'ADD', {_A}, {ia}, e.width{_CANON}{inner} WHERE e.op = 'ADD'"
    )
    conn.execute(
        "INSERT OR IGNORE INTO expr (op, a, b, width)"
        f" SELECT 'ADD', t.id, {ib}, e.width"
        f"{_CANON}{inner}"
        f" JOIN expr t ON t.op = 'ADD' AND t.a = {_A} AND t.b = {ia}"
        "  AND t.width = e.width"
        " WHERE e.op = 'ADD'"
    )
    union_pairs(
        conn.execute(
            "SELECT e.id, s.id"
            f"{_CANON}{inner}"
            f" JOIN expr t ON t.op = 'ADD' AND t.a = {_A} AND t.b = {ia}"
            "  AND t.width = e.width"
            f" JOIN expr s ON s.op = 'ADD' AND s.a = t.id AND s.b = {ib}"
            "  AND s.width = e.width"
            " WHERE e.op = 'ADD' ORDER BY e.id"
        ).fetchall()
    )

    for (eid,) in conn.execute("SELECT id FROM expr ORDER BY id"):
        uf.add(eid)
    return (conn.total_changes - before) + merges


def _class_members(
    conn: sqlite3.Connection, uf: _UnionFind
) -> dict[int, list[tuple[int, str, int, int, int]]]:
    """rep -> members as ``(id, op, a_rep, b_rep, width)``, id-ordered."""
    _refresh_cls(conn, uf)
    members: dict[int, list[tuple[int, str, int, int, int]]] = {}
    rows = conn.execute(
        f"SELECT e.id, e.op, {_A}, {_B}, e.width{_CANON} ORDER BY e.id"
    ).fetchall()
    for eid, op, a, b, width in rows:
        members.setdefault(uf.find(eid), []).append((eid, op, a, b, width))
    return members


def _extract(
    base: DFG,
    name: str,
    members: dict[int, list[tuple[int, str, int, int, int]]],
    uf: _UnionFind,
    node_ids: dict[str, int],
    choice: int,
) -> DFG:
    """Build the variant DFG for one deterministic *choice* index.

    Every class with ``n`` members contributes member ``choice % n``;
    choice 0 reproduces (up to sharing) the base graph because the
    original rows carry the smallest ids.  Raises :class:`_CycleError`
    if the chosen member set is self-referential (possible only for
    rule sets that prove ``x`` equal to a strict superterm of ``x``,
    which the current rules never do — the guard is defensive).
    """
    dfg = DFG(name, behavior=base.behavior)
    for nid in base.inputs:
        dfg.add_input(nid, width=base.node(nid).width)
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"s{prefix}{counter}"

    memo: dict[int, Signal] = {}
    expanding: set[int] = set()

    def emit(rep: int) -> Signal:
        rep = uf.find(rep)
        if rep in memo:
            return memo[rep]
        if rep in expanding:
            raise _CycleError(str(rep))
        expanding.add(rep)
        rows = members[rep]
        _, op, a, b, width = rows[choice % len(rows)]
        if op.startswith("in:"):
            sig: Signal = (op[3:], 0)
        elif op.startswith("const:"):
            cid = fresh("c")
            dfg.add_const(cid, int(op[6:]), width=width)
            sig = (cid, 0)
        else:
            nid = fresh("n")
            dfg.add_op(nid, Operation[op], width=width)
            for port, operand in enumerate(x for x in (a, b) if x != _NONE):
                src, src_port = emit(operand)
                dfg.connect(src, src_port, nid, port)
            sig = (nid, 0)
        expanding.discard(rep)
        memo[rep] = sig
        return sig

    for out in base.outputs:
        node = base.node(out)
        (edge,) = base.in_edges(out)
        src, src_port = emit(node_ids[edge.src])
        dfg.add_output(out, width=node.width)
        dfg.connect(src, src_port, out, 0)
    dfg.inputs = list(base.inputs)
    dfg.outputs = list(base.outputs)
    return dfg


def _bit_true(base: DFG, variant: DFG, trace_len: int) -> bool:
    """Differential oracle: equal output streams on shared white noise."""
    from ..power.simulate import simulate_dfg
    from ..power.traces import white_traces

    traces = white_traces(base, n=trace_len, seed=0)
    sim_base = simulate_dfg(base, traces)
    sim_var = simulate_dfg(variant, traces)
    for out in base.outputs:
        (eb,) = base.in_edges(out)
        (ev,) = variant.in_edges(out)
        if not np.array_equal(
            sim_base.stream((), eb.signal), sim_var.stream((), ev.signal)
        ):
            return False
    return True


def saturate_dfg(
    base: DFG,
    *,
    max_variants: int = 2,
    rounds: int = 2,
    max_rows: int = 4096,
    trace_len: int = 64,
    known: set[str] | None = None,
    name_offset: int = 0,
) -> list[DFG]:
    """Saturate one flat DFG; return new verified anisomorphic variants.

    *known* carries the canonical fingerprints of already-registered
    implementations (the base's own fingerprint is always excluded);
    extraction skips anything whose fingerprint is present, so repeated
    saturation never re-derives a registered variant.  *name_offset*
    shifts the ``__sat<k>`` suffix past names earlier passes took.
    """
    seen = set(known or ())
    seen.add(canonical_fingerprint(base))
    conn = _connect()
    try:
        node_ids = _encode(conn, base)
        if node_ids is None:
            return []
        uf = _UnionFind()
        for (eid,) in conn.execute("SELECT id FROM expr ORDER BY id"):
            uf.add(eid)
        for _ in range(rounds):
            changed = _saturate_round(conn, uf)
            (n_rows,) = conn.execute("SELECT COUNT(*) FROM expr").fetchone()
            if not changed or n_rows > max_rows:
                break
        members = _class_members(conn, uf)
    finally:
        conn.close()

    variants: list[DFG] = []
    n_choices = max((len(rows) for rows in members.values()), default=1)
    for choice in range(1, 4 * n_choices):
        if len(variants) >= max_variants:
            break
        name = f"{base.name}__sat{name_offset + len(variants) + 1}"
        try:
            candidate = _extract(base, name, members, uf, node_ids, choice)
        except _CycleError:
            continue
        fp = canonical_fingerprint(candidate)
        if fp in seen:
            continue
        # The rules are exact, so the oracle is a defensive gate: a
        # variant it rejects is dropped, never registered.
        if not _bit_true(base, candidate, trace_len):
            continue
        seen.add(fp)
        variants.append(candidate)
    return variants


def saturate_design(
    design: Design,
    *,
    max_variants: int = 2,
    rounds: int = 2,
    max_rows: int = 4096,
    trace_len: int = 64,
) -> int:
    """Grow every non-top behavior's variant pool; return the new count.

    The default (first-registered) variant of each flat behavior seeds
    saturation; discovered variants register under
    ``<variant>__sat<k>`` names with the *same behavior*, which is all
    move A needs — the complex-library builder characterizes every
    variant of a behavior, and the improvement loop prices them against
    each other.  The top behavior is skipped: move A only ever swaps
    module instances, never the design under synthesis.
    """
    try:
        top_behavior: str | None = design.top.behavior
    except DFGError:
        top_behavior = None
    added = 0
    for behavior in design.behaviors():
        if behavior == top_behavior:
            continue
        existing = design.variants(behavior)
        base = existing[0]
        known = {canonical_fingerprint(v) for v in existing}
        prefix = f"{base.name}__sat"
        taken = sum(1 for v in existing if v.name.startswith(prefix))
        for variant in saturate_dfg(
            base,
            max_variants=max_variants,
            rounds=rounds,
            max_rows=max_rows,
            trace_len=trace_len,
            known=known,
            name_offset=taken,
        ):
            design.add_dfg(variant)
            added += 1
    return added
