"""RTL solution representation for one DFG level.

A :class:`Solution` captures everything the iterative-improvement engine
mutates:

* **instances** — functional-unit instances (a library cell each) and
  complex-module instances (an :class:`~repro.rtl.module.RTLModule`
  each);
* **executions** — which DFG nodes run on which instance, and in what
  grouping: each execution is a tuple of nodes, usually a singleton, but
  a dependency chain for chained cells (``chained_add2`` runs a chain of
  two additions in one activation);
* **register binding** — which signals share which register.

Scheduling is derived (and cached): executions become
:class:`~repro.scheduling.model.TaskSpec` tasks and go through the list
scheduler.  All mutation goes through the ``rebind_*``/``merge_*``/
``split_*`` methods so caches are invalidated consistently; moves clone
the solution first, mutate the clone and compare costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dfg.graph import DFG, NodeKind, Signal
from ..errors import SynthesisError
from ..library.cells import LibraryCell
from ..library.library import ModuleLibrary
from ..rtl.module import RTLModule
from ..scheduling.model import ScheduleResult, TaskSpec
from ..scheduling.scheduler import schedule_tasks
from .caching import HashedKey

__all__ = ["Instance", "Solution"]


@dataclass
class Instance:
    """One datapath resource instance: a simple cell or a complex module."""

    inst_id: str
    cell: LibraryCell | None = None
    module: RTLModule | None = None

    def __post_init__(self) -> None:
        if (self.cell is None) == (self.module is None):
            raise SynthesisError(
                f"instance {self.inst_id!r} must have exactly one of cell/module"
            )

    @property
    def is_module(self) -> bool:
        """True when this instance is a complex module, not a leaf cell."""
        return self.module is not None

    @property
    def type_name(self) -> str:
        """Library name of the bound cell or module."""
        return self.module.name if self.module is not None else self.cell.name


class Solution:
    """A bound (and schedulable) RTL architecture for one DFG."""

    def __init__(
        self,
        dfg: DFG,
        library: ModuleLibrary,
        clk_ns: float,
        vdd: float,
        sampling_ns: float,
    ):
        self.dfg = dfg
        self.library = library
        self.clk_ns = clk_ns
        self.vdd = vdd
        self.sampling_ns = sampling_ns
        self.instances: dict[str, Instance] = {}
        #: instance id → list of executions (each a tuple of node ids).
        self.executions: dict[str, list[tuple[str, ...]]] = {}
        #: register id → signals stored there.
        self.reg_signals: dict[str, list[Signal]] = {}
        self._counter = 0
        self._schedule: ScheduleResult | None = None
        self._tasks: list[TaskSpec] | None = None
        self._task_index: dict[str, TaskSpec] = {}
        self._task_signature: tuple | None = None
        self._sched_key: HashedKey | None = None
        self._reg_of: dict[Signal, str] | None = None
        self._fingerprint: tuple | None = None
        self._fingerprint_key: HashedKey | None = None
        #: Mutation epoch: bumped by :meth:`invalidate` on every
        #: structural edit, so derived caches can tell at a glance
        #: whether a solution changed since they last saw it.
        self._epoch = 0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def fresh_id(self, prefix: str) -> str:
        """Mint an identifier unused by any instance or register."""
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if candidate not in self.instances and candidate not in self.reg_signals:
                return candidate

    def peek_fresh_id(self, prefix: str) -> str:
        """The id :meth:`fresh_id` *would* mint, without mutating state.

        A clone of this solution starts from the same ``_counter``, so
        the first ``fresh_id(prefix)`` called on the clone returns
        exactly this value — which lets the relational engine
        precompute the fingerprint of a split candidate (the twin's id
        appears in it) before deciding whether to build the clone.
        """
        counter = self._counter
        while True:
            counter += 1
            candidate = f"{prefix}{counter}"
            if candidate not in self.instances and candidate not in self.reg_signals:
                return candidate

    @property
    def deadline_cycles(self) -> int:
        """Cycle budget implied by the sampling period at this clock."""
        return int(math.floor(self.sampling_ns / self.clk_ns + 1e-9))

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_instance(
        self,
        cell: LibraryCell | None = None,
        module: RTLModule | None = None,
        inst_id: str | None = None,
    ) -> Instance:
        """Bind a new datapath instance of ``cell`` or ``module``."""
        inst_id = inst_id or self.fresh_id("u")
        if inst_id in self.instances:
            raise SynthesisError(f"duplicate instance id {inst_id!r}")
        inst = Instance(inst_id, cell=cell, module=module)
        self.instances[inst_id] = inst
        self.executions[inst_id] = []
        return inst

    def bind_execution(self, inst_id: str, nodes: tuple[str, ...]) -> None:
        """Append one execution (node group) to an instance."""
        if inst_id not in self.instances:
            raise SynthesisError(f"unknown instance {inst_id!r}")
        self.executions[inst_id].append(tuple(nodes))
        self.invalidate()

    def remove_instance(self, inst_id: str) -> None:
        """Delete an instance; it must have no remaining executions."""
        if self.executions.get(inst_id):
            raise SynthesisError(
                f"cannot remove instance {inst_id!r}: it still has executions"
            )
        del self.instances[inst_id]
        del self.executions[inst_id]
        self.invalidate()

    def add_register(self, signals: list[Signal], reg_id: str | None = None) -> str:
        """Allocate a register holding the given signals; returns its id."""
        reg_id = reg_id or self.fresh_id("r")
        if reg_id in self.reg_signals:
            raise SynthesisError(f"duplicate register id {reg_id!r}")
        self.reg_signals[reg_id] = list(signals)
        self._invalidate_binding()
        return reg_id

    def set_cell(self, inst_id: str, cell: LibraryCell) -> None:
        """Replace the library cell of a simple instance (move A)."""
        inst = self.instance(inst_id)
        if inst.is_module:
            raise SynthesisError(f"instance {inst_id!r} is a module instance")
        self.instances[inst_id] = Instance(inst_id, cell=cell)
        self.invalidate()

    def set_module(self, inst_id: str, module: RTLModule) -> None:
        """Replace the RTL module of a complex instance (moves A and B)."""
        inst = self.instance(inst_id)
        if not inst.is_module:
            raise SynthesisError(f"instance {inst_id!r} is a simple instance")
        self.instances[inst_id] = Instance(inst_id, module=module)
        self.invalidate()

    def merge_instances(self, keep: str, absorb: str) -> None:
        """Move every execution of *absorb* onto *keep* and delete it."""
        if keep == absorb:
            raise SynthesisError("cannot merge an instance with itself")
        self.executions[keep].extend(self.executions[absorb])
        self.executions[absorb] = []
        self.remove_instance(absorb)

    def split_instance(self, inst_id: str, moved: list[tuple[str, ...]]) -> str:
        """Move the listed executions onto a fresh twin instance (move D)."""
        inst = self.instance(inst_id)
        remaining = [e for e in self.executions[inst_id] if e not in moved]
        if len(remaining) + len(moved) != len(self.executions[inst_id]):
            raise SynthesisError("split: executions not currently on the instance")
        if not moved or not remaining:
            raise SynthesisError("split must leave work on both instances")
        twin = self.add_instance(cell=inst.cell, module=inst.module)
        self.executions[inst_id] = remaining
        self.executions[twin.inst_id] = list(moved)
        self.invalidate()
        return twin.inst_id

    def merge_registers(self, keep: str, absorb: str) -> None:
        """Bind *absorb*'s signals into *keep* and delete *absorb*."""
        if keep == absorb:
            raise SynthesisError("cannot merge a register with itself")
        self.reg_signals[keep].extend(self.reg_signals[absorb])
        del self.reg_signals[absorb]
        self._invalidate_binding()

    def split_register(self, reg_id: str, moved: list[Signal]) -> str:
        """Move the listed signals to a fresh register (move D)."""
        current = self.reg_signals[reg_id]
        remaining = [s for s in current if s not in moved]
        if not moved or not remaining:
            raise SynthesisError("register split must leave signals on both sides")
        twin = self.add_register(list(moved))
        self.reg_signals[reg_id] = remaining
        self._invalidate_binding()
        return twin

    def _invalidate_binding(self) -> None:
        """Drop caches a register-binding edit invalidates; keep timing.

        Tasks and the schedule are functions of the DFG, the instances,
        the executions and the operating point only — the register
        binding never enters them — so register moves keep those caches
        and drop just the fingerprint and the signal→register map.
        """
        self._reg_of = None
        self._fingerprint = None
        self._fingerprint_key = None
        self._epoch += 1

    def invalidate(self) -> None:
        """Drop cached schedule/tasks/fingerprint after any mutation."""
        self._schedule = None
        self._tasks = None
        self._task_signature = None
        self._sched_key = None
        self._reg_of = None
        self._fingerprint = None
        self._fingerprint_key = None
        self._epoch += 1

    @property
    def epoch(self) -> int:
        """Mutation counter (see :meth:`invalidate`)."""
        return self._epoch

    def fingerprint(self) -> tuple:
        """Structural identity of this solution (cost-cache key).

        Captures everything :meth:`EvaluationContext.evaluate
        <repro.synthesis.costs.EvaluationContext.evaluate>` depends on:
        the DFG, the operating point, every instance with its bound
        executions (in insertion order — task creation and hence the
        scheduler see that order), and the register binding.  Module
        instances are identified by module name; generated names are
        unique per synthesis point, so equal fingerprints imply equal
        evaluation results.  Cached until :meth:`invalidate`.
        """
        if self._fingerprint is None:
            execs = self.executions
            # List comprehensions (not genexprs) inside tuple(): this
            # runs once per candidate per pricing round and the
            # genexpr frame overhead is measurable at that rate.
            self._fingerprint = (
                self.dfg.name,
                id(self.dfg),
                self.clk_ns,
                self.vdd,
                self.sampling_ns,
                tuple(
                    [
                        (
                            inst_id,
                            inst.type_name,
                            inst.is_module,
                            tuple(execs[inst_id]),
                        )
                        for inst_id, inst in self.instances.items()
                    ]
                ),
                tuple(
                    [
                        (reg_id, tuple(signals))
                        for reg_id, signals in self.reg_signals.items()
                    ]
                ),
            )
        return self._fingerprint

    def fingerprint_key(self) -> HashedKey:
        """The fingerprint wrapped with its hash precomputed.

        Cache layers key thousands of lookups by the same fingerprint
        within one mutation epoch; wrapping it in a
        :class:`~repro.synthesis.caching.HashedKey` means the nested
        tuple is hashed once per epoch instead of once per lookup.
        """
        if self._fingerprint_key is None:
            self._fingerprint_key = HashedKey(self.fingerprint())
        return self._fingerprint_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def instance(self, inst_id: str) -> Instance:
        """Look up an instance by id (SynthesisError if unknown)."""
        try:
            return self.instances[inst_id]
        except KeyError:
            raise SynthesisError(f"unknown instance {inst_id!r}") from None

    def instance_of(self, node_id: str) -> str:
        """The instance a node executes on."""
        for inst_id, execs in self.executions.items():
            for group in execs:
                if node_id in group:
                    return inst_id
        raise SynthesisError(f"node {node_id!r} is not bound to any instance")

    def register_of(self, signal: Signal) -> str:
        """Return the register a signal is bound to (error if none).

        Backed by a lazily built reverse map (dropped by
        :meth:`invalidate`): netlist construction and conflict checking
        look up thousands of signals per evaluation, and a linear scan
        over the register binding for each was the hottest single
        function in candidate pricing.
        """
        reg_id = self.registered_map().get(signal)
        if reg_id is None:
            raise SynthesisError(
                f"signal {signal!r} is not bound to any register"
            )
        return reg_id

    def registered_map(self) -> dict[Signal, str]:
        """The signal → register reverse map (built lazily, see above).

        For a structurally valid solution its key set equals
        :meth:`registered_signals` (``check_invariants`` enforces that
        bindings cover exactly the registered signals), so hot paths use
        it for membership tests without re-deriving the signal list.
        """
        if self._reg_of is None:
            reg_of: dict[Signal, str] = {}
            for reg_id, signals in self.reg_signals.items():
                for s in signals:
                    if s not in reg_of:
                        reg_of[s] = reg_id
            self._reg_of = reg_of
        return self._reg_of

    def chain_internal_signals(self) -> set[Signal]:
        """Signals that live entirely inside a chained execution.

        Those values travel combinationally between chained adders and
        are never registered.
        """
        internal: set[Signal] = set()
        for execs in self.executions.values():
            for group in execs:
                for node in group[:-1]:
                    internal.add((node, 0))
        return internal

    def registered_signals(self) -> list[Signal]:
        """Signals that must be held in registers.

        Everything produced by a primary input or an operation, except
        constants and chain-internal values.
        """
        internal = self.chain_internal_signals()
        signals: list[Signal] = []
        for node in self.dfg.nodes():
            if node.kind == NodeKind.CONST or node.kind == NodeKind.OUTPUT:
                continue
            for port in range(node.n_outputs):
                signal = (node.node_id, port)
                if signal not in internal:
                    signals.append(signal)
        return signals

    # ------------------------------------------------------------------
    # Tasks and schedule
    # ------------------------------------------------------------------
    def tasks(self) -> list[TaskSpec]:
        """Derive scheduler tasks from the current binding (cached)."""
        if self._tasks is not None:
            return self._tasks
        tasks: list[TaskSpec] = []
        for inst_id, execs in self.executions.items():
            inst = self.instances[inst_id]
            for k, group in enumerate(execs):
                task_id = f"{inst_id}#{k}"
                if inst.is_module:
                    assert inst.module is not None
                    (node_id,) = group
                    node = self.dfg.node(node_id)
                    assert node.behavior is not None
                    cprof = inst.module.profile(node.behavior).at(self.clk_ns, self.vdd)
                    offsets = {
                        (node_id, port): off
                        for port, off in enumerate(cprof.input_offsets)
                    }
                    latencies = {
                        (node_id, port): lat
                        for port, lat in enumerate(cprof.output_latencies)
                    }
                    tasks.append(
                        TaskSpec(
                            task_id,
                            (node_id,),
                            inst_id,
                            duration=cprof.busy_cycles,
                            input_offsets=offsets,
                            output_latency=latencies,
                        )
                    )
                else:
                    assert inst.cell is not None
                    duration = inst.cell.delay_cycles(self.clk_ns, self.vdd)
                    latencies = {(node, 0): duration for node in group}
                    tasks.append(
                        TaskSpec(
                            task_id,
                            tuple(group),
                            inst_id,
                            duration=duration,
                            output_latency=latencies,
                            initiation_interval=inst.cell.initiation_interval(
                                self.clk_ns, self.vdd
                            ),
                        )
                    )
        self._tasks = tasks
        self._task_index = {t.task_id: t for t in tasks}
        return tasks

    def task(self, task_id: str) -> TaskSpec:
        """Look up a task by id (tasks are derived lazily)."""
        self.tasks()
        return self._task_index[task_id]

    def schedule(self) -> ScheduleResult:
        """Schedule the current binding (cached)."""
        if self._schedule is None:
            self._schedule = schedule_tasks(self.dfg, self.tasks())
        return self._schedule

    def task_signature(self) -> tuple:
        """Hashable digest of everything the scheduler reads from tasks.

        Two solutions of the same DFG with equal signatures schedule
        identically: list scheduling is a deterministic function of the
        DFG and the task list, and the signature captures every
        :class:`~repro.scheduling.model.TaskSpec` field in task order.
        Register-binding moves (and cell swaps that keep the timing)
        have the same signature as the solution they were derived from,
        which is what lets the evaluation context share one schedule
        across them (cached; dropped by :meth:`invalidate`).
        """
        if self._task_signature is not None:
            return self._task_signature
        self._task_signature = tuple(
            (
                t.task_id,
                t.nodes,
                t.instance,
                t.duration,
                t.initiation_interval,
                tuple(sorted(t.input_offsets.items())),
                tuple(sorted(t.output_latency.items())),
            )
            for t in self.tasks()
        )
        return self._task_signature

    def schedule_key(self) -> HashedKey:
        """Memoized schedule-sharing key: graph identity + task digest.

        Hashing the (large) task signature tuple once per solution
        instead of once per lookup is measurable across thousands of
        candidates; binding moves carry the key through clones just
        like the signature itself.
        """
        if self._sched_key is None:
            self._sched_key = HashedKey((id(self.dfg), self.task_signature()))
        return self._sched_key

    def adopt_schedule(self, sched: ScheduleResult) -> None:
        """Install a schedule computed for an identical task set.

        Only sound when the caller proved (via :meth:`task_signature`)
        that scheduling this solution would reproduce *sched* exactly —
        see :meth:`EvaluationContext.schedule_of
        <repro.synthesis.costs.EvaluationContext.schedule_of>`.
        """
        self._schedule = sched

    # ------------------------------------------------------------------
    # Register lifetimes / feasibility
    # ------------------------------------------------------------------
    def signal_lifetime(self, signal: Signal) -> tuple[int, int]:
        """Half-open [birth, death) interval of a registered signal.

        Memoized on the schedule object: the lifetime is fully
        determined by (DFG, tasks, schedule), and candidates sharing a
        schedule (register moves, equal-timing swaps) ask for the same
        signals over and over during conflict checking.
        """
        sched = self.schedule()
        cached = sched.lifetime_memo.get(signal)
        if cached is not None:
            return cached
        birth = sched.avail.get(signal, 0)
        death = birth
        src, src_port = signal
        for edge in self.dfg.out_edges(src):
            if edge.src_port != src_port:
                continue
            consumer = self.dfg.node(edge.dst)
            if consumer.kind == NodeKind.OUTPUT:
                death = max(death, sched.length)
                continue
            task_id = sched.task_of_node[edge.dst]
            task = self.task(task_id)
            read_at = sched.start[task_id] + task.offset_of(edge.dst, edge.dst_port)
            death = max(death, read_at)
        # A captured value occupies its register for at least one cycle
        # (written at the clock edge entering `birth`, readable during it).
        lifetime = (birth, max(death, birth + 1))
        sched.lifetime_memo[signal] = lifetime
        return lifetime

    def register_conflicts(self) -> list[str]:
        """Registers whose bound signals have overlapping lifetimes."""
        conflicts: list[str] = []
        for reg_id, signals in self.reg_signals.items():
            if len(signals) < 2:
                continue
            intervals = sorted(self.signal_lifetime(s) for s in signals)
            for (b1, d1), (b2, _d2) in zip(intervals, intervals[1:]):
                # A value may be replaced in the cycle it was last read.
                if b2 < d1:
                    conflicts.append(reg_id)
                    break
        return conflicts

    def schedule_feasible(self) -> bool:
        """True when the schedule fits within the cycle budget."""
        return self.schedule().length <= self.deadline_cycles

    def is_feasible(self) -> bool:
        """Throughput met and no register holds two live values at once."""
        return self.schedule_feasible() and not self.register_conflicts()

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify structural consistency (used by tests and after moves)."""
        bound: set[str] = set()
        for inst_id, execs in self.executions.items():
            inst = self.instance(inst_id)
            for group in execs:
                for node_id in group:
                    if node_id in bound:
                        raise SynthesisError(f"node {node_id!r} bound twice")
                    bound.add(node_id)
                    node = self.dfg.node(node_id)
                    if inst.is_module:
                        if node.kind != NodeKind.HIER:
                            raise SynthesisError(
                                f"simple node {node_id!r} on module instance"
                            )
                        assert inst.module is not None
                        if not inst.module.supports(node.behavior or ""):
                            raise SynthesisError(
                                f"module {inst.module.name!r} cannot run behavior "
                                f"{node.behavior!r}"
                            )
                    else:
                        assert inst.cell is not None
                        if node.kind != NodeKind.OP:
                            raise SynthesisError(
                                f"hier node {node_id!r} on simple instance"
                            )
                        assert node.op is not None
                        if not inst.cell.supports(node.op):
                            raise SynthesisError(
                                f"cell {inst.cell.name!r} cannot run {node.op}"
                            )
                if len(group) > 1:
                    if inst.is_module or inst.cell is None:
                        raise SynthesisError("chained execution on module instance")
                    if len(group) > inst.cell.chain_length:
                        raise SynthesisError(
                            f"chain of {len(group)} on cell with chain length "
                            f"{inst.cell.chain_length}"
                        )
        for node in self.dfg.operation_nodes():
            if node.node_id not in bound:
                raise SynthesisError(f"operation {node.node_id!r} unbound")

        registered = set(self.registered_signals())
        seen: set[Signal] = set()
        for reg_id, signals in self.reg_signals.items():
            if not signals:
                raise SynthesisError(f"register {reg_id!r} holds no signal")
            for signal in signals:
                if signal in seen:
                    raise SynthesisError(f"signal {signal!r} bound to two registers")
                seen.add(signal)
        if seen != registered:
            missing = registered - seen
            extra = seen - registered
            raise SynthesisError(
                f"register binding mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )

    # ------------------------------------------------------------------
    def clone(self, carry_timing: bool = False) -> "Solution":
        """Cheap structural copy (instances/modules are shared, bindings copied).

        ``carry_timing=True`` additionally shares the cached tasks,
        task signature and schedule with the clone.  Only sound when
        the caller will touch nothing but the register binding (whose
        mutators preserve those caches — see
        :meth:`_invalidate_binding`): a default clone starts cold so
        that the established idiom of cloning and then assigning a new
        operating point directly stays correct.
        """
        other = Solution(
            self.dfg, self.library, self.clk_ns, self.vdd, self.sampling_ns
        )
        other.instances = dict(self.instances)
        other.executions = {k: list(v) for k, v in self.executions.items()}
        other.reg_signals = {k: list(v) for k, v in self.reg_signals.items()}
        other._counter = self._counter
        if carry_timing:
            other._tasks = self._tasks
            other._task_index = self._task_index
            other._task_signature = self._task_signature
            other._sched_key = self._sched_key
            other._schedule = self._schedule
        return other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_fu = sum(1 for i in self.instances.values() if not i.is_module)
        n_mod = len(self.instances) - n_fu
        return (
            f"Solution({self.dfg.name!r}, {n_fu} FU instances, {n_mod} module "
            f"instances, {len(self.reg_signals)} registers, clk={self.clk_ns}ns, "
            f"vdd={self.vdd}V)"
        )
