"""Small bounded LRU cache used by the synthesis engine's memo layers.

Python's ``functools.lru_cache`` memoizes *functions*; the engine needs
an explicit mapping it can key by structural fingerprints, clear between
operating points, and share across evaluation contexts — hence this
minimal dict-backed implementation (dicts preserve insertion order, so
moving a key to the end on access gives LRU eviction for free).
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

__all__ = ["HashedKey", "LRUCache"]

K = TypeVar("K")
V = TypeVar("V")


class HashedKey:
    """A cache key wrapping a value with its hash precomputed.

    Solution fingerprints are large nested tuples; hashing one walks the
    whole structure.  The cost cache looks the same fingerprint up many
    times per candidate-pricing round (pricing, gain attribution, the
    breakdown store), so the key object computes the hash once at
    construction and every dict operation afterwards reuses it.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: tuple):
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, HashedKey):
            return self._hash == other._hash and self.value == other.value
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashedKey(hash={self._hash})"


class LRUCache(Generic[K, V]):
    """A mapping bounded to ``maxsize`` entries with LRU eviction.

    ``maxsize <= 0`` disables storage entirely (every lookup misses),
    which is how the cost cache is switched off for A/B comparisons.
    """

    _MISSING = object()

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: dict[K, V] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        # Refresh recency: move the key to the end of insertion order.
        del self._data[key]
        self._data[key] = value  # type: ignore[assignment]
        self.hits += 1
        return value  # type: ignore[return-value]

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key`` without touching recency or the hit/miss
        counters (used by speculative work that must not perturb the
        cache statistics of the serial accounting pass)."""
        return self._data.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if self.maxsize <= 0:
            return
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self.maxsize:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value

    def __getitem__(self, key: K) -> V:
        value = self.get(key, self._MISSING)  # type: ignore[arg-type]
        if value is self._MISSING:
            raise KeyError(key)
        return value  # type: ignore[return-value]

    def __setitem__(self, key: K, value: V) -> None:
        self.put(key, value)

    def clear(self) -> None:
        """Drop all entries (hit/miss counters are preserved)."""
        self._data.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache({len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
