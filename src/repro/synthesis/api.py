"""Top-level synthesis entry points (the paper's SYNTHESIZE procedure).

:func:`synthesize` runs the full flow on a hierarchical design:
validation, trace simulation, Vdd/clock pruning, per-operating-point
initial solution + variable-depth iterative improvement, and selection
of the best feasible architecture.  :func:`synthesize_flat` is the
flattened baseline of ref. [10] — the same engine run on the fully
expanded DFG (this is the "Flat" column of Tables 3 and 4).

:func:`voltage_scale` post-processes an area-optimized 5 V result the
way Table 3's column A does: drop the supply (stretching the clock by
the CMOS delay factor, which keeps every cycle count identical) as far
as the schedule's slack allows, and re-estimate power.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..dfg.flatten import flatten
from ..dfg.hierarchy import Design
from ..dfg.validate import validate_design
from ..errors import SynthesisError
from ..library.library import ModuleLibrary, default_library
from ..library.voltage import SUPPLY_VOLTAGES, delay_scale
from ..power.simulate import SimTrace, simulate_subgraph
from ..power.traces import TraceSet, default_traces
from ..rtl.components import DatapathNetlist
from ..rtl.controller import FSMController
from .context import SynthesisConfig, SynthesisEnv
from .costs import EvaluationContext, Metrics, Objective
from .datapath_build import build_controller, build_netlist
from .improve import PassRecord, improve_solution
from .initial import initial_solution
from .pruning import candidate_clocks, candidate_vdds, laxity_sampling_ns
from .solution import Solution

__all__ = ["SynthesisResult", "synthesize", "synthesize_flat", "voltage_scale"]


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run."""

    solution: Solution
    metrics: Metrics
    objective: Objective
    vdd: float
    clk_ns: float
    sampling_ns: float
    elapsed_s: float
    flattened: bool
    design: Design
    library: ModuleLibrary
    sim: SimTrace
    history: dict[tuple[float, float], list[PassRecord]] = field(default_factory=dict)

    @property
    def area(self) -> float:
        return self.metrics.area

    @property
    def power(self) -> float:
        return self.metrics.power

    def netlist(self) -> DatapathNetlist:
        """Structural datapath netlist of the winning architecture."""
        return build_netlist(self.solution)

    def controller(self) -> FSMController:
        """FSM controller of the winning architecture."""
        return build_controller(self.solution)


def _prepare_traces(design: Design, traces: TraceSet | None, n_samples: int) -> TraceSet:
    if traces is None:
        return default_traces(design.top, n=n_samples)
    return traces


def synthesize(
    design: Design,
    library: ModuleLibrary | None = None,
    sampling_ns: float | None = None,
    laxity_factor: float | None = None,
    objective: Objective = "power",
    traces: TraceSet | None = None,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
) -> SynthesisResult:
    """Synthesize a hierarchical design under a throughput constraint.

    Exactly one of ``sampling_ns`` (absolute period) or ``laxity_factor``
    (multiple of the minimum achievable period, as in Table 3) must be
    given.
    """
    return _synthesize(
        design,
        library=library,
        sampling_ns=sampling_ns,
        laxity_factor=laxity_factor,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
        flatten_input=False,
    )


def synthesize_flat(
    design: Design,
    library: ModuleLibrary | None = None,
    sampling_ns: float | None = None,
    laxity_factor: float | None = None,
    objective: Objective = "power",
    traces: TraceSet | None = None,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
) -> SynthesisResult:
    """The flattened baseline: expand the hierarchy, then synthesize."""
    return _synthesize(
        design,
        library=library,
        sampling_ns=sampling_ns,
        laxity_factor=laxity_factor,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
        flatten_input=True,
    )


def _synthesize(
    design: Design,
    library: ModuleLibrary | None,
    sampling_ns: float | None,
    laxity_factor: float | None,
    objective: Objective,
    traces: TraceSet | None,
    config: SynthesisConfig | None,
    n_samples: int,
    flatten_input: bool,
) -> SynthesisResult:
    started = time.perf_counter()
    library = library or default_library()
    validate_design(design)

    if (sampling_ns is None) == (laxity_factor is None):
        raise SynthesisError("give exactly one of sampling_ns / laxity_factor")
    if sampling_ns is None:
        assert laxity_factor is not None
        sampling_ns = laxity_sampling_ns(design, library, laxity_factor)

    if flatten_input:
        flat = flatten(design)
        wrapper = Design(f"{design.name}_flat")
        wrapper.add_dfg(flat, top=True)
        design = wrapper

    top = design.top
    traces = _prepare_traces(design, traces, n_samples)
    input_streams = [traces[name] for name in top.inputs]
    sim = simulate_subgraph(design, top, input_streams)

    env = SynthesisEnv(design, library, objective, config)
    ctx = env.context(sim)

    vdds = candidate_vdds(design, library, sampling_ns)
    if objective == "area":
        # Area is supply-independent; synthesize at the reference supply
        # (Table 3 synthesizes column A at 5 V, scaling afterwards).
        vdds = vdds[:1]
    if not vdds:
        raise SynthesisError(
            f"throughput unachievable: sampling_ns={sampling_ns:.1f} is below "
            "the minimum critical path at every supply voltage"
        )

    best: tuple[float, Solution, Metrics, float, float] | None = None
    history: dict[tuple[float, float], list[PassRecord]] = {}
    for vdd in vdds:
        for clk_ns in candidate_clocks(
            library, vdd, sampling_ns, n_clocks=env.config.n_clocks
        ):
            init = initial_solution(env, top, sim, clk_ns, vdd, sampling_ns)
            # A structurally hopeless point (even the unconstrained
            # makespan far beyond the budget) is skipped; a borderline
            # miss is still improved, since moves (e.g. replacing a
            # quantization-wasteful module) can recover feasibility.
            if init.schedule().length > 2 * init.deadline_cycles:
                continue
            point_history: list[PassRecord] = []
            improved = improve_solution(env, init, sim, history=point_history)
            metrics = ctx.evaluate(improved)
            history[(vdd, clk_ns)] = point_history
            if not metrics.feasible:
                continue
            value = metrics.objective_value(objective)
            if best is None or value < best[0]:
                best = (value, improved, metrics, vdd, clk_ns)

    if best is None:
        raise SynthesisError(
            f"no feasible implementation found for {design.name!r} at "
            f"sampling period {sampling_ns:.1f} ns"
        )

    _value, solution, metrics, vdd, clk_ns = best
    return SynthesisResult(
        solution=solution,
        metrics=metrics,
        objective=objective,
        vdd=vdd,
        clk_ns=clk_ns,
        sampling_ns=sampling_ns,
        elapsed_s=time.perf_counter() - started,
        flattened=flatten_input,
        design=design,
        library=library,
        sim=sim,
        history=history,
    )


def voltage_scale(
    result: SynthesisResult,
    voltages: tuple[float, ...] = SUPPLY_VOLTAGES,
    continuous: bool = False,
) -> SynthesisResult:
    """Voltage-scale a synthesized architecture for low power.

    Scaling multiplies every cell delay by the CMOS factor; stretching
    the clock by the same factor keeps all cycle counts (and hence the
    schedule and binding) identical, so the architecture is unchanged.
    The lowest supply whose stretched schedule still meets the sampling
    period wins.

    With ``continuous=True`` the supply is scaled "to just meet the
    sampling period constraint" (Table 4's Vdd-sc column) instead of
    snapping to the discrete library voltages.
    """
    from ..library.voltage import vdd_for_delay_scale

    base_scale = delay_scale(result.vdd)
    length = result.solution.schedule().length
    candidates: list[float] = [v for v in voltages if v < result.vdd]
    if continuous:
        slack_factor = result.sampling_ns / max(length * result.clk_ns, 1e-9)
        exact = vdd_for_delay_scale(base_scale * slack_factor)
        if exact is not None and exact < result.vdd:
            candidates.append(exact)
    best: SynthesisResult = result
    for vdd in candidates:
        stretch = delay_scale(vdd) / base_scale
        new_clk = result.clk_ns * stretch
        if length * new_clk > result.sampling_ns + 1e-9:
            continue
        scaled = result.solution.clone()
        scaled.clk_ns = new_clk
        scaled.vdd = vdd
        scaled.sampling_ns = result.sampling_ns
        ctx = EvaluationContext(result.sim, (), result.objective)
        metrics = ctx.evaluate(scaled)
        if not metrics.feasible:
            continue
        if metrics.power < best.metrics.power:
            best = SynthesisResult(
                solution=scaled,
                metrics=metrics,
                objective=result.objective,
                vdd=vdd,
                clk_ns=new_clk,
                sampling_ns=result.sampling_ns,
                elapsed_s=result.elapsed_s,
                flattened=result.flattened,
                design=result.design,
                library=result.library,
                sim=result.sim,
                history=result.history,
            )
    return best
