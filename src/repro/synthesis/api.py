"""Top-level synthesis entry points (the paper's SYNTHESIZE procedure).

:func:`synthesize` runs the full flow on a hierarchical design:
validation, trace simulation, Vdd/clock pruning, per-operating-point
initial solution + variable-depth iterative improvement, and selection
of the best feasible architecture.  :func:`synthesize_flat` is the
flattened baseline of ref. [10] — the same engine run on the fully
expanded DFG (this is the "Flat" column of Tables 3 and 4).

:func:`voltage_scale` post-processes an area-optimized 5 V result the
way Table 3's column A does: drop the supply (stretching the clock by
the CMOS delay factor, which keeps every cycle count identical) as far
as the schedule's slack allows, and re-estimate power.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from ..dfg.flatten import flatten
from ..dfg.hierarchy import Design
from ..dfg.validate import validate_design
from ..errors import SynthesisError
from ..library.library import ModuleLibrary, default_library
from ..library.voltage import SUPPLY_VOLTAGES, delay_scale
from ..power.activity import reset_activity_caches
from ..power.simulate import SimTrace, simulate_subgraph
from ..power.traces import TraceSet, default_traces
from ..rtl.components import DatapathNetlist
from ..rtl.controller import FSMController
from ..telemetry import Telemetry
from ..trace.events import SCHEMA_VERSION as TRACE_SCHEMA_VERSION
from .context import SynthesisConfig, SynthesisEnv
from .incremental import _reset_energy_memos
from .costs import EvaluationContext, Metrics, Objective
from .datapath_build import build_controller, build_netlist
from .improve import PassRecord, improve_solution
from .initial import initial_solution
from .pruning import candidate_clocks, candidate_vdds, laxity_sampling_ns
from .solution import Solution

__all__ = [
    "PointCandidate",
    "SynthesisResult",
    "flatten_for_synthesis",
    "synthesize",
    "synthesize_flat",
    "voltage_scale",
]


@dataclass
class PointCandidate:
    """One feasible architecture explored by the operating-point sweep.

    The sweep's non-winning feasible solutions are kept on
    :attr:`SynthesisResult.candidates` so post-processing (the
    ``--corners`` sweep, Pareto reporting) can compare architectures
    rather than just the single objective winner.
    """

    vdd: float
    clk_ns: float
    solution: Solution
    metrics: Metrics


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run."""

    solution: Solution
    metrics: Metrics
    objective: Objective
    vdd: float
    clk_ns: float
    sampling_ns: float
    elapsed_s: float
    flattened: bool
    design: Design
    library: ModuleLibrary
    sim: SimTrace
    history: dict[tuple[float, float], list[PassRecord]] = field(default_factory=dict)
    telemetry: Telemetry = field(default_factory=Telemetry)
    #: Structured search trace (``SynthesisConfig.trace``): one event
    #: dict per span, in deterministic order; ``None`` when tracing was
    #: off.  Serialize with :func:`repro.trace.write_trace`.
    trace_events: list[dict[str, Any]] | None = None
    #: Every feasible architecture the sweep explored (winner included),
    #: in point order — the material for corner/Pareto reporting.
    candidates: list[PointCandidate] = field(default_factory=list)

    @property
    def area(self) -> float:
        """Total active area of the winning architecture."""
        return self.metrics.area

    @property
    def power(self) -> float:
        """Average power of the winning architecture at its (Vdd, clock)."""
        return self.metrics.power

    def netlist(self) -> DatapathNetlist:
        """Structural datapath netlist of the winning architecture."""
        return build_netlist(self.solution)

    def controller(self) -> FSMController:
        """FSM controller of the winning architecture."""
        return build_controller(self.solution)

    def verify(self, *, shrink: bool = True):
        """Differentially verify the winning architecture's RTL.

        Replays the run's memoized input traces through the
        cycle-accurate interpreter and compares every primary output
        against the DFG simulation; returns a
        :class:`~repro.verify.oracle.VerificationResult`.
        """
        # Local import: repro.verify builds on this package.
        from ..verify import verify_solution

        result = verify_solution(
            self.design, self.solution, sim=self.sim, shrink=shrink
        )
        self.telemetry.verify_checks += 1
        if not result.ok:
            self.telemetry.verify_failures += 1
        return result


def _prepare_traces(design: Design, traces: TraceSet | None, n_samples: int) -> TraceSet:
    if traces is None:
        return default_traces(design.top, n=n_samples)
    return traces


def flatten_for_synthesis(design: Design) -> Design:
    """Wrap *design*'s fully expanded DFG as a single-behavior design.

    This is the flattened-baseline preprocessing of
    :func:`synthesize_flat`, factored out so trace replay can rebuild
    the exact design object a recorded flat run synthesized.
    """
    flat = flatten(design)
    wrapper = Design(f"{design.name}_flat")
    wrapper.add_dfg(flat, top=True)
    return wrapper


def synthesize(
    design: Design,
    library: ModuleLibrary | None = None,
    sampling_ns: float | None = None,
    laxity_factor: float | None = None,
    objective: Objective = "power",
    traces: TraceSet | None = None,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
    store: "Any | None" = None,
) -> SynthesisResult:
    """Synthesize a hierarchical design under a throughput constraint.

    Exactly one of ``sampling_ns`` (absolute period) or ``laxity_factor``
    (multiple of the minimum achievable period, as in Table 3) must be
    given.  *store* optionally supplies an externally owned
    :class:`~repro.synthesis.store.SynthesisStore` shared across several
    runs (the portfolio driver pollinates members through one); the
    caller keeps responsibility for closing it.
    """
    return _synthesize(
        design,
        library=library,
        sampling_ns=sampling_ns,
        laxity_factor=laxity_factor,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
        flatten_input=False,
        store=store,
    )


def synthesize_flat(
    design: Design,
    library: ModuleLibrary | None = None,
    sampling_ns: float | None = None,
    laxity_factor: float | None = None,
    objective: Objective = "power",
    traces: TraceSet | None = None,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
) -> SynthesisResult:
    """The flattened baseline: expand the hierarchy, then synthesize."""
    return _synthesize(
        design,
        library=library,
        sampling_ns=sampling_ns,
        laxity_factor=laxity_factor,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
        flatten_input=True,
    )


@dataclass
class _PointOutcome:
    """Result of one (Vdd, clock) operating point of the sweep."""

    vdd: float
    clk_ns: float
    solution: Solution | None
    metrics: Metrics | None
    history: list[PassRecord]
    #: Trace events buffered by a *worker* recorder (parallel sweep
    #: only; the serial path appends directly to the run's recorder).
    events: list[dict[str, Any]] = field(default_factory=list)
    events_dropped: int = 0
    #: Run-tier store entries minted by a *worker* — ``(namespace,
    #: digest, blob)`` triples exported via
    #: :meth:`~repro.synthesis.store.SynthesisStore.export_fresh` for
    #: the parent to absorb into the run tier in point order.
    store_entries: list[tuple[str, str, bytes]] = field(default_factory=list)


def _run_point(
    env: SynthesisEnv,
    sim: SimTrace,
    sampling_ns: float,
    vdd: float,
    clk_ns: float,
    point_index: int = 0,
) -> _PointOutcome:
    """Synthesize one operating point: initial solution + improvement.

    Every point is independent of every other — it owns its initial
    solution and improvement trajectory, and all mutable per-point state
    (module cache, resynthesis memo, name counter, cost caches) lives in
    *env*, which the caller either resets between points (serial sweep)
    or instantiates fresh per worker (parallel sweep).
    """
    top = env.design.top
    rec = env.trace
    if rec is not None:
        rec.point = point_index
        t_point = rec.clock()
        rec.emit("point_start", point=point_index, vdd=vdd, clk_ns=clk_ns)
    t0 = time.perf_counter()
    init = initial_solution(env, top, sim, clk_ns, vdd, sampling_ns)
    env.telemetry.add_time("initial", time.perf_counter() - t0)
    if rec is not None:
        rec.emit("init", point=point_index, cycles=init.schedule().length,
                 budget=init.deadline_cycles)
    # A structurally hopeless point (even the unconstrained makespan far
    # beyond the budget) is skipped; a borderline miss is still
    # improved, since moves (e.g. replacing a quantization-wasteful
    # module) can recover feasibility.
    if init.schedule().length > 2 * init.deadline_cycles:
        env.telemetry.points_skipped += 1
        if rec is not None:
            rec.emit("point_end", point=point_index, status="skipped",
                     dur_ns=rec.elapsed_ns(t_point))
        return _PointOutcome(vdd, clk_ns, None, None, [])
    env.telemetry.points_explored += 1
    point_history: list[PassRecord] = []
    t1 = time.perf_counter()
    improved = improve_solution(env, init, sim, history=point_history)
    metrics = env.context(sim).evaluate(improved)
    env.telemetry.add_time("improve", time.perf_counter() - t1)
    if rec is not None:
        rec.emit(
            "point_end", point=point_index, status="explored",
            feasible=metrics.feasible,
            cost=metrics.objective_value(env.objective),
            area=metrics.area, power=metrics.power,
            cycles=metrics.schedule_length,
            dur_ns=rec.elapsed_ns(t_point),
        )
    return _PointOutcome(vdd, clk_ns, improved, metrics, point_history)


def _point_worker(
    payload: tuple[
        Design, ModuleLibrary, Objective, SynthesisConfig, SimTrace, float,
        float, float, int,
    ],
) -> tuple[_PointOutcome, Telemetry]:
    """Process-pool entry: run one operating point in a fresh env.

    A fresh :class:`SynthesisEnv` is bit-equivalent to a reset one (name
    counter at zero, empty caches), so worker results match the serial
    sweep exactly.  The worker's telemetry — and, when tracing, its
    buffered trace events — ride back with the outcome for the parent
    to merge in point order.
    """
    (design, library, objective, config, sim, sampling_ns, vdd, clk_ns,
     point_index) = payload
    env = SynthesisEnv(design, library, objective, config)
    outcome = _run_point(env, sim, sampling_ns, vdd, clk_ns, point_index)
    if env.trace is not None:
        outcome.events = env.trace.events
        outcome.events_dropped = env.trace.dropped
    outcome.store_entries = env.store.export_fresh()
    return outcome, env.telemetry


def _sweep_points(
    env: SynthesisEnv,
    sim: SimTrace,
    sampling_ns: float,
    points: list[tuple[float, float]],
) -> list[_PointOutcome]:
    """Run every operating point, in parallel when configured.

    Outcomes are returned in the order of *points* regardless of worker
    completion order, so best-solution selection (strict ``<`` on the
    objective) is identical to the serial sweep.  Pool failures
    (platforms without process support, unpicklable payloads) fall back
    to the serial path.
    """
    n_workers = max(1, env.config.n_workers)
    if n_workers > 1 and len(points) > 1:
        payloads = [
            (env.design, env.library, env.objective, env.config, sim,
             sampling_ns, vdd, clk_ns, idx)
            for idx, (vdd, clk_ns) in enumerate(points)
        ]
        try:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(points))
            ) as pool:
                paired = list(pool.map(_point_worker, payloads))
        except (OSError, ImportError, BrokenProcessPool,
                pickle.PicklingError):
            paired = None
        if paired is not None:
            for outcome, worker_telemetry in paired:
                env.telemetry.merge(worker_telemetry)
                if env.trace is not None:
                    # Point order == serial emission order, so the
                    # merged trace matches the n_workers=1 trace.
                    env.trace.absorb(outcome.events, outcome.events_dropped)
                    outcome.events = []
                # Fold worker-minted store entries into the parent's run
                # tier (and persistent tier writes already happened in
                # the worker), so later runs warm-start from them.
                env.store.absorb(outcome.store_entries)
                outcome.store_entries = []
            return [outcome for outcome, _tel in paired]

    outcomes: list[_PointOutcome] = []
    for idx, (vdd, clk_ns) in enumerate(points):
        env.reset_point_caches()
        outcomes.append(_run_point(env, sim, sampling_ns, vdd, clk_ns, idx))
    return outcomes


def _synthesize(
    design: Design,
    library: ModuleLibrary | None,
    sampling_ns: float | None,
    laxity_factor: float | None,
    objective: Objective,
    traces: TraceSet | None,
    config: SynthesisConfig | None,
    n_samples: int,
    flatten_input: bool,
    store: "Any | None" = None,
) -> SynthesisResult:
    started = time.perf_counter()
    library = library or default_library()
    validate_design(design)

    if (sampling_ns is None) == (laxity_factor is None):
        raise SynthesisError("give exactly one of sampling_ns / laxity_factor")
    if sampling_ns is None:
        assert laxity_factor is not None
        sampling_ns = laxity_sampling_ns(design, library, laxity_factor)

    if flatten_input:
        design = flatten_for_synthesis(design)

    top = design.top
    traces = _prepare_traces(design, traces, n_samples)
    input_streams = [traces[name] for name in top.inputs]
    env = SynthesisEnv(design, library, objective, config, store=store)
    try:
        return _synthesize_in_env(
            env, design, top, traces, input_streams, sampling_ns, objective,
            flatten_input, started,
        )
    finally:
        # Run teardown — on the failure paths too: the activity memos
        # pin simulated streams by id, and a long-lived process (job
        # server worker, REPL) that survives a SynthesisError must not
        # retain them, nor keep the run's persistent-store connections
        # open.  Post-processing (voltage scaling, corner sweeps) simply
        # repopulates the memos from the result's own sim.  An
        # externally supplied store outlives the run by contract — its
        # owner (the portfolio driver) closes it after the last member.
        reset_activity_caches()
        _reset_energy_memos()
        if store is None:
            env.store.close()


def _synthesize_in_env(
    env: SynthesisEnv,
    design: Design,
    top,
    traces: TraceSet,
    input_streams: list,
    sampling_ns: float,
    objective: Objective,
    flatten_input: bool,
    started: float,
) -> SynthesisResult:
    """The run body of :func:`_synthesize`, between setup and teardown."""
    t_sim = time.perf_counter()
    sim = simulate_subgraph(design, top, input_streams)
    env.telemetry.add_time("simulate", time.perf_counter() - t_sim)
    library = env.library

    vdds = candidate_vdds(design, library, sampling_ns)
    if objective == "area":
        # Area is supply-independent; synthesize at the reference supply
        # (Table 3 synthesizes column A at 5 V, scaling afterwards).
        vdds = vdds[:1]
    if not vdds:
        raise SynthesisError(
            f"throughput unachievable: sampling_ns={sampling_ns:.1f} is below "
            "the minimum critical path at every supply voltage"
        )

    points = [
        (vdd, clk_ns)
        for vdd in vdds
        for clk_ns in candidate_clocks(
            library, vdd, sampling_ns, n_clocks=env.config.n_clocks
        )
    ]

    if env.trace is not None:
        env.trace.emit(
            "run_start",
            schema=TRACE_SCHEMA_VERSION,
            design=design.name,
            objective=objective,
            sampling_ns=sampling_ns,
            flattened=flatten_input,
            n_points=len(points),
            config=_traced_config(env.config),
            provenance=env.config.trace_meta,
            # Optional v3 header field: absent (and byte-invisible) for
            # the default policy, so pre-policy goldens stay valid.
            policy=(
                env.config.search_policy
                if env.config.search_policy != "default"
                else None
            ),
        )

    t_sweep = time.perf_counter()
    outcomes = _sweep_points(env, sim, sampling_ns, points)
    env.telemetry.add_time("sweep", time.perf_counter() - t_sweep)

    best: tuple[float, Solution, Metrics, float, float, int] | None = None
    history: dict[tuple[float, float], list[PassRecord]] = {}
    candidates: list[PointCandidate] = []
    for idx, outcome in enumerate(outcomes):
        if outcome.solution is None or outcome.metrics is None:
            continue
        history[(outcome.vdd, outcome.clk_ns)] = outcome.history
        if not outcome.metrics.feasible:
            continue
        candidates.append(
            PointCandidate(
                outcome.vdd, outcome.clk_ns, outcome.solution, outcome.metrics
            )
        )
        value = outcome.metrics.objective_value(objective)
        if best is None or value < best[0]:
            best = (
                value, outcome.solution, outcome.metrics,
                outcome.vdd, outcome.clk_ns, idx,
            )

    if best is None:
        raise SynthesisError(
            f"no feasible implementation found for {design.name!r} at "
            f"sampling period {sampling_ns:.1f} ns"
        )

    value, solution, metrics, vdd, clk_ns, winner_idx = best
    if env.trace is not None:
        env.trace.emit(
            "run_end",
            winner={
                "point": winner_idx, "vdd": vdd, "clk_ns": clk_ns,
                "cost": value, "area": metrics.area, "power": metrics.power,
            },
            events_dropped=env.trace.dropped,
            stage_s=(
                {k: round(v, 6) for k, v in sorted(env.telemetry.stage_s.items())}
                if env.trace.timings
                else None
            ),
            # Store counters ride with the timings gate: totals vary
            # with worker counts (each worker probes its own tiers), so
            # they would break byte-identical --no-trace-timings traces.
            store=(env.store.counters() if env.trace.timings else None),
        )
    return SynthesisResult(
        solution=solution,
        metrics=metrics,
        objective=objective,
        vdd=vdd,
        clk_ns=clk_ns,
        sampling_ns=sampling_ns,
        elapsed_s=time.perf_counter() - started,
        flattened=flatten_input,
        design=design,
        library=library,
        sim=sim,
        history=history,
        telemetry=env.telemetry,
        trace_events=env.trace.events if env.trace is not None else None,
        candidates=candidates,
    )


def _traced_config(config: SynthesisConfig) -> dict[str, Any]:
    """Search-shaping knobs recorded in a trace's ``run_start`` event.

    Execution-only fields are excluded: ``n_workers``,
    ``score_workers``, ``validate_incremental``, ``batch_activity``,
    ``relational``,
    the ``trace_*`` family and the store knobs (``cache_dir``,
    ``persistent_cache``, ``run_cache_size``) do not change what the
    search does (or what its
    trace records), and keeping them out is what lets a 1-worker and a
    4-worker run — or a cold and a warm-cache run — produce
    byte-identical traces.  ``incremental`` and
    ``prune`` *are* recorded: both leave the search outcome intact, but
    they shape per-step eval/pruned counts in the trace, so a replay
    must run them the same way.  ``trace_meta`` rides separately as the
    provenance field.
    """
    skip = {"n_workers", "score_workers", "validate_incremental",
            "batch_activity", "relational",
            "trace", "trace_timings", "trace_evals",
            "trace_max_events", "trace_meta",
            "cache_dir", "persistent_cache", "run_cache_size",
            "store_shards",
            # Policy selection rides as run_start's optional ``policy``
            # field instead (absent for the default policy), keeping
            # default-policy traces byte-identical to pre-policy ones;
            # replay re-executes recorded committed moves, which is
            # policy-independent.
            "search_policy", "policy_params"}
    return {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.name not in skip
    }


def voltage_scale(
    result: SynthesisResult,
    voltages: tuple[float, ...] = SUPPLY_VOLTAGES,
    continuous: bool = False,
) -> SynthesisResult:
    """Voltage-scale a synthesized architecture for low power.

    Scaling multiplies every cell delay by the CMOS factor; stretching
    the clock by the same factor keeps all cycle counts (and hence the
    schedule and binding) identical, so the architecture is unchanged.
    The lowest supply whose stretched schedule still meets the sampling
    period wins.

    With ``continuous=True`` the supply is scaled "to just meet the
    sampling period constraint" (Table 4's Vdd-sc column) instead of
    snapping to the discrete library voltages.

    The returned result (when scaling wins) reports ``elapsed_s`` as the
    original synthesis time **plus** the time spent scaling, and the
    candidate list is deduplicated — a continuous candidate that lands
    on a discrete library voltage is evaluated once, not twice.
    """
    started = time.perf_counter()

    base_scale = delay_scale(result.vdd)
    length = result.solution.schedule().length
    candidates = _scale_candidates(result, voltages, continuous)
    best: tuple[Solution, Metrics, float, float] | None = None
    for vdd in candidates:
        stretch = delay_scale(vdd) / base_scale
        new_clk = result.clk_ns * stretch
        if length * new_clk > result.sampling_ns + 1e-9:
            continue
        scaled = result.solution.clone()
        scaled.clk_ns = new_clk
        scaled.vdd = vdd
        scaled.sampling_ns = result.sampling_ns
        ctx = EvaluationContext(result.sim, (), result.objective)
        metrics = ctx.evaluate(scaled)
        if not metrics.feasible:
            continue
        best_power = best[1].power if best is not None else result.metrics.power
        if metrics.power < best_power:
            best = (scaled, metrics, vdd, new_clk)

    if best is None:
        return result
    solution, metrics, vdd, new_clk = best
    trace_events = result.trace_events
    if trace_events is not None:
        # The scaled result keeps the synthesis trace and annotates the
        # supply change; replay targets the pre-scale run_end winner.
        trace_events = trace_events + [
            {"k": "voltage_scale", "vdd": vdd, "clk_ns": new_clk,
             "power": metrics.power}
        ]
    return SynthesisResult(
        solution=solution,
        metrics=metrics,
        objective=result.objective,
        vdd=vdd,
        clk_ns=new_clk,
        sampling_ns=result.sampling_ns,
        elapsed_s=result.elapsed_s + (time.perf_counter() - started),
        flattened=result.flattened,
        design=result.design,
        library=result.library,
        sim=result.sim,
        history=result.history,
        telemetry=result.telemetry,
        trace_events=trace_events,
        candidates=result.candidates,
    )


def _scale_candidates(
    result: SynthesisResult,
    voltages: tuple[float, ...],
    continuous: bool,
) -> list[float]:
    """Deduplicated candidate supplies below the result's Vdd.

    The continuous just-meets-the-period candidate can coincide with a
    discrete library voltage (when the schedule's slack is an exact CMOS
    delay ratio); evaluating it twice wastes a full netlist + power pass
    for an identical answer.
    """
    from ..library.voltage import vdd_for_delay_scale

    candidates: list[float] = []

    def add(v: float) -> None:
        if v < result.vdd and not any(abs(v - c) < 1e-9 for c in candidates):
            candidates.append(v)

    for v in voltages:
        add(v)
    if continuous:
        base_scale = delay_scale(result.vdd)
        length = result.solution.schedule().length
        slack_factor = result.sampling_ns / max(length * result.clk_ns, 1e-9)
        exact = vdd_for_delay_scale(base_scale * slack_factor)
        if exact is not None:
            add(exact)
    return candidates
