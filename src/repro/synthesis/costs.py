"""Cost evaluation: area, trace-driven power, and the objective function.

Every tentative move is priced by re-evaluating the mutated solution:
rebuild the structural netlist (area side) and re-price the
per-resource stream interleavings (power side).  Gains are then
differences of these costs, exactly as in the paper's
``Gain(move, Obj)`` (Figure 4).  Local moves are priced *by delta*
against a per-term breakdown of the current solution (see
:mod:`repro.synthesis.incremental`); the result is bit-identical to a
from-scratch evaluation either way.

The evaluation context pins everything that stays fixed during one
iterative-improvement run: the module library, the simulated value
streams, the hierarchy path of the DFG being synthesized, the sampling
period and the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

import numpy as np

from ..dfg.canonical import graph_signature
from ..dfg.graph import Signal
from ..errors import SynthesisError
from ..power.estimator import PowerReport
from ..power.simulate import SimTrace
from ..rtl.components import DatapathNetlist
from ..telemetry import Telemetry
from ..trace.recorder import TraceRecorder
from .caching import HashedKey, LRUCache
from .store import (
    MISSING,
    SynthesisStore,
    sim_level_digest,
    solution_pricing_signature,
)
from ..power.activity import batch_activities
from .datapath_build import build_netlist, operand_port_map
from .incremental import (
    Breakdown,
    evaluate_solution,
    finish_evaluation,
    plan_evaluation,
)
from .solution import Solution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduling.model import ScheduleResult

__all__ = [
    "Objective",
    "Metrics",
    "EvaluationContext",
    "area_of",
    "DEFAULT_COST_CACHE_SIZE",
]

#: Default bound on the fingerprint-keyed cost cache (entries, not bytes;
#: one entry holds a Metrics record).
DEFAULT_COST_CACHE_SIZE = 4096

Objective = Literal["area", "power"]

#: Weight of the secondary metric in the objective, used only to break
#: ties between otherwise equal candidates.
_TIEBREAK = 1e-6

#: Reference area at which the interconnect length factor equals one.
_AREA_REF = 300.0


#: Base cost assigned to infeasible solutions; the amount of constraint
#: violation is added on top so the optimizer can still rank infeasible
#: candidates and descend back into the feasible region (used when an
#: initial solution misses the budget by a small margin).
_INFEASIBLE_COST = 1e9


@dataclass
class Metrics:
    """Evaluated properties of one solution."""

    area: float
    energy_per_sample: float
    power: float
    schedule_length: int
    feasible: bool
    report: PowerReport
    violation: float = 0.0

    def objective_value(self, objective: Objective) -> float:
        """Scalar cost under ``objective``; infeasible points cost ~1e9."""
        if not self.feasible:
            return _INFEASIBLE_COST * (1.0 + self.violation)
        if objective == "power":
            return self.power + _TIEBREAK * self.area
        return self.area + _TIEBREAK * self.power


def area_of(solution: Solution, netlist: DatapathNetlist | None = None) -> float:
    """Total area: leaf netlist + complex-module instances."""
    if netlist is None:
        netlist = build_netlist(solution)
    total = netlist.area(solution.library)
    for inst in solution.instances.values():
        if inst.is_module:
            assert inst.module is not None
            total += inst.module.area(solution.library)
    return total


class EvaluationContext:
    """Fixed context for evaluating solutions of one DFG level."""

    def __init__(
        self,
        sim: SimTrace,
        path: tuple[str, ...],
        objective: Objective,
        telemetry: Telemetry | None = None,
        cache_size: int = DEFAULT_COST_CACHE_SIZE,
        recorder: TraceRecorder | None = None,
        validate_incremental: bool = False,
        reuse_schedules: bool = True,
        store: SynthesisStore | None = None,
        design: object | None = None,
        store_prefix: str | None = None,
        share_metrics: bool = False,
        batch_pricing: bool = True,
    ):
        self.sim = sim
        self.path = path
        self.objective = objective
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Optional trace recorder: when set, every evaluation emits one
        #: ``eval`` span with its cache provenance (``trace_evals``).
        self.recorder = recorder
        #: Debug mode: recompute every delta-priced evaluation from
        #: scratch and raise on any bitwise mismatch.
        self.validate_incremental = validate_incremental
        #: Price candidate sets through :meth:`evaluate_batch`: plan all
        #: uncached candidates, resolve every activity-key miss with one
        #: batched kernel call, then replay each candidate's arithmetic.
        #: Results are bit-identical either way (execution knob only).
        self.batch_pricing = batch_pricing
        #: Share schedules across candidates with equal task signatures
        #: (part of the incremental machinery; off reproduces the
        #: schedule-per-candidate behavior of from-scratch pricing).
        self.reuse_schedules = reuse_schedules
        #: Memoized full evaluations, keyed by solution fingerprint.  The
        #: KL loop re-generates thousands of structurally identical
        #: candidates across steps and passes; pricing them is a lookup.
        self._cost_cache: LRUCache[HashedKey, Metrics] = LRUCache(cache_size)
        #: Per-term energy breakdowns of evaluated solutions, keyed like
        #: the cost cache; the improvement loop fetches the current
        #: solution's breakdown to delta-price its candidates against.
        self._breakdowns: LRUCache[HashedKey, Breakdown] = LRUCache(cache_size)
        #: Results computed speculatively on scoring threads
        #: (:meth:`prime`), consumed by the serial accounting pass.
        self._primed: dict[
            HashedKey, tuple[Metrics, Breakdown, int, int]
        ] = {}
        #: Canonical metrics content keys, memoized per fingerprint.
        #: One candidate's content is needed up to three times (the
        #: speculative ``contains`` filter, then ``fetch`` and ``put``
        #: in the serial pass); building the pricing signature each time
        #: was measurable, and returning the *same* tuple object lets
        #: the store's digest memo answer repeat hashings for free.
        self._content_memo: LRUCache[HashedKey, tuple] = LRUCache(cache_size)
        #: Tiered synthesis store carrying the shared schedule memo
        #: (namespace ``"schedule"``); ``None`` for bare contexts
        #: (voltage scaling, module characterization), which fall back
        #: to the local LRU below.
        self.store = store
        #: Design resolving module instances in content signatures.
        self.design = design
        #: Store invalidation signature (library + config) prefixed to
        #: every metrics content key.
        self._store_prefix = store_prefix
        #: Share evaluated :class:`Metrics` through the store's run and
        #: persistent tiers, addressed by canonical content.  Only ever
        #: enabled for *untraced* contexts: a store hit skips the
        #: full/delta evaluation below, which would perturb the counter
        #: deltas recorded into trace ``step`` events and break the
        #: cold-vs-warm trace-identity contract.  Also requires the
        #: persistent tier: metrics content keys embed ``vdd``/``clk_ns``
        #: (and the level's stream digest), so run-tier-only sharing has
        #: nothing to hit — candidates at one operating point are already
        #: deduplicated by the fingerprint cost cache, and other points
        #: never address the same content.  Without a database behind it
        #: the machinery is pure per-candidate overhead.
        self._share_metrics = bool(
            share_metrics
            and store is not None
            and design is not None
            and store.persistent
        )
        #: Local schedule memo for store-less contexts (see
        #: :meth:`schedule_of`): register-binding moves and equal-timing
        #: cell swaps do not change the task set, so whole families of
        #: candidates share one list-scheduling run.
        self._schedules: LRUCache[HashedKey, "ScheduleResult"] = LRUCache(
            cache_size
        )

    # ------------------------------------------------------------------
    def _operand_streams(
        self, solution: Solution, group: tuple[str, ...]
    ) -> list[np.ndarray]:
        """External operand streams of one execution, in port order."""
        ports = operand_port_map(solution, group)
        ordered: list[tuple[int, Signal]] = []
        inside = set(group)
        for node_id in group:
            for edge in solution.dfg.in_edges(node_id):
                if edge.src in inside:
                    continue
                ordered.append((ports[(node_id, edge.dst_port)], edge.signal))
        ordered.sort()
        return [self.sim.stream(self.path, signal) for _port, signal in ordered]

    def _execution_order(
        self, solution: Solution, inst_id: str
    ) -> list[tuple[str, ...]]:
        """Executions of an instance in scheduled (serialization) order."""
        sched = solution.schedule()
        order = sched.instance_order.get(inst_id, [])
        groups = []
        for task_id in order:
            groups.append(solution.task(task_id).nodes)
        return groups

    def schedule_of(self, solution: Solution) -> "ScheduleResult":
        """Schedule *solution*, memoized by task signature.

        List scheduling is a deterministic function of (DFG, tasks), so
        an equal :meth:`~repro.synthesis.solution.Solution.
        task_signature` guarantees a bit-identical result; sharing the
        cached :class:`~repro.scheduling.model.ScheduleResult` (it is
        never mutated downstream) changes nothing but the wall clock.
        The hit is installed into the solution's own schedule cache so
        feasibility checks, register lifetimes and serialization order
        all see the same object.
        """
        sched = solution._schedule
        if sched is not None:
            return sched
        if not self.reuse_schedules:
            return solution.schedule()
        key = solution.schedule_key()
        if self.store is None:
            cached = self._schedules.get(key)
            if cached is None:
                cached = solution.schedule()
                self._schedules.put(key, cached)
            else:
                solution.adopt_schedule(cached)
            return cached
        cached = self.store.get("schedule", key)
        if cached is MISSING:
            # List scheduling is a pure function of the graph and the
            # task list, so the content key needs nothing else; the
            # graph signature is identity-exact because the schedule's
            # dicts reference concrete node/task ids.
            content = (
                "schedule",
                graph_signature(solution.dfg),
                solution.task_signature(),
            )
            cached = self.store.fetch("schedule", key, content)
            if cached is MISSING:
                cached = solution.schedule()
                self.store.put("schedule", key, content, cached)
                return cached
        solution.adopt_schedule(cached)
        return cached

    # ------------------------------------------------------------------
    def evaluate(self, solution: Solution, base: Breakdown | None = None) -> Metrics:
        """Area/power evaluation of *solution*, memoized by fingerprint.

        Two solutions with equal :meth:`~repro.synthesis.solution.
        Solution.fingerprint` evaluate identically, so the second one is
        answered from the cache without rebuilding the netlist or
        re-running trace-driven power estimation.

        When *base* carries the current solution's per-term breakdown
        (see :mod:`repro.synthesis.incremental`), a cache miss is priced
        incrementally: energy terms whose inputs are unchanged are
        reused instead of recomputed.  The result is bit-identical to a
        from-scratch evaluation; telemetry classifies each miss as a
        delta hit, a delta fall-back (base offered, nothing reusable) or
        a full evaluation.
        """
        self.telemetry.evaluations += 1
        key = solution.fingerprint_key()
        cached = self._cost_cache.get(key)
        if cached is not None:
            self.telemetry.cache_hits += 1
            if self.recorder is not None:
                self.recorder.emit(
                    "eval", point=self.recorder.point, cached=True
                )
            return cached
        self.telemetry.cache_misses += 1
        t0 = self.recorder.clock() if self.recorder is not None else None
        primed = self._primed.pop(key, None)
        content = (
            self._metrics_content(solution, key)
            if self._share_metrics
            else None
        )
        if primed is None and content is not None:
            shared = self.store.fetch("metrics", key, content)
            if shared is not MISSING:
                # Untraced context (see ``_share_metrics``): skipping
                # the full/delta classification below cannot reach any
                # recorded trace.  The metrics themselves are
                # bit-identical to a recomputation, so results and the
                # search trajectory are unchanged.
                self._cost_cache.put(key, shared)
                return shared
        if primed is not None:
            metrics, breakdown, reused, _terms = primed
        else:
            metrics, breakdown, reused, _terms = self._compute(solution, base)
        if base is None:
            self.telemetry.full_evals += 1
            mode = None
        elif reused:
            self.telemetry.delta_hits += 1
            mode = "delta"
        else:
            self.telemetry.delta_fallbacks += 1
            mode = "fallback"
        if self.recorder is not None:
            event: dict = {"point": self.recorder.point, "cached": False}
            if mode is not None:
                event["mode"] = mode
            event["dur_ns"] = self.recorder.elapsed_ns(t0)
            self.recorder.emit("eval", **event)
        self._cost_cache.put(key, metrics)
        self._breakdowns.put(key, breakdown)
        if content is not None:
            self.store.put("metrics", key, content, metrics)
        return metrics

    def _metrics_content(
        self, solution: Solution, key: HashedKey | None = None
    ) -> tuple:
        """Canonical content address of one solution's metrics.

        Name-free and process-independent: the pricing signature covers
        the solution side, the level digest covers the operand streams,
        and the store prefix covers library and configuration.
        Memoized per fingerprint (equal fingerprints imply equal pricing
        signatures at one synthesis point).
        """
        if key is None:
            key = solution.fingerprint_key()
        content = self._content_memo.get(key)
        if content is None:
            content = (
                "metrics",
                self._store_prefix,
                solution_pricing_signature(solution, self.design),
                sim_level_digest(self.sim, self.path),
            )
            self._content_memo.put(key, content)
        return content

    def _compute(
        self, solution: Solution, base: Breakdown | None
    ) -> tuple[Metrics, Breakdown, int, int]:
        """Run the evaluator (delta or full), optionally cross-checked.

        Pure with respect to context state: no telemetry, cache or
        recorder side effects, so scoring threads can call it
        speculatively (:meth:`prime`) without perturbing the serial
        accounting.
        """
        result = evaluate_solution(self, solution, base)
        if base is not None and self.validate_incremental:
            reference = evaluate_solution(self, solution, None)[0]
            _check_identical(result[0], reference)
        return result

    def _evaluate_uncached(self, solution: Solution) -> Metrics:
        """Full evaluation: netlist rebuild + trace-driven estimation."""
        return evaluate_solution(self, solution, None)[0]

    def breakdown_of(self, solution: Solution) -> Breakdown | None:
        """The stored per-term breakdown of an already-evaluated solution.

        Returns ``None`` when the solution has not been evaluated (or
        its breakdown was evicted); callers then simply price without a
        base, which is always correct.
        """
        return self._breakdowns.peek(solution.fingerprint_key())

    # ------------------------------------------------------------------
    def prime(
        self,
        work: list[tuple[Solution, Breakdown | None]],
        workers: int,
    ) -> None:
        """Speculatively evaluate uncached solutions on a thread pool.

        ``work`` pairs each candidate solution with the base breakdown
        it would be priced against.  Solutions already in the cost cache
        (or already primed) are skipped; the rest are computed
        concurrently and stashed for :meth:`evaluate` to consume.  All
        accounting — telemetry, cache recency and eviction, trace
        events — still happens in the caller's serial pass, so results,
        counters and traces are identical at any worker count.
        """
        from concurrent.futures import ThreadPoolExecutor

        jobs: list[tuple[HashedKey, Solution, Breakdown | None]] = []
        seen: set[HashedKey] = set()
        for solution, base in work:
            key = solution.fingerprint_key()
            if (
                key in seen
                or key in self._primed
                or self._cost_cache.peek(key) is not None
            ):
                continue
            if self._share_metrics and self.store.contains(
                "metrics", self._metrics_content(solution, key)
            ):
                # The serial accounting pass will answer this candidate
                # from the store; computing it here would waste a slot.
                continue
            seen.add(key)
            jobs.append((key, solution, base))
        if len(jobs) < 2 or workers < 2:
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(lambda job: self._compute(job[1], job[2]), jobs)
            )
        for (key, _solution, _base), result in zip(jobs, results):
            self._primed[key] = result

    def evaluate_batch(
        self,
        work: list[tuple[Solution, Breakdown | None]],
        workers: int = 1,
    ) -> None:
        """Price a whole candidate set through one batched activity call.

        Every uncached ``(solution, base)`` pair is *planned* (netlist,
        schedule, stream-free terms, activity-key matching against its
        base); the activity requests of all plans are then resolved with
        a single :func:`~repro.power.activity.batch_activities` kernel
        call, and each plan's per-term float arithmetic is replayed
        unchanged.  Results land in the same speculative stash
        :meth:`prime` uses, so the caller's serial :meth:`evaluate` pass
        keeps all telemetry/cache/trace accounting — and therefore
        counters, traces and metrics — identical to unbatched pricing.

        With ``workers > 1`` the planning phase runs on a thread pool
        (the kernel call and the arithmetic replay stay serial).
        """
        jobs: list[tuple[HashedKey, Solution, Breakdown | None]] = []
        seen: set[HashedKey] = set()
        for solution, base in work:
            key = solution.fingerprint_key()
            if (
                key in seen
                or key in self._primed
                or self._cost_cache.peek(key) is not None
            ):
                continue
            if self._share_metrics and self.store.contains(
                "metrics", self._metrics_content(solution, key)
            ):
                # The serial accounting pass will answer this candidate
                # from the store; planning it here would waste the work.
                continue
            seen.add(key)
            jobs.append((key, solution, base))
        if not jobs:
            return
        if workers > 1 and len(jobs) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                plans = list(
                    pool.map(
                        lambda job: plan_evaluation(self, job[1], job[2]),
                        jobs,
                    )
                )
        else:
            plans = [
                plan_evaluation(self, solution, base)
                for _key, solution, base in jobs
            ]
        requests: list = []
        offsets: list[int] = []
        for plan in plans:
            offsets.append(len(requests))
            requests.extend(plan.requests)
        activities = batch_activities(requests) if requests else []
        for (key, solution, base), plan, lo in zip(jobs, plans, offsets):
            result = finish_evaluation(
                plan, activities[lo:lo + len(plan.requests)]
            )
            if self.validate_incremental:
                reference = evaluate_solution(self, solution, None)[0]
                _check_identical(result[0], reference)
            self._primed[key] = result

    def discard_primed(self) -> None:
        """Drop unconsumed speculative results.

        Called at the end of each pricing round: a stale primed entry
        would later be consumed with reuse counts from the wrong base,
        skewing the delta-hit telemetry away from the serial baseline.
        """
        self._primed.clear()

    def cost(self, solution: Solution, base: Breakdown | None = None) -> float:
        """Objective value of a solution (~1e9 when infeasible)."""
        return self.evaluate(solution, base).objective_value(self.objective)


def _check_identical(delta: Metrics, full: Metrics) -> None:
    """Raise unless a delta-priced evaluation equals the full one bitwise."""
    pairs = [
        ("area", delta.area, full.area),
        ("energy_per_sample", delta.energy_per_sample, full.energy_per_sample),
        ("power", delta.power, full.power),
        ("schedule_length", delta.schedule_length, full.schedule_length),
        ("feasible", delta.feasible, full.feasible),
        ("violation", delta.violation, full.violation),
        ("fu_energy", delta.report.fu_energy, full.report.fu_energy),
        (
            "register_energy",
            delta.report.register_energy,
            full.report.register_energy,
        ),
        ("mux_energy", delta.report.mux_energy, full.report.mux_energy),
        ("wire_energy", delta.report.wire_energy, full.report.wire_energy),
        ("extra_energy", delta.report.extra_energy, full.report.extra_energy),
        (
            "controller_energy",
            delta.report.controller_energy,
            full.report.controller_energy,
        ),
    ]
    for name, got, want in pairs:
        if got != want:
            raise SynthesisError(
                "incremental evaluation diverged from full evaluation: "
                f"{name} {got!r} != {want!r}"
            )
