"""Cost evaluation: area, trace-driven power, and the objective function.

Every tentative move is priced by fully re-evaluating the mutated
solution: rebuild the structural netlist (area side) and re-assemble
the per-resource stream interleavings (power side).  Gains are then
differences of these costs, exactly as in the paper's
``Gain(move, Obj)`` (Figure 4).

The evaluation context pins everything that stays fixed during one
iterative-improvement run: the module library, the simulated value
streams, the hierarchy path of the DFG being synthesized, the sampling
period and the objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..dfg.graph import NodeKind, Signal
from ..power.activity import interleaved_activity
from ..power.estimator import (
    ControllerUsage,
    FUUsage,
    InterconnectUsage,
    MuxUsage,
    PowerReport,
    RegisterUsage,
    estimate_power,
)
from ..power.simulate import SimTrace
from ..rtl.components import DatapathNetlist
from ..telemetry import Telemetry
from ..trace.recorder import TraceRecorder
from .caching import LRUCache
from .datapath_build import build_netlist, operand_port_map
from .solution import Solution

__all__ = [
    "Objective",
    "Metrics",
    "EvaluationContext",
    "area_of",
    "DEFAULT_COST_CACHE_SIZE",
]

#: Default bound on the fingerprint-keyed cost cache (entries, not bytes;
#: one entry holds a Metrics record).
DEFAULT_COST_CACHE_SIZE = 4096

Objective = Literal["area", "power"]

#: Weight of the secondary metric in the objective, used only to break
#: ties between otherwise equal candidates.
_TIEBREAK = 1e-6

#: Reference area at which the interconnect length factor equals one.
_AREA_REF = 300.0


#: Base cost assigned to infeasible solutions; the amount of constraint
#: violation is added on top so the optimizer can still rank infeasible
#: candidates and descend back into the feasible region (used when an
#: initial solution misses the budget by a small margin).
_INFEASIBLE_COST = 1e9


@dataclass
class Metrics:
    """Evaluated properties of one solution."""

    area: float
    energy_per_sample: float
    power: float
    schedule_length: int
    feasible: bool
    report: PowerReport
    violation: float = 0.0

    def objective_value(self, objective: Objective) -> float:
        """Scalar cost under ``objective``; infeasible points cost ~1e9."""
        if not self.feasible:
            return _INFEASIBLE_COST * (1.0 + self.violation)
        if objective == "power":
            return self.power + _TIEBREAK * self.area
        return self.area + _TIEBREAK * self.power


def area_of(solution: Solution, netlist: DatapathNetlist | None = None) -> float:
    """Total area: leaf netlist + complex-module instances."""
    if netlist is None:
        netlist = build_netlist(solution)
    total = netlist.area(solution.library)
    for inst in solution.instances.values():
        if inst.is_module:
            assert inst.module is not None
            total += inst.module.area(solution.library)
    return total


class EvaluationContext:
    """Fixed context for evaluating solutions of one DFG level."""

    def __init__(
        self,
        sim: SimTrace,
        path: tuple[str, ...],
        objective: Objective,
        telemetry: Telemetry | None = None,
        cache_size: int = DEFAULT_COST_CACHE_SIZE,
        recorder: TraceRecorder | None = None,
    ):
        self.sim = sim
        self.path = path
        self.objective = objective
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Optional trace recorder: when set, every evaluation emits one
        #: ``eval`` span with its cache provenance (``trace_evals``).
        self.recorder = recorder
        #: Memoized full evaluations, keyed by solution fingerprint.  The
        #: KL loop re-generates thousands of structurally identical
        #: candidates across steps and passes; pricing them is a lookup.
        self._cost_cache: LRUCache[tuple, Metrics] = LRUCache(cache_size)

    # ------------------------------------------------------------------
    def _operand_streams(
        self, solution: Solution, group: tuple[str, ...]
    ) -> list[np.ndarray]:
        """External operand streams of one execution, in port order."""
        ports = operand_port_map(solution, group)
        ordered: list[tuple[int, Signal]] = []
        inside = set(group)
        for node_id in group:
            for edge in solution.dfg.in_edges(node_id):
                if edge.src in inside:
                    continue
                ordered.append((ports[(node_id, edge.dst_port)], edge.signal))
        ordered.sort()
        return [self.sim.stream(self.path, signal) for _port, signal in ordered]

    def _execution_order(
        self, solution: Solution, inst_id: str
    ) -> list[tuple[str, ...]]:
        """Executions of an instance in scheduled (serialization) order."""
        sched = solution.schedule()
        order = sched.instance_order.get(inst_id, [])
        groups = []
        for task_id in order:
            groups.append(solution.task(task_id).nodes)
        return groups

    # ------------------------------------------------------------------
    def evaluate(self, solution: Solution) -> Metrics:
        """Area/power evaluation of *solution*, memoized by fingerprint.

        Two solutions with equal :meth:`~repro.synthesis.solution.
        Solution.fingerprint` evaluate identically, so the second one is
        answered from the cache without rebuilding the netlist or
        re-running trace-driven power estimation.
        """
        self.telemetry.evaluations += 1
        key = solution.fingerprint()
        cached = self._cost_cache.get(key)
        if cached is not None:
            self.telemetry.cache_hits += 1
            if self.recorder is not None:
                self.recorder.emit(
                    "eval", point=self.recorder.point, cached=True
                )
            return cached
        self.telemetry.cache_misses += 1
        t0 = self.recorder.clock() if self.recorder is not None else None
        metrics = self._evaluate_uncached(solution)
        if self.recorder is not None:
            self.recorder.emit(
                "eval",
                point=self.recorder.point,
                cached=False,
                dur_ns=self.recorder.elapsed_ns(t0),
            )
        self._cost_cache.put(key, metrics)
        return metrics

    def _evaluate_uncached(self, solution: Solution) -> Metrics:
        """Full evaluation: netlist rebuild + trace-driven estimation."""
        netlist = build_netlist(solution)
        area = area_of(solution, netlist)
        sched = solution.schedule()
        feasible = solution.is_feasible()
        violation = 0.0
        if not feasible:
            excess = max(0, sched.length - solution.deadline_cycles)
            violation = excess / max(solution.deadline_cycles, 1)
            violation += 0.1 * len(solution.register_conflicts())

        fanin = netlist.fanin_ports()

        def instance_width(inst_id: str) -> int:
            return max(
                (
                    solution.dfg.node(node_id).width
                    for group in solution.executions[inst_id]
                    for node_id in group
                ),
                default=16,
            )

        def glitches(inst_id: str, n_execs: int) -> int:
            """Spurious evaluations from input-mux switching on a shared
            unit: each multi-source port re-triggers the combinational
            logic once per select change (≈ executions − 1)."""
            if n_execs < 2:
                return 0
            multi_ports = sum(
                1 for (comp, _p), n in fanin.items() if comp == inst_id and n > 1
            )
            return multi_ports * (n_execs - 1)

        fu_usages: list[FUUsage] = []
        extra_energy = 0.0
        for inst_id, inst in solution.instances.items():
            groups = self._execution_order(solution, inst_id)
            if not groups:
                continue
            width = instance_width(inst_id)
            if inst.is_module:
                assert inst.module is not None
                streams_per_exec = [
                    self._operand_streams(solution, group) for group in groups
                ]
                from ..power.activity import operand_activity
                from ..power.estimator import GLITCH_FRACTION

                input_activity = operand_activity(streams_per_exec, width)
                for group in groups:
                    (node_id,) = group
                    behavior = solution.dfg.node(node_id).behavior
                    extra_energy += inst.module.energy_per_exec(
                        solution.vdd, input_activity, behavior=behavior
                    )
                # Shared modules glitch on their steering muxes too.
                extra_energy += (
                    glitches(inst_id, len(groups))
                    * GLITCH_FRACTION
                    * inst.module.energy_per_exec(solution.vdd, 0.5)
                    / max(len(groups), 1)
                )
            else:
                assert inst.cell is not None
                fu_usages.append(
                    FUUsage(
                        cell=inst.cell,
                        operand_streams_per_op=[
                            self._operand_streams(solution, group)
                            for group in groups
                        ],
                        width=width,
                        glitch_evaluations=glitches(inst_id, len(groups)),
                    )
                )

        reg_usages: list[RegisterUsage] = []
        for reg_id, signals in solution.reg_signals.items():
            ordered = sorted(signals, key=lambda s: sched.avail.get(s, 0))
            reg_width = max(
                (solution.dfg.node(src).width for src, _p in signals),
                default=16,
            )
            reg_usages.append(
                RegisterUsage(
                    cell=solution.library.register_cell,
                    value_streams=[
                        self.sim.stream(self.path, signal) for signal in ordered
                    ],
                    width=reg_width,
                    clocked_cycles=sched.length,
                )
            )

        # Reuse the fanin map computed above; a same-named loop variable
        # here used to shadow the dict captured by the glitches() closure.
        mux_usages: list[MuxUsage] = []
        for (_dst, _port), n_srcs in fanin.items():
            if n_srcs > 1:
                mux_usages.append(
                    MuxUsage(
                        cell=solution.library.mux_cell,
                        n_inputs=n_srcs,
                        accesses_per_sample=n_srcs,
                    )
                )

        # Average wire length grows with the square root of circuit area;
        # _AREA_REF pins the factor to 1.0 for a mid-size datapath.
        interconnect = InterconnectUsage(
            n_connections=netlist.n_connections(),
            length_factor=math.sqrt(max(area, 1.0) / _AREA_REF),
        )

        # Controller estimate: one start per execution, one load per
        # registered value, one select per mux leg (see the paper's
        # FSM-controller output; SIS-synthesized in the original flow).
        n_starts = sum(len(groups) for groups in solution.executions.values())
        controller = ControllerUsage(
            n_states=max(sched.length, 1),
            n_control_signals=(
                n_starts + len(solution.reg_signals) + netlist.mux_legs()
            ),
        )
        area += controller.area()

        report = estimate_power(
            fus=fu_usages,
            registers=reg_usages,
            muxes=mux_usages,
            interconnect=interconnect,
            vdd=solution.vdd,
            sampling_period_ns=solution.sampling_ns,
            extra_energy=extra_energy,
            controller=controller,
        )
        return Metrics(
            area=area,
            energy_per_sample=report.total_energy,
            power=report.power,
            schedule_length=sched.length,
            feasible=feasible,
            report=report,
            violation=violation,
        )

    def cost(self, solution: Solution) -> float:
        """Objective value of a solution (∞ when infeasible)."""
        return self.evaluate(solution).objective_value(self.objective)
