"""Set-at-a-time candidate discovery over an in-memory relational view.

The legacy generators in :mod:`repro.synthesis.moves` discover
candidates with nested per-pair Python loops — FU sharing is O(n²) with
a library rescan per pair — and eagerly ``Solution.clone()`` every
candidate before :func:`~repro.synthesis.moves.prune_candidates` sees
it.  This module replaces the *discovery* step with relational algebra:
each KL step projects the current :class:`~repro.synthesis.solution.
Solution` into in-memory SQL tables (instances, capability masks,
register lifetimes) and regenerates whole candidate families with one
batched join each, emitting **lazy** :class:`~repro.synthesis.moves.
Candidate` descriptors whose clones are built only if the candidate
survives pruning and reaches pricing.

Backend choice — SQLite (stdlib ``sqlite3``) over indexed numpy
structured arrays: the joins here are small but *irregular* (a
capability anti-join with a correlated min-area subquery, an interval
anti-join with an existential negation), which SQL expresses directly
and evaluates with its own index machinery, whereas numpy would need
hand-rolled broadcasting for each shape.  It also mirrors the
``emap-sqlite`` design ROADMAP item 2 names — netlist-as-relational-
tables with ``INSERT OR IGNORE … SELECT`` batch rewrite steps — which
:mod:`repro.synthesis.saturate` reuses for move-A equivalence
saturation.  Connections are ``:memory:`` and thread-local; a view
rebuilds only the tables a query family actually touches.

Bit-identity contract
---------------------
For every family this module takes over (``A-cell``, ``C-share-fu``,
``C-share-reg``, ``D-split-fu``, ``D-split-reg``) the emitted candidate
*multiset* — ``(kind, touched, description)`` triples and therefore
solution fingerprints — equals the legacy generators' output exactly:
each ``ORDER BY`` reproduces the corresponding Python sort (including
stable-sort tie-breaks via original positions) and each ``LIMIT``
reproduces the corresponding cap.  Since both pruning and
:func:`~repro.synthesis.improve._best` are order-independent given the
deterministic :func:`~repro.synthesis.moves.candidate_order_key`
tie-break, equal multisets imply byte-identical search trajectories —
which is what lets ``--no-relational`` serve as a bit-exact fallback.
The remaining families (module replacement/sharing/embedding, move B,
chain formation/dissolution) are bounded by the library or the DFG
rather than the solution size and stay on the shared Python helpers in
both modes.

Every lazy candidate carries a *precomputed* fingerprint, derived by
editing the base solution's cached fingerprint tuple instead of
building the clone; the test suite asserts descriptor fingerprints
equal materialized ones for every family.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Callable, Iterable

from ..dfg.ops import Operation
from ..errors import SynthesisError
from ..library.cells import LibraryCell
from .caching import HashedKey
from .context import SynthesisEnv
from .moves import Candidate, register_lifetimes
from .solution import Solution

__all__ = ["RelationalView", "OP_BIT", "op_mask"]

#: Stable bit assignment for operation capability masks: a cell (or an
#: instance's required-op set) becomes one integer, and "cell supports
#: every required op" becomes ``(required & ~capable) = 0`` — a single
#: arithmetic predicate SQLite evaluates inside the join.
OP_BIT: dict[Operation, int] = {op: 1 << i for i, op in enumerate(Operation)}


def op_mask(ops: Iterable[Operation]) -> int:
    """Fold a set of operations into its capability bitmask."""
    mask = 0
    for op in ops:
        mask |= OP_BIT[op]
    return mask


_LOCAL = threading.local()


#: The fixed schema, created once per connection.  Tables are cleared
#: with ``DELETE FROM`` between views, never dropped: a ``DROP TABLE``
#: is a schema change that invalidates every statement in the
#: connection's prepared-statement cache, forcing a re-parse and
#: re-plan of each join on each KL step — measurable fixed cost on
#: small designs where discovery is otherwise microseconds.
_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS cells (pos INTEGER PRIMARY KEY, "
    "name TEXT, area REAL, opmask INTEGER, chain INTEGER)",
    "CREATE TABLE IF NOT EXISTS inst (pos INTEGER PRIMARY KEY, id TEXT, "
    "cellpos INTEGER, cellname TEXT, area REAL, cellmask INTEGER, "
    "cellchain INTEGER, opmask INTEGER, chain INTEGER)",
    "CREATE TABLE IF NOT EXISTS reg (pos INTEGER PRIMARY KEY, id TEXT, "
    "ok INTEGER)",
    "CREATE TABLE IF NOT EXISTS life (reg INTEGER, birth INTEGER, "
    "death INTEGER)",
    # Materialized cross-overlap pairs: the register-sharing anti-join
    # probes this primary key instead of re-evaluating a correlated
    # interval join per register pair.
    "CREATE TABLE IF NOT EXISTS ovl (ra INTEGER, rb INTEGER, "
    "PRIMARY KEY (ra, rb)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS tgt (pos INTEGER PRIMARY KEY, id TEXT, "
    "cellname TEXT, opmask INTEGER, chain INTEGER)",
    "CREATE TABLE IF NOT EXISTS allinst (pos INTEGER PRIMARY KEY, "
    "id TEXT, n_execs INTEGER)",
    "CREATE TABLE IF NOT EXISTS allreg (pos INTEGER PRIMARY KEY, "
    "id TEXT, n_signals INTEGER)",
)


def _connection() -> sqlite3.Connection:
    """The thread's reusable ``:memory:`` connection.

    One connection per thread amortizes connection setup and statement
    compilation across the many short-lived views of a KL search; table
    contents are keyed by view identity (see :meth:`RelationalView.
    _state`) so a nested view — move-B resynthesis runs a whole nested
    KL search mid-step — safely clobbers and later rebuilds the outer
    view's tables.
    """
    conn = getattr(_LOCAL, "conn", None)
    if conn is None:
        conn = sqlite3.connect(":memory:")
        # The view tables are tiny (tens of rows); a transient automatic
        # index costs more to build per query than the nested-loop scan
        # it replaces, and steering the planner to PK order lets the
        # pair queries satisfy ``ORDER BY pos`` without a sort pass.
        conn.execute("PRAGMA automatic_index = OFF")
        for statement in _SCHEMA:
            conn.execute(statement)
        _LOCAL.conn = conn
    return conn


class RelationalView:
    """Relational projection of one solution for one discovery round.

    Built once per KL step (the solution must not mutate while the view
    is alive — guarded by the solution's mutation epoch) and queried
    once per candidate family.  Tables are populated lazily: a round
    that never reaches register sharing never pays for lifetimes.
    """

    def __init__(
        self, env: SynthesisEnv, solution: Solution, locked: frozenset[str]
    ):
        self._env = env
        self._solution = solution
        self._locked = locked
        self._epoch = solution.epoch
        self._conn = _connection()
        self._on_materialize = env.telemetry.count_move_materialized
        base_fp = solution.fingerprint()
        self._fp_head = base_fp[:5]
        self._inst_entries: tuple = base_fp[5]
        self._reg_entries: tuple = base_fp[6]
        self._inst_pos = {e[0]: i for i, e in enumerate(self._inst_entries)}
        self._reg_pos = {e[0]: i for i, e in enumerate(self._reg_entries)}
        #: Everything the table contents are a pure function of: the
        #: solution fingerprint (DFG identity, clocks, bindings,
        #: executions, register contents), the locked set, and the
        #: library's cell objects.  Two views with equal keys project
        #: identical tables, so they share them (see :meth:`_state`).
        self._key = (
            self._fp_head,
            self._inst_entries,
            self._reg_entries,
            locked,
            tuple(map(id, env.library.cells())),
        )
        #: Merge-target decode list; filled by :meth:`_ensure_simple`.
        self._cell_lookup: list[LibraryCell] = []
        #: Row count of the ``inst`` table; filled by
        #: :meth:`_ensure_simple`, compared against target-list sizes.
        self._n_simple = -1

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _state(self) -> dict:
        """The connection's table cache, scoped to this view's identity.

        Keyed by :attr:`_key` rather than the view object: consecutive
        views over an unchanged solution — KL steps whose best move was
        rejected, or repeated discovery in benchmarks — find every
        table (and the Python-side decode state stashed alongside)
        already populated and skip the rebuild entirely.  A view with a
        different key resets the cache, which also covers the nested
        move-B resynthesis view clobbering the outer step's tables.
        """
        state = getattr(_LOCAL, "view_state", None)
        if state is None or state["key"] != self._key:
            state = {"key": self._key, "built": set()}
            _LOCAL.view_state = state
        return state

    def _check_epoch(self) -> None:
        if self._solution.epoch != self._epoch:
            raise SynthesisError(
                "relational candidate materialized after its base solution "
                "mutated; discovery views are single-step"
            )

    def _fingerprint(
        self, insts: tuple | None = None, regs: tuple | None = None
    ) -> HashedKey:
        """Fingerprint of the base solution with one component replaced."""
        return HashedKey(
            self._fp_head
            + (
                insts if insts is not None else self._inst_entries,
                regs if regs is not None else self._reg_entries,
            )
        )

    def _ensure_cells(self) -> list[LibraryCell]:
        """``cells(pos, name, area, opmask, chain)`` in library order.

        The library is immutable for the lifetime of a synthesis run,
        so the table survives across views on the same connection
        independently of the per-solution cache: it reloads only when a
        view binds a *different* library (nested resynthesis shares the
        env, so in practice once per thread).
        """
        cells = self._env.library.cells()
        key = tuple(map(id, cells))
        if getattr(_LOCAL, "cells_from", None) == key:
            return cells
        cur = self._conn
        cur.execute("DELETE FROM cells")
        cur.executemany(
            "INSERT INTO cells VALUES (?, ?, ?, ?, ?)",
            [
                (pos, c.name, c.area, op_mask(c.ops), c.chain_length)
                for pos, c in enumerate(cells)
            ],
        )
        _LOCAL.cells_from = key
        return cells

    def _instance_requirements(self, inst_id: str) -> tuple[int, int]:
        """(required-op mask, required chain length) of an instance."""
        solution = self._solution
        mask = 0
        chain = 1
        for group in solution.executions[inst_id]:
            if len(group) > chain:
                chain = len(group)
            for node_id in group:
                op = solution.dfg.node(node_id).op
                if op is not None:
                    mask |= OP_BIT[op]
        return mask, chain

    def _ensure_simple(self) -> None:
        """``inst``: unlocked simple instances with executions.

        ``pos`` is the instance's rank in binding insertion order (the
        legacy ``_unlocked_simple`` enumeration order); capability data
        of both the requirement side (``opmask``/``chain``) and the
        currently bound cell (``cellmask``/``cellchain``) is
        denormalized in so the pair join never leaves the table.
        """
        state = self._state()
        if "inst" in state["built"]:
            self._cell_lookup = state["cell_lookup"]
            self._n_simple = state["n_simple"]
            return
        # Decode table for merge targets: library cells by position,
        # extended with any bound cell the library does not list (the
        # legacy path keeps such a cell object directly; positions past
        # the library never enter the SQL ``cells`` table, so the
        # min-area fallback subquery still scans exactly the library).
        lookup = list(self._ensure_cells())
        cell_pos = {c.name: i for i, c in enumerate(lookup)}
        solution = self._solution
        rows = []
        pos = 0
        for inst_id, inst in solution.instances.items():
            if (
                inst.is_module
                or inst_id in self._locked
                or not solution.executions[inst_id]
            ):
                continue
            assert inst.cell is not None
            cellpos = cell_pos.get(inst.cell.name)
            if cellpos is None:
                cellpos = len(lookup)
                cell_pos[inst.cell.name] = cellpos
                lookup.append(inst.cell)
            mask, chain = self._instance_requirements(inst_id)
            rows.append(
                (
                    pos,
                    inst_id,
                    cellpos,
                    inst.cell.name,
                    inst.cell.area,
                    op_mask(inst.cell.ops),
                    inst.cell.chain_length,
                    mask,
                    chain,
                )
            )
            pos += 1
        self._cell_lookup = state["cell_lookup"] = lookup
        self._n_simple = state["n_simple"] = len(rows)
        cur = self._conn
        cur.execute("DELETE FROM inst")
        cur.executemany(
            "INSERT INTO inst VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows
        )
        state["built"].add("inst")

    def _ensure_registers(self) -> None:
        """``reg``/``life``: unlocked registers and lifetime intervals.

        ``reg.pos`` ranks registers in the legacy left-edge order;
        ``reg.ok`` precomputes whether the register's *own* intervals
        are already pairwise disjoint (the merged-interval check the
        legacy loop runs degenerates to cross-register overlap exactly
        when both sides are self-consistent).  ``life`` holds one row
        per (register, interval); ``ovl`` materializes the overlapping
        register pairs once — half-open semantics, ``[b1, d1)`` and
        ``[b2, d2)`` overlap iff ``b1 < d2 and b2 < d1`` — so the
        sharing query probes a primary key per pair instead of
        re-running a correlated interval join.
        """
        state = self._state()
        if "reg" in state["built"]:
            return
        solution = self._solution
        regs = [r for r in solution.reg_signals if r not in self._locked]
        lifetimes = register_lifetimes(solution, regs)
        regs.sort(key=lambda r: lifetimes[r][-1][1])
        reg_rows = []
        life_rows = []
        for pos, reg_id in enumerate(regs):
            intervals = lifetimes[reg_id]
            ok = all(
                b2 >= d1
                for (_b1, d1), (b2, _d2) in zip(intervals, intervals[1:])
            )
            reg_rows.append((pos, reg_id, 1 if ok else 0))
            for birth, death in intervals:
                life_rows.append((pos, birth, death))
        cur = self._conn
        cur.execute("DELETE FROM reg")
        cur.execute("DELETE FROM life")
        cur.execute("DELETE FROM ovl")
        cur.executemany("INSERT INTO reg VALUES (?, ?, ?)", reg_rows)
        cur.executemany("INSERT INTO life VALUES (?, ?, ?)", life_rows)
        cur.execute(
            "INSERT OR IGNORE INTO ovl SELECT la.reg, lb.reg "
            "FROM life la JOIN life lb ON lb.reg > la.reg "
            "AND la.birth < lb.death AND lb.birth < la.death"
        )
        state["built"].add("reg")

    # ------------------------------------------------------------------
    # Move A: cell replacement
    # ------------------------------------------------------------------
    def cell_replacements(self, targets: list[str]) -> list[Candidate]:
        """``A-cell`` swaps for all *targets* via one capability join.

        The legacy path rescans ``library.cells()`` per target; here a
        single join against ``cells`` yields every (target, fitting
        cell) pair at once.  When *targets* covers every unlocked
        simple instance — the common case, ``max_ab_targets`` rarely
        bites — the join runs straight off the ``inst`` table; a capped
        subset stages into ``tgt`` first.  Emission order differs
        between the two shapes, which is immaterial: pruning and
        ``_best`` are order-independent, only the multiset counts.
        """
        self._ensure_simple()
        cells = self._env.library.cells()
        solution = self._solution
        cur = self._conn
        if len(targets) == self._n_simple:
            pairs = cur.execute(
                "SELECT t.id, t.cellname, c.pos FROM inst t JOIN cells c "
                "ON c.name <> t.cellname "
                "AND (t.opmask & ~c.opmask) = 0 "
                "AND c.chain >= t.chain "
                "ORDER BY t.pos, c.pos"
            ).fetchall()
        else:
            cur.execute("DELETE FROM tgt")
            rows = []
            for pos, inst_id in enumerate(targets):
                inst = solution.instances[inst_id]
                assert inst.cell is not None
                mask, chain = self._instance_requirements(inst_id)
                rows.append((pos, inst_id, inst.cell.name, mask, chain))
            cur.executemany("INSERT INTO tgt VALUES (?, ?, ?, ?, ?)", rows)
            pairs = cur.execute(
                "SELECT t.id, t.cellname, c.pos FROM tgt t JOIN cells c "
                "ON c.name <> t.cellname "
                "AND (t.opmask & ~c.opmask) = 0 "
                "AND c.chain >= t.chain "
                "ORDER BY t.pos, c.pos"
            ).fetchall()

        base = solution
        out: list[Candidate] = []
        for inst_id, old_name, cell_idx in pairs:
            cell = cells[cell_idx]
            entries = list(self._inst_entries)
            idx = self._inst_pos[inst_id]
            e = entries[idx]
            entries[idx] = (e[0], cell.name, False, e[3])
            out.append(
                Candidate(
                    kind="A-cell",
                    description=f"{inst_id}: {old_name} -> {cell.name}",
                    touched=frozenset({inst_id}),
                    footprint=frozenset({inst_id}),
                    build=self._build_cell_swap(base, inst_id, cell),
                    fingerprint=self._fingerprint(insts=tuple(entries)),
                    replacement_cell=cell,
                    on_materialize=self._on_materialize,
                )
            )
        return out

    def _build_cell_swap(
        self, base: Solution, inst_id: str, cell: LibraryCell
    ) -> Callable[[], Solution]:
        def build() -> Solution:
            self._check_epoch()
            clone = base.clone()
            clone.set_cell(inst_id, cell)
            return clone

        return build

    # ------------------------------------------------------------------
    # Move C: sharing
    # ------------------------------------------------------------------
    def fu_sharing(self) -> list[Candidate]:
        """``C-share-fu``: all mergeable FU pairs via one self-join.

        The pair join resolves the merge target inline — keep a's cell
        if it fits the union of requirements, else b's, else the
        min-area fitting library cell (first by library position on
        area ties, matching ``min()``) — and ranks pairs by saved area
        descending with enumeration order as the stable tie-break,
        exactly the legacy sort.
        """
        self._ensure_simple()
        cells = self._cell_lookup
        cap = self._env.config.max_share_pairs
        pairs = self._conn.execute(
            "SELECT ida, idb, target FROM ("
            " SELECT a.pos AS pa, b.pos AS pb, a.id AS ida, b.id AS idb,"
            "  MIN(a.area, b.area) AS saved,"
            "  CASE"
            "   WHEN ((a.opmask | b.opmask) & ~a.cellmask) = 0"
            "    AND a.cellchain >= MAX(a.chain, b.chain) THEN a.cellpos"
            "   WHEN ((a.opmask | b.opmask) & ~b.cellmask) = 0"
            "    AND b.cellchain >= MAX(a.chain, b.chain) THEN b.cellpos"
            "   ELSE ("
            "    SELECT c.pos FROM cells c"
            "    WHERE ((a.opmask | b.opmask) & ~c.opmask) = 0"
            "     AND c.chain >= MAX(a.chain, b.chain)"
            "    ORDER BY c.area, c.pos LIMIT 1)"
            "  END AS target"
            " FROM inst a JOIN inst b ON b.pos > a.pos"
            ") WHERE target IS NOT NULL "
            "ORDER BY saved DESC, pa, pb LIMIT ?",
            (cap,),
        ).fetchall()

        base = self._solution
        out: list[Candidate] = []
        for a, b, cell_idx in pairs:
            target = cells[cell_idx]
            entries = list(self._inst_entries)
            ia, ib = self._inst_pos[a], self._inst_pos[b]
            ea, eb = entries[ia], entries[ib]
            entries[ia] = (a, target.name, False, ea[3] + eb[3])
            del entries[ib]
            out.append(
                Candidate(
                    kind="C-share-fu",
                    description=f"share: {b} -> {a} ({target.name})",
                    touched=frozenset({a, b}),
                    footprint=frozenset({a, b}),
                    build=self._build_fu_share(base, a, b, target),
                    fingerprint=self._fingerprint(insts=tuple(entries)),
                    on_materialize=self._on_materialize,
                )
            )
        return out

    def _build_fu_share(
        self, base: Solution, a: str, b: str, target: LibraryCell
    ) -> Callable[[], Solution]:
        def build() -> Solution:
            self._check_epoch()
            clone = base.clone()
            cell_a = clone.instances[a].cell
            assert cell_a is not None
            if cell_a.name != target.name:
                clone.set_cell(a, target)
            clone.merge_instances(a, b)
            return clone

        return build

    def register_sharing(self) -> list[Candidate]:
        """``C-share-reg``: disjoint register pairs via an anti-join.

        All pairs, not a 4-wide window: the overlap test is an
        anti-join against the materialized ``ovl`` pair table (built
        once per solution in :meth:`_ensure_registers`), with the
        legacy's first-``cap``-pairs-in-rank-order truncation expressed
        as ``LIMIT``.
        """
        self._ensure_registers()
        cap = self._env.config.max_share_pairs // 2
        pairs = self._conn.execute(
            "SELECT a.id, b.id FROM reg a JOIN reg b ON b.pos > a.pos "
            "WHERE a.ok = 1 AND b.ok = 1 AND NOT EXISTS ("
            " SELECT 1 FROM ovl o WHERE o.ra = a.pos AND o.rb = b.pos) "
            "ORDER BY a.pos, b.pos LIMIT ?",
            (cap,),
        ).fetchall()

        base = self._solution
        out: list[Candidate] = []
        for a, b in pairs:
            regs = list(self._reg_entries)
            ra, rb = self._reg_pos[a], self._reg_pos[b]
            regs[ra] = (a, regs[ra][1] + regs[rb][1])
            del regs[rb]
            out.append(
                Candidate(
                    kind="C-share-reg",
                    description=f"share registers: {b} -> {a}",
                    touched=frozenset({a, b}),
                    footprint=frozenset({a, b}),
                    build=self._build_reg_share(base, a, b),
                    fingerprint=self._fingerprint(regs=tuple(regs)),
                    on_materialize=self._on_materialize,
                )
            )
        return out

    def _build_reg_share(
        self, base: Solution, a: str, b: str
    ) -> Callable[[], Solution]:
        def build() -> Solution:
            self._check_epoch()
            # Register moves leave tasks and schedule untouched, so the
            # clone carries the parent's timing caches (no rescheduling
            # when the candidate is priced).
            clone = base.clone(carry_timing=True)
            clone.merge_registers(a, b)
            return clone

        return build

    # ------------------------------------------------------------------
    # Move D: splitting
    # ------------------------------------------------------------------
    def fu_splits(self) -> list[Candidate]:
        """``D-split-fu``: busiest shared instances, halved.

        One ordered scan (executions descending, binding order as the
        stable tie-break) replaces the legacy sort + slice; the twin's
        id is precomputed with :meth:`Solution.peek_fresh_id` so the
        descriptor fingerprint matches the clone that would be built.
        """
        self._ensure_allinst()
        cap = self._env.config.max_split_candidates
        rows = self._conn.execute(
            "SELECT id FROM allinst WHERE n_execs >= 2 "
            "ORDER BY n_execs DESC, pos LIMIT ?",
            (cap,),
        ).fetchall()

        base = self._solution
        twin = base.peek_fresh_id("u")
        out: list[Candidate] = []
        for (inst_id,) in rows:
            execs = base.executions[inst_id]
            half = max(1, len(execs) // 2)
            kept, moved = tuple(execs[:half]), tuple(execs[half:])
            entries = list(self._inst_entries)
            idx = self._inst_pos[inst_id]
            e = entries[idx]
            entries[idx] = (inst_id, e[1], e[2], kept)
            entries.append((twin, e[1], e[2], moved))
            out.append(
                Candidate(
                    kind="D-split-fu",
                    description=(
                        f"split {inst_id} ({len(execs)} execs) -> {twin}"
                    ),
                    touched=frozenset({inst_id, twin}),
                    footprint=frozenset({inst_id, twin}),
                    build=self._build_fu_split(base, inst_id, moved),
                    fingerprint=self._fingerprint(insts=tuple(entries)),
                    on_materialize=self._on_materialize,
                )
            )
        return out

    def _build_fu_split(
        self, base: Solution, inst_id: str, moved: tuple
    ) -> Callable[[], Solution]:
        def build() -> Solution:
            self._check_epoch()
            clone = base.clone()
            clone.split_instance(inst_id, list(moved))
            return clone

        return build

    def register_splits(self) -> list[Candidate]:
        """``D-split-reg``: shared registers, halved (binding order)."""
        self._ensure_allinst()
        cap = self._env.config.max_split_candidates // 2
        rows = self._conn.execute(
            "SELECT id FROM allreg WHERE n_signals >= 2 "
            "ORDER BY pos LIMIT ?",
            (cap,),
        ).fetchall()

        base = self._solution
        twin = base.peek_fresh_id("r")
        out: list[Candidate] = []
        for (reg_id,) in rows:
            signals = base.reg_signals[reg_id]
            half = len(signals) // 2
            kept, moved = tuple(signals[:half]), tuple(signals[half:])
            regs = list(self._reg_entries)
            idx = self._reg_pos[reg_id]
            regs[idx] = (reg_id, kept)
            regs.append((twin, moved))
            out.append(
                Candidate(
                    kind="D-split-reg",
                    description=f"split register {reg_id} -> {twin}",
                    touched=frozenset({reg_id, twin}),
                    footprint=frozenset({reg_id, twin}),
                    build=self._build_reg_split(base, reg_id, moved),
                    fingerprint=self._fingerprint(regs=tuple(regs)),
                    on_materialize=self._on_materialize,
                )
            )
        return out

    def _build_reg_split(
        self, base: Solution, reg_id: str, moved: tuple
    ) -> Callable[[], Solution]:
        def build() -> Solution:
            self._check_epoch()
            clone = base.clone(carry_timing=True)
            clone.split_register(reg_id, list(moved))
            return clone

        return build

    def _ensure_allinst(self) -> None:
        """``allinst``/``allreg``: every unlocked sharable resource.

        Unlike ``inst``, module instances are included — the split
        family un-shares merged modules too.  ``pos`` preserves binding
        insertion order for the stable sorts.
        """
        state = self._state()
        if "allinst" in state["built"]:
            return
        solution = self._solution
        inst_rows = [
            (pos, inst_id, len(solution.executions[inst_id]))
            for pos, inst_id in enumerate(solution.instances)
            if inst_id not in self._locked
        ]
        reg_rows = [
            (pos, reg_id, len(signals))
            for pos, (reg_id, signals) in enumerate(solution.reg_signals.items())
            if reg_id not in self._locked
        ]
        cur = self._conn
        cur.execute("DELETE FROM allinst")
        cur.execute("DELETE FROM allreg")
        cur.executemany("INSERT INTO allinst VALUES (?, ?, ?)", inst_rows)
        cur.executemany("INSERT INTO allreg VALUES (?, ?, ?)", reg_rows)
        state["built"].add("allinst")
