"""Tiered, content-addressed store for memoized synthesis results.

One :class:`SynthesisStore` replaces the engine's previously separate
memo dictionaries (the characterization module cache, the move-B
resynthesis memo, and schedule memoization) with three tiers:

* **point tier** — per-namespace :class:`~repro.synthesis.caching.
  LRUCache` instances holding *live* objects, keyed exactly like the
  legacy memos and cleared between operating points
  (:meth:`SynthesisStore.reset_point`).  This tier preserves the legacy
  caches' semantics bit for bit.
* **run tier** — one LRU of pickled blobs addressed by ``(namespace,
  content digest)``.  Content digests are built from canonical content
  keys (:mod:`repro.dfg.canonical`), never from counter-generated
  names, so the tier survives point resets and answers across operating
  points.  Loads unpickle a fresh copy, which is what keeps cached
  values immune to later in-place mutation (e.g. ``ensure_behavior``
  adding behaviors to a module).
* **persistent tier** — an optional SQLite database (``--cache-dir``)
  with the same addressing, shared across runs and across worker
  processes.  Writes are ``INSERT OR IGNORE``: content-addressed
  entries are immutable, so concurrent writers at ``n_workers > 1``
  can only race to store the same bytes.  For multi-tenant keyspaces
  (the job server's shared cache) the tier can be **sharded** across
  several database files by digest prefix, spreading writer contention
  and letting eviction run shard by shard; see :meth:`SynthesisStore.
  detect_shards` for how readers discover an existing layout.

The lookup protocol is two-step to mirror the legacy control flow
exactly: :meth:`get` probes only the point tier (the legacy fast path,
requiring no content key), and :meth:`fetch` — called only after a
point miss — builds on the caller-supplied content key to probe the run
and persistent tiers.  :data:`MISSING` distinguishes "absent" from a
stored ``None`` (the resynthesis memo stores ``None`` for infeasible
budgets).

Two namespaces hold **mutable aggregates** rather than immutable
results: ``priors`` (trace-mined move statistics, see
:mod:`repro.search.priors`) and ``portfolio`` (cross-pollinated
best-so-far solutions, see :mod:`repro.search.portfolio`).  They use
the content-only :meth:`load`/:meth:`replace` pair — replace-semantics
writes, no point tier — and are only ever read by the search policies
that opt into them, so populating them cannot perturb a default run's
lookup sequence.

Per-tier hit/miss/eviction counters are written into the bound
:class:`~repro.telemetry.Telemetry` (``store_hits``/``store_misses``/
``store_evictions``, keyed ``"{tier}.{namespace}"``) and surface in
``--stats`` and trace reports.
"""

from __future__ import annotations

import hashlib
import pickle
import re
import sqlite3
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from ..dfg.canonical import (
    config_signature,
    design_fingerprint,
    library_signature,
    stream_digest,
)
from .caching import LRUCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfg.hierarchy import Design
    from ..library.library import ModuleLibrary
    from ..rtl.module import RTLModule
    from .context import SynthesisConfig
    from .solution import Solution

__all__ = [
    "MISSING",
    "STORE_SCHEMA_VERSION",
    "SynthesisStore",
    "context_signature",
    "module_content_signature",
    "sim_level_digest",
    "solution_pricing_signature",
    "solution_signature",
]

#: Bumped whenever the serialized value format or the content-key
#: construction changes incompatibly; a persistent database recorded
#: under a different version is dropped on open.
STORE_SCHEMA_VERSION = 2

#: Sentinel distinguishing "not stored" from a stored ``None``.
MISSING = object()

#: Database filename inside ``--cache-dir`` (single-shard layout).
_DB_NAME = "synthesis_store.sqlite"

#: Shard filename pattern for ``shards > 1`` layouts.
_SHARD_NAME = "synthesis_store.shard{index:02d}.sqlite"
_SHARD_RE = re.compile(r"synthesis_store\.shard(\d{2})\.sqlite$")

#: Retries for transient ``database is locked`` write failures; WAL
#: allows concurrent readers but serializes writers, and a busy server
#: fleet can exceed even a generous busy timeout under checkpointing.
_WRITE_RETRIES = 5
_WRITE_RETRY_SLEEP_S = 0.02


def digest_content(content: tuple) -> str:
    """SHA-256 hex digest of a content-key tuple.

    Content keys are tuples of str/int/float/bool/None (and nested
    tuples thereof), whose ``repr`` is deterministic across processes
    and Python sessions, so the digest is a stable cross-run address.
    """
    return hashlib.sha256(repr(content).encode("utf-8")).hexdigest()


def context_signature(library: "ModuleLibrary", config: "SynthesisConfig") -> str:
    """Invalidation signature shared by every content key of one env.

    Combines the store schema version with the library and
    configuration signatures: a cached sub-result is only reusable when
    the cells/modules pricing it and the search knobs shaping it are
    unchanged.
    """
    return digest_content(
        (
            "ctx",
            STORE_SCHEMA_VERSION,
            library_signature(library),
            config_signature(config),
        )
    )


def solution_signature(solution: "Solution", design: "Design") -> tuple:
    """Name-free structural identity of a solution.

    Unlike :meth:`Solution.fingerprint
    <repro.synthesis.solution.Solution.fingerprint>` (which embeds
    ``id(dfg)`` and module *names*), this signature identifies module
    instances by their recursive content
    (:func:`module_content_signature`) and the DFG by its
    design-resolved fingerprint, so two structurally identical solutions
    built under different generated-name sequences compare equal.
    """
    return (
        design_fingerprint(design, solution.dfg),
        solution.clk_ns,
        solution.vdd,
        solution.sampling_ns,
        tuple(
            (
                inst_id,
                module_content_signature(inst.module, design)
                if inst.module is not None
                else ("cell", inst.cell.name),
                tuple(solution.executions[inst_id]),
            )
            for inst_id, inst in solution.instances.items()
        ),
        tuple(
            (reg_id, tuple(signals))
            for reg_id, signals in solution.reg_signals.items()
        ),
    )


def module_content_signature(module: "RTLModule", design: "Design") -> tuple:
    """Content identity of an RTL module, independent of generated names.

    Synthesized modules (those carrying a
    :class:`~repro.synthesis.modulegen.ModuleInternal`) are identified
    by their internal solution's :func:`solution_signature`; library
    modules — whose netlists are externally supplied and whose names
    are user-chosen identities covered by the library signature — by
    name.  Memoized on the module object: internal solutions are frozen
    after characterization (moves clone before mutating), and the
    signature deliberately excludes ``_impls`` so later
    ``ensure_behavior`` aliasing cannot stale it.
    """
    cached = getattr(module, "_store_content_sig", None)
    if cached is not None:
        return cached
    internal = getattr(module, "internal", None)
    solution = getattr(internal, "solution", None)
    if solution is not None:
        sig = ("syn", solution_signature(solution, design))
    else:
        sig = ("lib", module.name)
    module._store_content_sig = sig  # type: ignore[attr-defined]
    return sig


def module_pricing_signature(module: "RTLModule", design: "Design") -> tuple:
    """Identity of a module as the *evaluator* prices it.

    :func:`module_content_signature` pins structure but deliberately
    ignores the characterized timing/energy numbers — yet those numbers
    are exactly what pricing reads, and a structurally identical module
    characterized under different input streams carries different ones.
    Not memoized: RTL embedding adds behaviors in place.
    """
    return (
        module_content_signature(module, design),
        tuple(
            sorted(
                (
                    (behavior, impl.profile, impl.cap_internal)
                    for behavior, impl in module._impls.items()
                ),
                key=lambda entry: entry[0],
            )
        ),
    )


def solution_pricing_signature(solution: "Solution", design: "Design") -> tuple:
    """Everything area/power evaluation reads from a solution.

    Extends :func:`solution_signature`'s structural identity with the
    deadline and the per-instance characterization numbers — together
    with the operand streams (:func:`sim_level_digest`) and the
    library/config (the store signature), this covers the full input
    domain of :func:`~repro.synthesis.incremental.evaluate_solution`.
    """
    return (
        solution_signature(solution, design),
        solution.deadline_cycles,
        tuple(
            (inst_id, module_pricing_signature(inst.module, design))
            for inst_id, inst in solution.instances.items()
            if inst.module is not None
        ),
    )


def sim_level_digest(sim, path: tuple = ()) -> str:
    """Digest of every value stream at one hierarchy level of a trace.

    Evaluation reads operand streams only at the context's own path, so
    this digest pins the trace-driven side of power estimation.
    Memoized on the trace object: a :class:`~repro.power.simulate.
    SimTrace` is fully populated at construction and never mutated
    afterwards.
    """
    cache = getattr(sim, "_level_digests", None)
    if cache is None:
        cache = sim._level_digests = {}
    digest = cache.get(path)
    if digest is None:
        pairs = sim.items_at(path)
        digest = digest_content(
            (
                tuple(signal for signal, _stream in pairs),
                stream_digest(stream for _signal, stream in pairs),
            )
        )
        cache[path] = digest
    return digest


class SynthesisStore:
    """Point / run / persistent tiers behind one lookup protocol."""

    #: Point-tier capacity for namespaces without an explicit size.
    _DEFAULT_POINT_SIZE = 256

    def __init__(
        self,
        point_sizes: dict[str, int] | None = None,
        run_cache_size: int = 4096,
        cache_dir: str | None = None,
        persistent: bool = True,
        shards: int | None = None,
    ):
        self._point_sizes = dict(point_sizes or {})
        self._point: dict[str, LRUCache] = {}
        self._run: LRUCache[tuple[str, str], bytes] = LRUCache(run_cache_size)
        #: Blobs written since the last export/reset; the parallel sweep
        #: ships them from worker outcomes back into the parent's run
        #: tier (see ``api._sweep_points``).
        self._fresh: list[tuple[str, str, bytes]] = []
        #: Guards the run tier, the counters and the SQLite connection:
        #: speculative candidate scoring calls :meth:`get`/:meth:`put`
        #: from threads (``score_workers > 1``).
        self._lock = threading.Lock()
        #: id(content) → (content, digest).  One content tuple flows
        #: through up to three digesting calls per candidate
        #: (``contains`` during speculative filtering, then ``fetch``
        #: and ``put`` in the serial pass); re-hashing the multi-KB repr
        #: each time was a measurable fraction of pricing.  The content
        #: tuple is kept in the value so its id cannot be recycled while
        #: the entry lives; the identity check on lookup makes a stale
        #: entry merely a recompute, never a wrong digest.
        self._digest_memo: dict[int, tuple[tuple, str]] = {}
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.persistent = self.cache_dir is not None and persistent
        #: Persistent-tier connections, one per shard (empty when the
        #: tier is disabled or unusable).
        self._dbs: list[sqlite3.Connection] = []
        self.shards = 1
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self._evictions: dict[str, int] = {}
        if self.persistent:
            try:
                self._dbs = self._open_dbs(shards)
                self.shards = len(self._dbs)
            except (sqlite3.Error, OSError):
                # A broken/locked database (or an unusable directory)
                # must never break synthesis; degrade to memory tiers.
                for db in self._dbs:
                    db.close()
                self._dbs = []
                self.persistent = False

    @classmethod
    def from_config(cls, config: "SynthesisConfig") -> "SynthesisStore":
        """Build a store from a :class:`SynthesisConfig`'s cache knobs."""
        sizes = {
            "module": config.module_cache_size,
            "resynth": config.module_cache_size,
            "schedule": config.cost_cache_size,
            # Metrics live in the context's own fingerprint-keyed cost
            # cache; a point tier here would only duplicate it.
            "metrics": 0,
        }
        return cls(
            sizes,
            run_cache_size=config.run_cache_size,
            cache_dir=config.cache_dir,
            persistent=config.persistent_cache,
            shards=getattr(config, "store_shards", None),
        )

    @staticmethod
    def detect_shards(cache_dir: str | Path) -> int:
        """Shard count of an existing on-disk layout (1 for fresh dirs).

        A sharded directory holds ``synthesis_store.shardNN.sqlite``
        files; the count is the highest index plus one, so readers that
        pass ``shards=None`` route digests exactly like the writer that
        created the layout.  A plain ``synthesis_store.sqlite`` (or an
        empty/missing directory) is the single-shard layout.
        """
        path = Path(cache_dir)
        if not path.is_dir():
            return 1
        indices = [
            int(m.group(1))
            for p in path.glob("synthesis_store.shard??.sqlite")
            if (m := _SHARD_RE.search(p.name)) is not None
        ]
        return max(indices) + 1 if indices else 1

    def bind(self, telemetry) -> None:
        """Write per-tier counters into *telemetry*'s store dicts.

        The dicts are shared by reference, so worker stores feeding a
        worker :class:`~repro.telemetry.Telemetry` merge into run totals
        through the existing ``Telemetry.merge``.
        """
        for mine, theirs in (
            (self._hits, telemetry.store_hits),
            (self._misses, telemetry.store_misses),
            (self._evictions, telemetry.store_evictions),
        ):
            for key, n in mine.items():
                theirs[key] = theirs.get(key, 0) + n
        self._hits = telemetry.store_hits
        self._misses = telemetry.store_misses
        self._evictions = telemetry.store_evictions

    # ------------------------------------------------------------------
    # Lookup protocol
    # ------------------------------------------------------------------
    def point_tier(self, ns: str) -> LRUCache:
        """The live-object point tier of namespace *ns* (created lazily)."""
        tier = self._point.get(ns)
        if tier is None:
            tier = LRUCache(
                self._point_sizes.get(ns, self._DEFAULT_POINT_SIZE)
            )
            self._point[ns] = tier
        return tier

    def _tick(self, counters: dict[str, int], key: str) -> None:
        counters[key] = counters.get(key, 0) + 1

    def _digest(self, content: tuple) -> str:
        """Memoized :func:`digest_content` (same object → cached digest)."""
        entry = self._digest_memo.get(id(content))
        if entry is not None and entry[0] is content:
            return entry[1]
        digest = digest_content(content)
        if len(self._digest_memo) >= 4096:
            self._digest_memo.clear()
        self._digest_memo[id(content)] = (content, digest)
        return digest

    def get(self, ns: str, key) -> Any:
        """Probe the point tier only; returns :data:`MISSING` on a miss.

        This is the legacy fast path: point keys need no canonical
        content (callers build the content key — which may require
        gathering streams — only after a point miss, via :meth:`fetch`).
        """
        tier = self.point_tier(ns)
        with self._lock:
            if key in tier:
                self._tick(self._hits, f"point.{ns}")
                return tier[key]
            self._tick(self._misses, f"point.{ns}")
            return MISSING

    def fetch(
        self,
        ns: str,
        key,
        content: tuple,
        decode: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Probe the run and persistent tiers after a point miss.

        On a hit the blob is unpickled (a fresh copy every time), passed
        through *decode* when given (module loads route through
        ``SynthesisEnv.adopt_loaded_module`` to keep generated-name
        sequences consistent), installed into the point tier under
        *key*, and returned; otherwise :data:`MISSING`.
        """
        blob_key = (ns, self._digest(content))
        with self._lock:
            blob = self._run.get(blob_key)
            if blob is not None:
                self._tick(self._hits, f"run.{ns}")
            else:
                self._tick(self._misses, f"run.{ns}")
                blob = self._db_get(blob_key)
                if blob is not None:
                    self._run_put(blob_key, blob)
        if blob is None:
            return MISSING
        value = pickle.loads(blob)
        if decode is not None:
            value = decode(value)
        with self._lock:
            self._point_put(ns, key, value)
        return value

    def contains(self, ns: str, content: tuple) -> bool:
        """Whether the run or persistent tier holds *content*.

        A pure probe — no counters, no point-tier install: speculative
        scoring (:meth:`~repro.synthesis.costs.EvaluationContext.prime`)
        uses it to skip candidates the serial accounting pass will
        answer from the store anyway.
        """
        blob_key = (ns, self._digest(content))
        with self._lock:
            if self._run.peek(blob_key) is not None:
                return True
            db = self._shard_for(blob_key[1])
            if db is None:
                return False
            try:
                row = db.execute(
                    "SELECT 1 FROM store WHERE ns = ? AND key = ?", blob_key
                ).fetchone()
            except sqlite3.Error:
                return False
            return row is not None

    def put(self, ns: str, key, content: tuple, value: Any) -> None:
        """Store a freshly computed value in every tier."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob_key = (ns, self._digest(content))
        with self._lock:
            self._point_put(ns, key, value)
            self._run_put(blob_key, blob)
            self._db_put(blob_key, blob)
            self._fresh.append((ns, blob_key[1], blob))

    def load(self, ns: str, content: tuple) -> Any:
        """Content-only probe of the run and persistent tiers.

        For namespaces addressed purely by content (no per-point live
        key): ``priors`` tables and ``portfolio`` incumbents.  Returns a
        fresh unpickled copy, or :data:`MISSING` — without installing
        anything into a point tier, so these reads can never perturb the
        point-keyed namespaces' hit sequences.
        """
        blob_key = (ns, self._digest(content))
        with self._lock:
            blob = self._run.get(blob_key)
            if blob is not None:
                self._tick(self._hits, f"run.{ns}")
            else:
                self._tick(self._misses, f"run.{ns}")
                blob = self._db_get(blob_key)
                if blob is not None:
                    self._run_put(blob_key, blob)
        if blob is None:
            return MISSING
        return pickle.loads(blob)

    def replace(self, ns: str, content: tuple, value: Any) -> None:
        """Store *value* under *content*, overwriting any previous value.

        The mutable-aggregate counterpart of :meth:`put`: most
        namespaces hold immutable content-addressed results (``INSERT
        OR IGNORE``), but priors tables and portfolio incumbents are
        *updated in place* under a stable address, so this path writes
        ``INSERT OR REPLACE`` and overwrites the run-tier blob.
        Last-writer-wins under concurrency — acceptable for advisory
        aggregates, never used for priced results.
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob_key = (ns, self._digest(content))
        with self._lock:
            self._run_put(blob_key, blob)
            self._db_write(
                "INSERT OR REPLACE INTO store VALUES (?, ?, ?)",
                blob_key, blob,
            )
            self._fresh.append((ns, blob_key[1], blob))

    def _point_put(self, ns: str, key, value: Any) -> None:
        tier = self.point_tier(ns)
        if key not in tier and 0 < tier.maxsize <= len(tier):
            self._tick(self._evictions, f"point.{ns}")
        tier.put(key, value)

    def _run_put(self, blob_key: tuple[str, str], blob: bytes) -> None:
        if blob_key not in self._run and 0 < self._run.maxsize <= len(self._run):
            self._tick(self._evictions, f"run.{blob_key[0]}")
        self._run.put(blob_key, blob)

    # ------------------------------------------------------------------
    # Point lifecycle / parallel-sweep plumbing
    # ------------------------------------------------------------------
    def reset_point(self) -> None:
        """Clear the point tiers (and pending exports) between points.

        The run and persistent tiers survive: their content addressing
        does not depend on per-point generated names.
        """
        with self._lock:
            for tier in self._point.values():
                tier.clear()
            self._fresh.clear()

    def export_fresh(self) -> list[tuple[str, str, bytes]]:
        """Drain the blobs written since the last export (worker side)."""
        with self._lock:
            fresh = self._fresh
            self._fresh = []
            return fresh

    def absorb(self, entries: list[tuple[str, str, bytes]]) -> None:
        """Install worker-exported blobs into this store's run tier.

        Workers with a ``--cache-dir`` already wrote the persistent
        tier themselves (idempotently), so absorption only feeds the
        parent's in-memory run tier.
        """
        with self._lock:
            for ns, digest, blob in entries:
                self._run_put((ns, digest), blob)

    def counters(self) -> dict[str, dict[str, int]]:
        """Sorted snapshot of the per-tier counters (trace ``run_end``)."""
        with self._lock:
            return {
                "hits": dict(sorted(self._hits.items())),
                "misses": dict(sorted(self._misses.items())),
                "evictions": dict(sorted(self._evictions.items())),
            }

    # ------------------------------------------------------------------
    # Persistent tier (SQLite)
    # ------------------------------------------------------------------
    def _open_dbs(self, shards: int | None) -> list[sqlite3.Connection]:
        assert self.cache_dir is not None
        path = Path(self.cache_dir)
        path.mkdir(parents=True, exist_ok=True)
        if shards is None:
            shards = self.detect_shards(path)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards == 1:
            files = [path / _DB_NAME]
        else:
            files = [
                path / _SHARD_NAME.format(index=i) for i in range(shards)
            ]
        return [self._open_one(file) for file in files]

    def _open_one(self, file: Path) -> sqlite3.Connection:
        # check_same_thread=False: scoring threads may fetch/put; all
        # access is serialized by self._lock.
        db = sqlite3.connect(file, timeout=30.0, check_same_thread=False)
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
        # Belt over the connect timeout: writers blocked on another
        # process's write transaction wait instead of failing.
        db.execute("PRAGMA busy_timeout=30000")
        db.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        db.execute(
            "CREATE TABLE IF NOT EXISTS store ("
            " ns TEXT NOT NULL, key TEXT NOT NULL, value BLOB NOT NULL,"
            " PRIMARY KEY (ns, key))"
        )
        row = db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            db.execute(
                "INSERT OR IGNORE INTO meta VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
        elif row[0] != str(STORE_SCHEMA_VERSION):
            db.execute("DELETE FROM store")
            db.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION),),
            )
        db.commit()
        return db

    def _shard_for(self, digest: str) -> sqlite3.Connection | None:
        """Connection owning *digest*, or ``None`` when the tier is off.

        Digests are uniform SHA-256 hex, so routing on the leading 32
        bits spreads the keyspace evenly; single-shard stores skip the
        arithmetic entirely.
        """
        if not self._dbs:
            return None
        if len(self._dbs) == 1:
            return self._dbs[0]
        return self._dbs[int(digest[:8], 16) % len(self._dbs)]

    def _db_get(self, blob_key: tuple[str, str]) -> bytes | None:
        db = self._shard_for(blob_key[1])
        if db is None:
            return None
        ns = blob_key[0]
        try:
            row = db.execute(
                "SELECT value FROM store WHERE ns = ? AND key = ?", blob_key
            ).fetchone()
        except sqlite3.Error:
            return None
        if row is not None:
            self._tick(self._hits, f"persistent.{ns}")
            return row[0]
        self._tick(self._misses, f"persistent.{ns}")
        return None

    def _db_put(self, blob_key: tuple[str, str], blob: bytes) -> None:
        self._db_write(
            "INSERT OR IGNORE INTO store VALUES (?, ?, ?)", blob_key, blob
        )

    def _db_write(
        self, sql: str, blob_key: tuple[str, str], blob: bytes
    ) -> None:
        db = self._shard_for(blob_key[1])
        if db is None:
            return
        for attempt in range(_WRITE_RETRIES):
            try:
                db.execute(sql, (blob_key[0], blob_key[1], blob))
                db.commit()
                return
            except sqlite3.OperationalError as exc:
                # Transient writer contention (WAL serializes writers);
                # ignore-writes are immutable and replace-writes are
                # last-writer-wins aggregates, so retrying is sound.
                if "locked" not in str(exc) and "busy" not in str(exc):
                    return
                try:
                    db.rollback()
                except sqlite3.Error:
                    pass
                time.sleep(_WRITE_RETRY_SLEEP_S * (attempt + 1))
            except sqlite3.Error:
                return

    def persistent_stats(self) -> dict[str, Any]:
        """Entry counts and on-disk size of the persistent tier.

        Aggregated across shards; ``path`` names the single database
        file of a one-shard store and the cache directory otherwise.
        """
        if not self._dbs or self.cache_dir is None:
            return {"path": None, "entries": {}, "total_entries": 0,
                    "bytes": 0, "shards": 0}
        entries: dict[str, int] = {}
        size = 0
        for db, file in zip(self._dbs, self._db_files()):
            rows = db.execute(
                "SELECT ns, COUNT(*), SUM(LENGTH(value)) FROM store"
                " GROUP BY ns ORDER BY ns"
            ).fetchall()
            for ns, n, _sz in rows:
                entries[ns] = entries.get(ns, 0) + n
            size += file.stat().st_size if file.exists() else 0
        path = (
            Path(self.cache_dir) / _DB_NAME
            if len(self._dbs) == 1
            else Path(self.cache_dir)
        )
        return {
            "path": str(path),
            "entries": dict(sorted(entries.items())),
            "total_entries": sum(entries.values()),
            "bytes": size,
            "shards": len(self._dbs),
        }

    def _db_files(self) -> list[Path]:
        assert self.cache_dir is not None
        root = Path(self.cache_dir)
        if len(self._dbs) == 1:
            return [root / _DB_NAME]
        return [
            root / _SHARD_NAME.format(index=i) for i in range(len(self._dbs))
        ]

    def clear_persistent(self) -> int:
        """Delete every persistent entry; returns the number removed."""
        removed = 0
        with self._lock:
            for db in self._dbs:
                n = db.execute("SELECT COUNT(*) FROM store").fetchone()[0]
                db.execute("DELETE FROM store")
                db.commit()
                removed += int(n)
        return removed

    def prune_persistent(self, max_entries: int) -> int:
        """Evict oldest-inserted entries beyond *max_entries*.

        Content-addressed entries are immutable and never rewritten
        (``INSERT OR IGNORE``), so SQLite's implicit ``rowid`` is a
        faithful insertion clock: pruning lowest rowids first drops the
        longest-stored results — for a fuzzing/corpus workload, the
        designs least likely to recur.  Sharded stores split the budget
        evenly across shards (digest routing is uniform, so per-shard
        insertion order is the per-shard age order).  Returns the number
        evicted, and counts them in telemetry as ``persistent.<ns>``
        evictions.
        """
        if not self._dbs:
            return 0
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        k = len(self._dbs)
        base, extra = divmod(max_entries, k)
        evicted = 0
        with self._lock:
            for index, db in enumerate(self._dbs):
                quota = base + (1 if index < extra else 0)
                try:
                    victims = db.execute(
                        "SELECT rowid, ns FROM store ORDER BY rowid DESC"
                        " LIMIT -1 OFFSET ?",
                        (quota,),
                    ).fetchall()
                    if not victims:
                        continue
                    db.executemany(
                        "DELETE FROM store WHERE rowid = ?",
                        [(rowid,) for rowid, _ns in victims],
                    )
                    db.commit()
                except sqlite3.Error:
                    continue
                for _rowid, ns in victims:
                    self._tick(self._evictions, f"persistent.{ns}")
                evicted += len(victims)
        return evicted

    def close(self) -> None:
        """Close the persistent connections (idempotent)."""
        for db in self._dbs:
            db.close()
        self._dbs = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tiers = ", ".join(
            f"{ns}:{len(t)}" for ns, t in sorted(self._point.items())
        )
        return (
            f"SynthesisStore(point=[{tiers}], run={len(self._run)}, "
            f"persistent={self.persistent})"
        )
