"""Move generation: the four optimization move types of the paper.

* **Type A** — replace a simple functional unit's cell, or a complex
  module instance's RTL module, by a library alternative better suited
  to the environment (including functionally equivalent anisomorphic
  DFG variants reached through the equivalence registry).
* **Type B** — resynthesize a complex module under constraints relaxed
  to the slack its environment provides (coarse-grain knowledge driving
  fine-grain optimization).
* **Type C** — resource sharing: merge two functional-unit instances,
  two registers, or two complex-module instances (same type, or
  different types via **RTL embedding**).  Also *chain formation*: fuse
  a feeder/consumer pair of additions onto a chained adder cell.
* **Type D** — resource splitting: the inverses of type C, which create
  new optimization opportunities and cut switched capacitance by
  un-interleaving streams.

Every generator returns *candidates* that the iterative-improvement
driver prices with the cost function (by delta against the current
solution for local moves; see :mod:`repro.synthesis.incremental`).
A :class:`Candidate` either carries an eagerly mutated clone or — when
discovered by the relational engine
(:mod:`repro.synthesis.relational`) — a lazy *descriptor*: an edit
recipe plus a precomputed structural fingerprint, with the
``Solution.clone()`` deferred until the candidate is actually priced.
Generators respect the KL *locked* set so a pass cannot ping-pong on
the same resources.  :func:`prune_candidates` discards provably
dominated or structurally hopeless candidates before any of them are
priced (and, for lazy candidates, before any of them are cloned).
"""

from __future__ import annotations

from typing import Callable

from ..dfg.graph import NodeKind, Signal
from ..dfg.ops import Operation
from ..errors import SynthesisError
from ..library.cells import LibraryCell
from ..power.simulate import SimTrace
from .caching import HashedKey
from .context import SynthesisEnv, ensure_behavior
from .modulegen import merge_modules
from .solution import Solution

__all__ = [
    "Candidate",
    "register_lifetimes",
    "type_a_b_candidates",
    "sharing_candidates",
    "splitting_candidates",
    "prune_candidates",
    "normalize_registers",
]


class Candidate:
    """One tentative move: a mutated clone (or a recipe for one) plus
    bookkeeping.

    Two construction modes:

    * **eager** — ``solution=`` carries the already-mutated clone (the
      legacy generators' idiom);
    * **lazy** — ``build=`` is a zero-argument callable producing the
      clone on first access to :attr:`solution`, and ``fingerprint=``
      is the precomputed :class:`~repro.synthesis.caching.HashedKey`
      of the solution that *would* be built.  The relational discovery
      engine emits these so :func:`prune_candidates` can discard
      duplicates, dominated swaps and hopeless structures without a
      single ``Solution.clone()``.

    The precomputed fingerprint must equal the built solution's
    ``fingerprint_key()`` exactly — pruning and cost-cache decisions
    key on it, and the bit-identity of the relational and legacy paths
    rests on that equality (asserted by the test suite).
    """

    __slots__ = (
        "kind", "description", "touched", "footprint", "replacement_cell",
        "_solution", "_build", "_fingerprint", "_on_materialize",
    )

    def __init__(
        self,
        kind: str,
        description: str,
        solution: Solution | None = None,
        touched: frozenset[str] = frozenset(),
        footprint: frozenset[str] | None = None,
        *,
        build: Callable[[], Solution] | None = None,
        fingerprint: HashedKey | None = None,
        replacement_cell: LibraryCell | None = None,
        on_materialize: Callable[[str], None] | None = None,
    ):
        if (solution is None) == (build is None):
            raise SynthesisError(
                "candidate needs exactly one of solution= (eager) or "
                "build= (lazy)"
            )
        self.kind = kind
        self.description = description
        self.touched = touched
        #: Touched-resource footprint of a *local* move — one whose
        #: effects on the cost are confined to the named instances/
        #: registers plus cheap structural terms (muxes, wiring,
        #: controller).  ``None`` marks a global move (resynthesis,
        #: chain formation, module merges, ...) that must always be
        #: priced from scratch: those can change the schedule length or
        #: the register-conflict set wholesale.  Only footprinted
        #: candidates are delta-priced against the current solution's
        #: breakdown; correctness never depends on the footprint
        #: (per-term keys catch every side effect), it is purely the
        #: gate that decides when delta pricing is attempted.
        self.footprint = footprint
        #: For ``A-cell`` swaps: the cell the instance would switch to.
        #: Lets pruning rule 2 compare timing/area/cap without
        #: materializing the clone.
        self.replacement_cell = replacement_cell
        self._solution = solution
        self._build = build
        self._fingerprint = fingerprint
        self._on_materialize = on_materialize

    @property
    def solution(self) -> Solution:
        """The mutated solution (built on first access for lazy candidates)."""
        if self._solution is None:
            assert self._build is not None
            self._solution = self._build()
            self._build = None
            if self._on_materialize is not None:
                self._on_materialize(self.kind)
        return self._solution

    @property
    def is_materialized(self) -> bool:
        """True once the mutated solution exists (always, when eager)."""
        return self._solution is not None

    def fingerprint_key(self) -> HashedKey:
        """Structural fingerprint — precomputed for lazy candidates."""
        if self._fingerprint is not None:
            return self._fingerprint
        return self.solution.fingerprint_key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "built" if self.is_materialized else "lazy"
        return f"Candidate({self.kind!r}, {self.description!r}, {state})"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def normalize_registers(solution: Solution) -> None:
    """Re-align register bindings with the set of registered signals.

    Chain formation/dissolution changes which signals need registers;
    this drops bindings of now-internal signals (deleting registers that
    become empty) and gives fresh dedicated registers to newly exposed
    signals.
    """
    needed = set(solution.registered_signals())
    bound: set[Signal] = set()
    for reg_id in list(solution.reg_signals):
        kept = [s for s in solution.reg_signals[reg_id] if s in needed]
        if kept:
            solution.reg_signals[reg_id] = kept
            bound.update(kept)
        else:
            del solution.reg_signals[reg_id]
    for signal in needed - bound:
        solution.add_register([signal])
    solution.invalidate()


def register_lifetimes(
    solution: Solution, regs: list[str]
) -> dict[str, list[tuple[int, int]]]:
    """Interval index: register id → sorted half-open signal lifetimes.

    The shared basis of register-sharing discovery on both engines: the
    legacy loop checks pairwise disjointness over these intervals, and
    the relational engine loads the same rows into its ``life`` table
    for the interval-overlap anti-join.  Intervals are half-open
    ``[birth, death)`` cycles — two overlap iff
    ``b1 < d2 and b2 < d1``.
    """
    return {
        r: sorted(solution.signal_lifetime(s) for s in solution.reg_signals[r])
        for r in regs
    }


def _ops_of_instance(solution: Solution, inst_id: str) -> set[Operation]:
    ops: set[Operation] = set()
    for group in solution.executions[inst_id]:
        for node_id in group:
            node = solution.dfg.node(node_id)
            if node.op is not None:
                ops.add(node.op)
    return ops


def _max_chain(solution: Solution, inst_id: str) -> int:
    execs = solution.executions[inst_id]
    return max((len(g) for g in execs), default=1)


def _cell_fits(cell: LibraryCell, ops: set[Operation], chain: int) -> bool:
    return all(cell.supports(op) for op in ops) and cell.chain_length >= chain


def _instance_weight(env: SynthesisEnv, solution: Solution, inst_id: str) -> float:
    """Rough objective contribution used for module-group formation."""
    inst = solution.instances[inst_id]
    n_exec = max(len(solution.executions[inst_id]), 1)
    if inst.is_module:
        assert inst.module is not None
        if env.objective == "power":
            return inst.module.cap_internal() * n_exec
        return inst.module.area(env.library)
    assert inst.cell is not None
    if env.objective == "power":
        return inst.cell.cap * n_exec
    return inst.cell.area


def candidate_order_key(candidate: Candidate) -> tuple:
    """Deterministic candidate ordering: (kind, sorted touched ids, text).

    This is the tie-break used both by :func:`repro.synthesis.improve.
    _best` (between equal-cost candidates) and by the pruning rules
    below (to pick a canonical survivor among equivalent candidates),
    so pruning can never change which move wins a pricing round.
    """
    return (candidate.kind, tuple(sorted(candidate.touched)), candidate.description)


#: fingerprint key → schedule-length lower bound.  The bound is a pure
#: function of the solution fingerprint (tasks derive from the DFG,
#: bindings and operating point, all of which the fingerprint covers),
#: and KL rounds regenerate largely the same candidate structures — so
#: the memo turns rule 3 into a dict probe for repeat candidates.
_MIN_LEN_MEMO: dict = {}


def _min_schedule_length(solution: Solution) -> int:
    """A cheap lower bound on the schedule length, without scheduling.

    Tasks bound to one instance serialize: any order starts successive
    tasks at least one initiation interval apart, so ``(n - 1) ·
    min(ii) + min(duration)`` cycles elapse on that instance no matter
    how the scheduler arranges them.
    """
    fp = solution.fingerprint_key()
    cached = _MIN_LEN_MEMO.get(fp)
    if cached is not None:
        return cached
    # Single pass, no per-instance task lists: (count, min ii, min
    # duration) is all the bound needs, and this runs once per candidate
    # per pricing round.
    stats: dict[str, list[int]] = {}
    for task in solution.tasks():
        duration = task.duration
        ii = task.initiation_interval or duration
        entry = stats.get(task.instance)
        if entry is None:
            stats[task.instance] = [1, ii, duration]
        else:
            entry[0] += 1
            if ii < entry[1]:
                entry[1] = ii
            if duration < entry[2]:
                entry[2] = duration
    bound = 0
    for n, min_ii, min_duration in stats.values():
        per = (n - 1) * min_ii + min_duration
        if per > bound:
            bound = per
    if len(_MIN_LEN_MEMO) >= 100_000:
        _MIN_LEN_MEMO.clear()
    _MIN_LEN_MEMO[fp] = bound
    return bound


def prune_candidates(
    env: SynthesisEnv, solution: Solution, candidates: list[Candidate]
) -> list[Candidate]:
    """Discard candidates that provably cannot win the pricing round.

    Three rules, each outcome-preserving given the deterministic
    tie-break of :func:`candidate_order_key`:

    1. **Duplicate structures** — candidates with equal solution
       fingerprints evaluate to the same cost, so only the one with the
       smallest order key (the one :func:`~repro.synthesis.improve.
       _best` would pick anyway) is kept.
    2. **Dominated cell swaps** — among ``A-cell`` swaps of the same
       instance, a replacement cell with identical timing (delay cycles
       and initiation interval at this operating point) yields an
       identical schedule and netlist structure, so a candidate whose
       cell also has no larger area and no larger switched capacitance
       can only be at most as expensive under either objective; the
       loser is dropped.  Ties (equal area *and* cap) resolve by order
       key, so exactly the serial winner survives.
    3. **Structurally hopeless** — a lower bound on the schedule length
       already beyond twice the deadline means the candidate prices as
       deeply infeasible and can never be chosen over the current
       (finite-cost) solution; mirror of the operating-point skip in
       :mod:`repro.synthesis.api`.

    Pruned candidates are counted per family in telemetry
    (``moves_pruned``); the surviving list preserves generation order.

    All three rules work on :meth:`Candidate.fingerprint_key` and
    :attr:`Candidate.replacement_cell`, so lazy (relational-engine)
    candidates are pruned without ever cloning a solution — the clones
    the legacy eager path wasted on pruned candidates simply never
    happen.
    """
    if len(candidates) < 2:
        return candidates
    clk_ns, vdd = solution.clk_ns, solution.vdd
    drop: set[int] = set()

    # Order keys are pure per candidate and compared repeatedly by
    # rules 1 and 2 — compute each at most once.
    _order_keys: list[tuple | None] = [None] * len(candidates)

    def order_key(idx: int) -> tuple:
        key = _order_keys[idx]
        if key is None:
            key = candidate_order_key(candidates[idx])
            _order_keys[idx] = key
        return key

    # Rule 1: duplicate fingerprints.
    best_by_fp: dict = {}
    for idx, cand in enumerate(candidates):
        fp = cand.fingerprint_key()
        prior = best_by_fp.get(fp)
        if prior is None:
            best_by_fp[fp] = idx
        elif order_key(idx) < order_key(prior):
            drop.add(prior)
            best_by_fp[fp] = idx
        else:
            drop.add(idx)

    # Rule 2: dominated A-cell swaps on the same instance.  Timing and
    # size are resolved once per candidate; the pairwise scan then
    # compares plain tuples.
    swap_groups: dict[frozenset[str], list[int]] = {}
    for idx, cand in enumerate(candidates):
        if cand.kind == "A-cell" and idx not in drop:
            swap_groups.setdefault(cand.touched, []).append(idx)
    for indices in swap_groups.values():
        cells = []
        for i in indices:
            cell = candidates[i].replacement_cell
            if cell is None:
                (inst_id,) = candidates[i].touched
                cell = candidates[i].solution.instances[inst_id].cell
            assert cell is not None
            cells.append(
                (
                    cell.delay_cycles(clk_ns, vdd),
                    cell.initiation_interval(clk_ns, vdd),
                    cell.area,
                    cell.cap,
                )
            )
        for pos_i, i in enumerate(indices):
            delay_i, ii_i, area_i, cap_i = cells[pos_i]
            for pos_j, j in enumerate(indices):
                if j == i:
                    continue
                delay_j, ii_j, area_j, cap_j = cells[pos_j]
                if (
                    delay_j == delay_i
                    and ii_j == ii_i
                    and area_j <= area_i
                    and cap_j <= cap_i
                    and order_key(j) < order_key(i)
                ):
                    drop.add(i)
                    break

    # Rule 3: schedule length provably hopeless.  Every move preserves
    # the operating point, so the base solution's deadline applies to
    # all candidates; the memo is probed by the candidate's (possibly
    # precomputed) fingerprint first, so repeat structures never
    # materialize a lazy candidate just to re-derive a known bound.
    deadline = 2 * solution.deadline_cycles
    for idx, cand in enumerate(candidates):
        if idx in drop:
            continue
        bound = _MIN_LEN_MEMO.get(cand.fingerprint_key())
        if bound is None:
            bound = _min_schedule_length(cand.solution)
        if bound > deadline:
            drop.add(idx)

    if not drop:
        return candidates
    for idx in drop:
        env.telemetry.count_move_pruned(candidates[idx].kind)
    return [c for idx, c in enumerate(candidates) if idx not in drop]


def _bound_behaviors(solution: Solution, inst_id: str) -> list[str]:
    behaviors = []
    for group in solution.executions[inst_id]:
        (node_id,) = group
        behavior = solution.dfg.node(node_id).behavior
        assert behavior is not None
        behaviors.append(behavior)
    return behaviors


# ----------------------------------------------------------------------
# Type A and B
# ----------------------------------------------------------------------

def type_a_b_candidates(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    locked: frozenset[str],
    view=None,
) -> list[Candidate]:
    """Module-selection moves (Figure 5): replacement and resynthesis.

    *view* — a :class:`~repro.synthesis.relational.RelationalView` of
    *solution* — routes the ``A-cell`` family through one batched
    capability join instead of a per-instance library rescan; module
    replacement/re-embedding and move B stay on the shared Python
    helpers in both modes (their candidate counts are bounded by the
    library, not by the solution size).
    """
    config = env.config

    # Module group formation: target the heaviest unlocked instances.
    targets = [
        inst_id
        for inst_id in solution.instances
        if inst_id not in locked and solution.executions[inst_id]
    ]
    targets.sort(key=lambda i: -_instance_weight(env, solution, i))
    targets = targets[: config.max_ab_targets]

    candidates: list[Candidate] = []
    simple_targets: list[str] = []
    resynth_budget = 2 if config.enable_resynthesis else 0
    for inst_id in targets:
        inst = solution.instances[inst_id]
        if inst.is_module:
            candidates.extend(_module_replacements(env, solution, inst_id))
            remerge = _merged_module_rebuild(env, solution, inst_id)
            if remerge is not None:
                candidates.append(remerge)
            if resynth_budget > 0:
                resynth = _resynthesis_candidate(env, solution, sim, inst_id)
                if resynth is not None:
                    candidates.append(resynth)
                    resynth_budget -= 1
        elif view is not None:
            simple_targets.append(inst_id)
        else:
            candidates.extend(_cell_replacements(env, solution, inst_id))
    if view is not None and simple_targets:
        candidates.extend(view.cell_replacements(simple_targets))
    return candidates


def _cell_replacements(
    env: SynthesisEnv, solution: Solution, inst_id: str
) -> list[Candidate]:
    inst = solution.instances[inst_id]
    assert inst.cell is not None
    ops = _ops_of_instance(solution, inst_id)
    chain = _max_chain(solution, inst_id)
    out: list[Candidate] = []
    for cell in env.library.cells():
        if cell.name == inst.cell.name:
            continue
        if not _cell_fits(cell, ops, chain):
            continue
        clone = solution.clone()
        clone.set_cell(inst_id, cell)
        out.append(
            Candidate(
                kind="A-cell",
                description=f"{inst_id}: {inst.cell.name} -> {cell.name}",
                solution=clone,
                touched=frozenset({inst_id}),
                footprint=frozenset({inst_id}),
                replacement_cell=cell,
            )
        )
    return out


def _module_replacements(
    env: SynthesisEnv, solution: Solution, inst_id: str
) -> list[Candidate]:
    inst = solution.instances[inst_id]
    assert inst.module is not None
    behaviors = _bound_behaviors(solution, inst_id)
    seen: set[str] = set()
    out: list[Candidate] = []
    for behavior in behaviors:
        for module in env.library.complex_modules_for(behavior):
            if module.name in seen or module.name == inst.module.name:
                continue
            seen.add(module.name)
            if not all(ensure_behavior(module, b, env.library) for b in behaviors):
                continue
            if not _ports_match(solution, inst_id, module):
                continue
            clone = solution.clone()
            clone.set_module(inst_id, module)
            out.append(
                Candidate(
                    kind="A-module",
                    description=f"{inst_id}: {inst.module.name} -> {module.name}",
                    solution=clone,
                    touched=frozenset({inst_id}),
                )
            )
    return out


def _ports_match(solution: Solution, inst_id: str, module) -> bool:
    for group in solution.executions[inst_id]:
        (node_id,) = group
        node = solution.dfg.node(node_id)
        profile = module.profile(node.behavior)
        if len(profile.input_offsets_ns) != node.n_inputs:
            return False
        if len(profile.output_latencies_ns) != node.n_outputs:
            return False
    return True


def _merged_module_rebuild(
    env: SynthesisEnv, solution: Solution, inst_id: str
) -> Candidate | None:
    """Type-A variant for multi-behavior instances: re-embed from the
    best library module per behavior.

    Once two modules are merged, no single library element supports the
    union of behaviors, so plain replacement can never fix a merge that
    locked in a poorly matched constituent.  This move rebuilds the
    overlay from the objective-best library module of each bound
    behavior (uniform constituents overlay far better).
    """
    inst = solution.instances[inst_id]
    assert inst.module is not None
    behaviors = list(dict.fromkeys(_bound_behaviors(solution, inst_id)))
    if len(behaviors) < 2:
        return None

    def score(module) -> float:
        if env.objective == "power":
            return min(module.cap_internal(b) for b in behaviors if module.supports(b))
        return module.area(env.library)

    picks = []
    for behavior in behaviors:
        candidates = [
            m
            for m in env.library.complex_modules_for(behavior)
            if ensure_behavior(m, behavior, env.library)
        ]
        if not candidates:
            return None
        picks.append(min(candidates, key=score))

    merged = picks[0]
    for module in picks[1:]:
        merged = merge_modules(merged, module)
    if merged.name == inst.module.name:
        return None
    if not all(merged.supports(b) for b in behaviors):
        return None
    if not _ports_match(solution, inst_id, merged):
        return None
    clone = solution.clone()
    clone.set_module(inst_id, merged)
    return Candidate(
        kind="A-remerge",
        description=f"{inst_id}: re-embed from library corners ({merged.name})",
        solution=clone,
        touched=frozenset({inst_id}),
    )


def _resynthesis_candidate(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    inst_id: str,
) -> Candidate | None:
    """Move B: descend into a complex module and resynthesize it under
    the relaxed constraints its environment allows."""
    from ..scheduling.slack import environment_of
    from .improve import resynthesize_module  # lazy: improve imports moves

    inst = solution.instances[inst_id]
    assert inst.module is not None
    execs = solution.executions[inst_id]
    if len(execs) != 1:
        return None  # merged/shared modules are not resynthesized
    (node_id,) = execs[0]
    node = solution.dfg.node(node_id)
    assert node.behavior is not None
    if not (inst.module.resynthesizable or env.design.has_behavior(node.behavior)):
        return None

    sched = solution.schedule()
    if sched.length > solution.deadline_cycles:
        return None
    task = solution.task(f"{inst_id}#0")
    constraint = environment_of(
        solution.dfg, task, solution.tasks(), sched, solution.deadline_cycles
    )
    budget_cycles = min(constraint.output_deadlines) - max(
        list(constraint.input_arrivals) + [0]
    )
    if budget_cycles < 1:
        return None

    module = resynthesize_module(
        env, solution, sim, node_id, node.behavior, inst.module, budget_cycles
    )
    if module is None:
        return None
    clone = solution.clone()
    clone.set_module(inst_id, module)
    return Candidate(
        kind="B-resynth",
        description=(
            f"{inst_id}: resynthesize {inst.module.name} under "
            f"{budget_cycles}-cycle budget"
        ),
        solution=clone,
        touched=frozenset({inst_id}),
    )


# ----------------------------------------------------------------------
# Type C: resource sharing
# ----------------------------------------------------------------------

def sharing_candidates(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    locked: frozenset[str],
    view=None,
) -> list[Candidate]:
    """Merging moves: FU pairs, register pairs, module pairs, chains.

    The candidate budget is apportioned *per family* — FU pairs up to
    ``max_share_pairs``, register pairs up to ``max_share_pairs // 2``,
    module pairs up to ``max(1, max_share_pairs // 2)``, chain
    formation with its own small internal caps — rather than one global
    truncation over the concatenated list, which used to let a full FU/
    register harvest silently starve module sharing and chain formation
    out of the round entirely.  Per-family discovery counts land in
    ``telemetry.moves_discovered`` (kind-keyed), making the
    apportionment observable.

    With *view* set (a :class:`~repro.synthesis.relational.
    RelationalView` of *solution*), the FU and register families come
    from batched SQL joins emitting lazy candidates; module sharing and
    chain formation are library-/DFG-bounded and stay on the shared
    Python helpers in both modes.
    """
    config = env.config
    out: list[Candidate] = []
    if view is not None:
        out.extend(view.fu_sharing())
        out.extend(view.register_sharing())
    else:
        out.extend(_fu_sharing(env, solution, locked))
        out.extend(_register_sharing(env, solution, locked))
    out.extend(
        _module_sharing(env, solution, locked)[: max(1, config.max_share_pairs // 2)]
    )
    out.extend(_chain_formation(env, solution, locked))
    return out


def _unlocked_simple(solution: Solution, locked: frozenset[str]) -> list[str]:
    return [
        inst_id
        for inst_id, inst in solution.instances.items()
        if not inst.is_module
        and inst_id not in locked
        and solution.executions[inst_id]
    ]


def _fu_sharing(
    env: SynthesisEnv, solution: Solution, locked: frozenset[str]
) -> list[Candidate]:
    simple = _unlocked_simple(solution, locked)
    pairs: list[tuple[float, str, str, LibraryCell]] = []
    for i, a in enumerate(simple):
        for b in simple[i + 1 :]:
            ops = _ops_of_instance(solution, a) | _ops_of_instance(solution, b)
            chain = max(_max_chain(solution, a), _max_chain(solution, b))
            cell_a = solution.instances[a].cell
            cell_b = solution.instances[b].cell
            assert cell_a is not None and cell_b is not None
            target: LibraryCell | None = None
            if _cell_fits(cell_a, ops, chain):
                target = cell_a
            elif _cell_fits(cell_b, ops, chain):
                target = cell_b
            else:
                fits = [
                    c for c in env.library.cells() if _cell_fits(c, ops, chain)
                ]
                if fits:
                    target = min(fits, key=lambda c: c.area)
            if target is None:
                continue
            saved = min(cell_a.area, cell_b.area)
            pairs.append((saved, a, b, target))
    pairs.sort(key=lambda p: -p[0])

    out: list[Candidate] = []
    for _saved, a, b, target in pairs[: env.config.max_share_pairs]:
        clone = solution.clone()
        if clone.instances[a].cell.name != target.name:  # type: ignore[union-attr]
            clone.set_cell(a, target)
        clone.merge_instances(a, b)
        out.append(
            Candidate(
                kind="C-share-fu",
                description=f"share: {b} -> {a} ({target.name})",
                solution=clone,
                touched=frozenset({a, b}),
                footprint=frozenset({a, b}),
            )
        )
    return out


def _register_sharing(
    env: SynthesisEnv, solution: Solution, locked: frozenset[str]
) -> list[Candidate]:
    regs = [r for r in solution.reg_signals if r not in locked]
    lifetimes = register_lifetimes(solution, regs)

    def disjoint(a: str, b: str) -> bool:
        merged = sorted(lifetimes[a] + lifetimes[b])
        return all(
            b2 >= d1 for (_b1, d1), (b2, _d2) in zip(merged, merged[1:])
        )

    # Sort by end-of-life (left-edge flavour: early-dying registers pair
    # first) and enumerate *all* pairs in that order up to the family
    # cap — the old 4-wide window missed valid disjoint pairs whenever
    # a compatible partner sorted more than four slots away.
    regs.sort(key=lambda r: lifetimes[r][-1][1])
    out: list[Candidate] = []
    for i, a in enumerate(regs):
        for b in regs[i + 1 :]:
            if len(out) >= env.config.max_share_pairs // 2:
                return out
            if not disjoint(a, b):
                continue
            # Register moves leave tasks and schedule untouched, so the
            # clone carries the parent's timing caches (no rescheduling
            # when the candidate is priced).
            clone = solution.clone(carry_timing=True)
            clone.merge_registers(a, b)
            out.append(
                Candidate(
                    kind="C-share-reg",
                    description=f"share registers: {b} -> {a}",
                    solution=clone,
                    touched=frozenset({a, b}),
                    footprint=frozenset({a, b}),
                )
            )
    return out


def _module_sharing(
    env: SynthesisEnv, solution: Solution, locked: frozenset[str]
) -> list[Candidate]:
    modules = [
        inst_id
        for inst_id, inst in solution.instances.items()
        if inst.is_module and inst_id not in locked and solution.executions[inst_id]
    ]
    out: list[Candidate] = []
    for i, a in enumerate(modules):
        for b in modules[i + 1 :]:
            mod_a = solution.instances[a].module
            mod_b = solution.instances[b].module
            assert mod_a is not None and mod_b is not None
            behaviors_b = _bound_behaviors(solution, b)
            behaviors_a = _bound_behaviors(solution, a)
            if all(mod_a.supports(x) for x in behaviors_b):
                clone = solution.clone()
                clone.merge_instances(a, b)
                out.append(
                    Candidate(
                        kind="C-share-module",
                        description=f"share module: {b} -> {a} ({mod_a.name})",
                        solution=clone,
                        touched=frozenset({a, b}),
                    )
                )
            elif env.config.enable_embedding:
                merged = merge_modules(mod_a, mod_b)
                if not all(
                    merged.supports(x) for x in behaviors_a + behaviors_b
                ):
                    continue
                clone = solution.clone()
                clone.set_module(a, merged)
                clone.merge_instances(a, b)
                out.append(
                    Candidate(
                        kind="C-embed",
                        description=(
                            f"RTL-embed: {mod_b.name} into {mod_a.name} on {a}"
                        ),
                        solution=clone,
                        touched=frozenset({a, b}),
                    )
                )
    return out


def _chain_formation(
    env: SynthesisEnv, solution: Solution, locked: frozenset[str]
) -> list[Candidate]:
    """Fuse add→add dependencies onto chained adder cells.

    Candidate: nodes ``a -> b`` where both are additions on separate
    unlocked instances, each currently a singleton execution, and *a*'s
    value is consumed only by *b* (so it can become chain-internal).
    """
    dfg = solution.dfg
    chained2 = [c for c in env.library.cells() if c.chain_length == 2
                and c.supports(Operation.ADD)]
    chained3 = [c for c in env.library.cells() if c.chain_length == 3
                and c.supports(Operation.ADD)]
    if not chained2 and not chained3:
        return []

    out: list[Candidate] = []
    for node in dfg.op_nodes():
        if node.op != Operation.ADD:
            continue
        consumers = dfg.out_edges(node.node_id)
        if len(consumers) != 1:
            continue
        nxt = dfg.node(consumers[0].dst)
        if nxt.kind != NodeKind.OP or nxt.op != Operation.ADD:
            continue
        inst_a = solution.instance_of(node.node_id)
        inst_b = solution.instance_of(nxt.node_id)
        if inst_a == inst_b or inst_a in locked or inst_b in locked:
            continue
        if solution.instances[inst_a].is_module or solution.instances[inst_b].is_module:
            continue
        execs_a = solution.executions[inst_a]
        execs_b = solution.executions[inst_b]
        if execs_a != [(node.node_id,)] or execs_b != [(nxt.node_id,)]:
            continue
        for cell in chained2[:1]:
            clone = solution.clone()
            clone.executions[inst_a] = []
            clone.executions[inst_b] = []
            clone.remove_instance(inst_b)
            clone.set_cell(inst_a, cell)
            clone.bind_execution(inst_a, (node.node_id, nxt.node_id))
            normalize_registers(clone)
            out.append(
                Candidate(
                    kind="C-chain",
                    description=(
                        f"chain {node.node_id}+{nxt.node_id} on {cell.name}"
                    ),
                    solution=clone,
                    touched=frozenset({inst_a, inst_b}),
                )
            )
        if len(out) >= 4:
            break

    # Extend an existing 2-chain to a 3-chain.
    for inst_id, inst in solution.instances.items():
        if inst.is_module or inst_id in locked or inst.cell is None:
            continue
        if inst.cell.chain_length != 2 or not chained3:
            continue
        for group in solution.executions[inst_id]:
            if len(group) != 2:
                continue
            last = group[-1]
            consumers = dfg.out_edges(last)
            if len(consumers) != 1:
                continue
            nxt = dfg.node(consumers[0].dst)
            if nxt.kind != NodeKind.OP or nxt.op != Operation.ADD:
                continue
            inst_c = solution.instance_of(nxt.node_id)
            if inst_c == inst_id or inst_c in locked:
                continue
            if solution.executions[inst_c] != [(nxt.node_id,)]:
                continue
            clone = solution.clone()
            clone.executions[inst_id] = [
                g for g in clone.executions[inst_id] if g != group
            ]
            clone.executions[inst_c] = []
            clone.remove_instance(inst_c)
            clone.set_cell(inst_id, chained3[0])
            clone.bind_execution(inst_id, tuple(group) + (nxt.node_id,))
            normalize_registers(clone)
            out.append(
                Candidate(
                    kind="C-chain3",
                    description=f"extend chain with {nxt.node_id}",
                    solution=clone,
                    touched=frozenset({inst_id, inst_c}),
                )
            )
            break
    return out


# ----------------------------------------------------------------------
# Type D: resource splitting
# ----------------------------------------------------------------------

def splitting_candidates(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    locked: frozenset[str],
    view=None,
) -> list[Candidate]:
    """Splitting moves: un-share instances, registers and chains.

    With *view* set, the FU-split and register-split families come from
    the relational engine as lazy candidates (one ordered scan each);
    chain dissolution stays on the shared Python helper below.
    """
    out: list[Candidate] = []

    if view is not None:
        out.extend(view.fu_splits())
        out.extend(view.register_splits())
    else:
        shared = [
            inst_id
            for inst_id in solution.instances
            if inst_id not in locked and len(solution.executions[inst_id]) >= 2
        ]
        shared.sort(key=lambda i: -len(solution.executions[i]))
        for inst_id in shared[: env.config.max_split_candidates]:
            execs = solution.executions[inst_id]
            half = max(1, len(execs) // 2)
            moved = execs[half:]
            clone = solution.clone()
            twin = clone.split_instance(inst_id, list(moved))
            out.append(
                Candidate(
                    kind="D-split-fu",
                    description=f"split {inst_id} ({len(execs)} execs) -> {twin}",
                    solution=clone,
                    touched=frozenset({inst_id, twin}),
                    footprint=frozenset({inst_id, twin}),
                )
            )

        shared_regs = [
            reg_id
            for reg_id, signals in solution.reg_signals.items()
            if reg_id not in locked and len(signals) >= 2
        ]
        for reg_id in shared_regs[: env.config.max_split_candidates // 2]:
            signals = solution.reg_signals[reg_id]
            moved = signals[len(signals) // 2 :]
            clone = solution.clone(carry_timing=True)
            twin = clone.split_register(reg_id, list(moved))
            out.append(
                Candidate(
                    kind="D-split-reg",
                    description=f"split register {reg_id} -> {twin}",
                    solution=clone,
                    touched=frozenset({reg_id, twin}),
                    footprint=frozenset({reg_id, twin}),
                )
            )

    # Chain dissolution: break a chained execution into singletons.
    for inst_id, inst in solution.instances.items():
        if inst.is_module or inst_id in locked or inst.cell is None:
            continue
        if inst.cell.chain_length <= 1:
            continue
        groups = solution.executions[inst_id]
        if not groups:
            continue
        clone = solution.clone()
        fastest = env.library.fastest_cell(Operation.ADD)
        new_ids = []
        clone.executions[inst_id] = []
        clone.remove_instance(inst_id)
        for group in groups:
            for node_id in group:
                inst_new = clone.add_instance(cell=fastest)
                clone.bind_execution(inst_new.inst_id, (node_id,))
                new_ids.append(inst_new.inst_id)
        normalize_registers(clone)
        out.append(
            Candidate(
                kind="D-unchain",
                description=f"dissolve chain on {inst_id}",
                solution=clone,
                touched=frozenset([inst_id] + new_ids),
            )
        )
        break

    return out
