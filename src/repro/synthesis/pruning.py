"""Supply-voltage and clock-period candidate pruning.

The paper's SYNTHESIZE procedure iterates over "the pruned supply
voltage set" and "the pruned clock period set" (Figure 4, with the
pruning procedure attributed to ref. [10]).  We reproduce the standard
scheme:

* a supply voltage is kept only if the design's *minimum* critical path
  (fastest cells, unconstrained resources), slowed by the CMOS scaling
  factor, still fits the sampling period;
* clock-period candidates are derived from the (scaled) cell delays —
  a good clock divides the important cell delays nearly evenly — and
  ranked by a quantization-waste figure: the average slack a cell
  wastes inside its ceiling number of cycles.
"""

from __future__ import annotations

import math

from ..dfg.analysis import critical_path_length
from ..dfg.flatten import flatten
from ..dfg.graph import DFG, Node, NodeKind
from ..dfg.hierarchy import Design
from ..library.library import ModuleLibrary
from ..library.voltage import SUPPLY_VOLTAGES, delay_scale

__all__ = [
    "min_sampling_period_ns",
    "candidate_vdds",
    "candidate_clocks",
    "laxity_sampling_ns",
]


def _fastest_delay_fn(library: ModuleLibrary):
    def delay_of(node: Node) -> float:
        if node.kind != NodeKind.OP:
            return 0.0
        assert node.op is not None
        return library.fastest_cell(node.op).delay_ns

    return delay_of


def min_sampling_period_ns(design: Design, library: ModuleLibrary) -> float:
    """Minimum achievable sampling period (ns) at the 5 V reference.

    The denominator of the paper's *laxity factor*: critical path of the
    fully flattened behavior with every operation on its fastest cell
    and unlimited resources.
    """
    flat = flatten(design)
    return critical_path_length(flat, _fastest_delay_fn(library))


def laxity_sampling_ns(
    design: Design, library: ModuleLibrary, laxity_factor: float
) -> float:
    """Sampling period for a given laxity factor (L.F. of Table 3)."""
    if laxity_factor < 1.0:
        raise ValueError("laxity factor must be >= 1")
    return laxity_factor * min_sampling_period_ns(design, library)


def candidate_vdds(
    design: Design,
    library: ModuleLibrary,
    sampling_ns: float,
    voltages: tuple[float, ...] = SUPPLY_VOLTAGES,
) -> list[float]:
    """Supply voltages at which the behavior can possibly meet throughput."""
    base = min_sampling_period_ns(design, library)
    return [
        v for v in voltages if base * delay_scale(v) <= sampling_ns + 1e-9
    ]


def candidate_clocks(
    library: ModuleLibrary,
    vdd: float,
    sampling_ns: float,
    n_clocks: int = 2,
    min_clk_ns: float = 2.0,
) -> list[float]:
    """Pruned clock-period candidates for one supply voltage.

    Candidates are divisors of scaled cell delays; each is scored by the
    mean relative quantization waste over all functional cells:
    ``(ceil(d/clk) * clk - d) / d``.  The ``n_clocks`` least wasteful
    distinct candidates are returned, longest clock first (fewer states,
    smaller controller — preferred on ties).
    """
    scale = delay_scale(vdd)
    delays = [cell.delay_ns * scale for cell in library.cells()]
    raw: set[float] = set()
    for delay in delays:
        for k in (1, 2, 3, 4):
            clk = delay / k
            if min_clk_ns <= clk <= sampling_ns:
                raw.add(round(clk, 3))
    if not raw:
        raw = {max(min_clk_ns, sampling_ns / 8.0)}

    def waste(clk: float) -> float:
        total = 0.0
        for delay in delays:
            cycles = max(1, math.ceil(delay / clk - 1e-9))
            total += (cycles * clk - delay) / delay
        # Shorter clocks quantize delays better but inflate the state
        # count (bigger controller, longer schedules); this term breaks
        # the otherwise monotone preference for tiny periods.
        controller_penalty = 0.002 * (sampling_ns / clk)
        return total / len(delays) + controller_penalty

    ranked = sorted(raw, key=lambda clk: (waste(clk), -clk))
    picked: list[float] = []
    for clk in ranked:
        if any(abs(clk - p) / p < 0.02 for p in picked):
            continue
        picked.append(clk)
        if len(picked) >= n_clocks:
            break
    return sorted(picked, reverse=True)
