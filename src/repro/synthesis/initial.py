"""INITIAL_SOLUTION: the fully parallel starting architecture.

Following Figure 4 of the paper: "This routine maps each simple node in
the DFG to the fastest implementation available in the library.  DFGs
which represent hierarchical nodes are handled in the same manner.
Each operation is mapped to a separate functional unit, and each
variable to a separate register, resulting in a completely parallel
architecture."

Hierarchical nodes are implemented by the fastest admissible complex
module from the library; when the library has none, the behavior's
default DFG variant is synthesized bottom-up (recursively with the same
routine) and characterized as a fresh module.
"""

from __future__ import annotations

import numpy as np

from ..dfg.canonical import design_fingerprint, stream_digest
from ..dfg.graph import DFG, Node, NodeKind
from ..errors import SynthesisError
from ..power.simulate import SimTrace
from ..rtl.module import RTLModule
from .context import SynthesisEnv, ensure_behavior
from .modulegen import characterize_module
from .solution import Solution
from .store import MISSING

__all__ = ["initial_solution", "initial_module_for"]

#: Sampling budget used while characterizing unconstrained sub-modules.
_UNCONSTRAINED_NS = 1e9


def hier_input_streams(
    dfg: DFG, node_id: str, sim: SimTrace
) -> list[np.ndarray]:
    """The streams a hierarchical node receives, in port order."""
    edges = {e.dst_port: e for e in dfg.in_edges(node_id)}
    return [sim.stream((), edges[p].signal) for p in sorted(edges)]


def initial_module_for(
    env: SynthesisEnv,
    node: Node,
    dfg: DFG,
    sim: SimTrace,
    clk_ns: float,
    vdd: float,
) -> RTLModule:
    """Fastest implementation of a hierarchical node's behavior."""
    assert node.behavior is not None
    behavior = node.behavior

    candidates: list[RTLModule] = []
    for module in env.library.complex_modules_for(behavior):
        if ensure_behavior(module, behavior, env.library):
            profile = module.profile(behavior)
            if len(profile.input_offsets_ns) == node.n_inputs and len(
                profile.output_latencies_ns
            ) == node.n_outputs:
                candidates.append(module)

    cache_key = (behavior, clk_ns, vdd)
    cached = env.store.get("module", cache_key)
    if cached is not MISSING:
        candidates.append(cached)
    elif env.design.has_behavior(behavior):
        sub_dfg = env.design.default_variant(behavior)
        streams = hier_input_streams(dfg, node.node_id, sim)
        # The content key omits the objective on purpose: this routine
        # builds the *fastest* implementation (fastest cells, then the
        # makespan-tightened budget), which is objective-independent, so
        # area and power runs share entries.
        content = (
            "module",
            env.store_signature,
            behavior,
            design_fingerprint(env.design, sub_dfg),
            stream_digest(streams),
            clk_ns,
            vdd,
        )
        module = env.store.fetch(
            "module", cache_key, content, decode=env.adopt_loaded_module
        )
        if module is MISSING:
            sub_sim = env.sub_sim(sub_dfg, streams)
            sub_solution = initial_solution(
                env, sub_dfg, sub_sim, clk_ns, vdd, _UNCONSTRAINED_NS
            )
            # Tighten the budget to the achieved makespan before packaging.
            sub_solution.sampling_ns = max(
                sub_solution.schedule().length * clk_ns, clk_ns
            )
            module = env.register_module(
                characterize_module(
                    env.fresh_module_name(behavior), behavior, sub_solution,
                    sub_sim, ()
                )
            )
            env.store.put("module", cache_key, content, module)
        candidates.append(module)

    if not candidates:
        raise SynthesisError(
            f"no implementation available for behavior {behavior!r}: the "
            "library has no complex module and the design has no DFG for it"
        )
    return min(candidates, key=lambda m: m.profile(behavior).latency_ns)


def initial_solution(
    env: SynthesisEnv,
    dfg: DFG,
    sim: SimTrace,
    clk_ns: float,
    vdd: float,
    sampling_ns: float,
) -> Solution:
    """Build the completely parallel fastest-cells starting solution."""
    solution = Solution(dfg, env.library, clk_ns, vdd, sampling_ns)
    for node in dfg.operation_nodes():
        if node.kind == NodeKind.OP:
            assert node.op is not None
            cell = env.library.fastest_cell(node.op)
            inst = solution.add_instance(cell=cell)
        else:
            module = initial_module_for(env, node, dfg, sim, clk_ns, vdd)
            inst = solution.add_instance(module=module)
        solution.bind_execution(inst.inst_id, (node.node_id,))
    for signal in solution.registered_signals():
        solution.add_register([signal])
    solution.check_invariants()
    return solution
