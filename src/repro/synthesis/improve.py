"""Variable-depth iterative improvement (Figure 4 of the paper).

A *pass* applies up to ``MAX_MOVES`` moves in sequence.  At each step
the best type-A/B move competes with the best resource-sharing move
(falling back to resource splitting when sharing has negative gain);
the winner is applied **even if its gain is negative** and the touched
resources are locked for the rest of the pass.  At the end of the pass
the prefix of the move sequence with the best cumulative gain is
committed; passes repeat while they improve the solution.  This is the
classic Kernighan–Lin / variable-depth scheme the paper cites ([11]),
and it is what lets the algorithm climb out of local minima.

Every discretionary decision in that loop — the family plan, candidate
ranking, the splitting fallback, pass/step termination, and seeding —
is delegated to the env's :class:`~repro.search.policy.SearchPolicy`.
The default policy's hooks are exact no-ops, which keeps this driver
byte-identical to the pre-policy monolith (golden-trace tested);
nested move-B resynthesis always runs the default scheme regardless of
the configured policy, because its result is memoized in the store and
must not vary with the outer search's bias.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..dfg.canonical import stream_digest
from ..power.simulate import SimTrace
from ..rtl.module import RTLModule
from ..search.policy import DefaultPolicy, SearchPolicy
from ..telemetry import Telemetry, move_family
from .caching import HashedKey
from .context import SynthesisEnv
from .costs import EvaluationContext
from .initial import hier_input_streams, initial_solution
from .incremental import Breakdown
from .modulegen import ModuleInternal, characterize_module
from .store import MISSING, module_content_signature
from .moves import (
    Candidate,
    candidate_order_key,
    prune_candidates,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from .relational import RelationalView
from .solution import Solution

__all__ = ["ScoredMove", "improve_solution", "resynthesize_module", "PassRecord"]


@dataclass
class ScoredMove:
    """A candidate plus its evaluated cost."""

    candidate: Candidate
    cost_after: float


@dataclass
class PassRecord:
    """Trace of one improvement pass (for reporting and tests)."""

    moves: list[str]
    costs: list[float]
    committed_prefix: int


def _tally_discovered(
    tel: Telemetry, candidates: list[Candidate], discovered: dict[str, int]
) -> None:
    """Count freshly generated candidates (pre-pruning), by kind.

    Feeds both the run telemetry and the per-step ``discovered`` trace
    field.  Eager candidates (legacy loops and the shared module/chain
    helpers) count as materialized right here; lazy (relational)
    candidates report materialization through their build callback, so
    the discovered/materialized gap measures the clones laziness
    avoided.  The counts themselves are engine-independent: both
    discovery paths emit identical candidate multisets.
    """
    for cand in candidates:
        kind = cand.kind
        discovered[kind] = discovered.get(kind, 0) + 1
        tel.count_move_discovered(kind)
        if cand.is_materialized:
            tel.count_move_materialized(kind)


def _best(
    ctx: EvaluationContext,
    candidates: list[Candidate],
    base: Breakdown | None = None,
    workers: int = 1,
) -> ScoredMove | None:
    """Price all candidates, return the cheapest feasible-or-not one.

    *base* is the current solution's per-term breakdown: candidates
    carrying a local footprint are priced by delta against it (see
    :mod:`repro.synthesis.incremental`), the rest from scratch.

    Equal-cost candidates resolve by the deterministic
    :func:`~repro.synthesis.moves.candidate_order_key`, never by
    generation order — this pins the winner regardless of evaluation
    order, which is what allows ``workers > 1`` to speculatively price
    uncached candidates on a thread pool (via
    :meth:`~repro.synthesis.costs.EvaluationContext.prime`) while the
    loop below keeps all cache/telemetry/trace accounting exactly
    serial.
    """

    def candidate_base(candidate: Candidate) -> Breakdown | None:
        return base if candidate.footprint is not None else None

    if ctx.batch_pricing and len(candidates) > 1:
        # Collect every activity-key miss across the whole candidate set
        # and price them through one batched kernel call; the serial
        # loop below then consumes the stashed results.
        ctx.evaluate_batch(
            [(c.solution, candidate_base(c)) for c in candidates], workers
        )
    elif workers > 1 and len(candidates) > 1:
        ctx.prime(
            [(c.solution, candidate_base(c)) for c in candidates], workers
        )
    best: ScoredMove | None = None
    best_key: tuple | None = None
    for candidate in candidates:
        ctx.telemetry.count_move_tried(candidate.kind)
        cost = ctx.cost(candidate.solution, base=candidate_base(candidate))
        if math.isinf(cost):
            continue
        key = (cost,) + candidate_order_key(candidate)
        if best_key is None or key < best_key:
            best = ScoredMove(candidate, cost)
            best_key = key
    ctx.discard_primed()
    return best


#: Candidate generator of each policy family tag.
_DISCOVER = {
    "ab": type_a_b_candidates,
    "share": sharing_candidates,
    "split": splitting_candidates,
}

#: Shared fallback policy for nested resynthesis: move-B results are
#: memoized in the store under policy-independent content keys, so the
#: nested driver must run the fixed default scheme no matter how the
#: outer search is biased.  Never bound to an env (no hook needs one).
_DEFAULT_POLICY = DefaultPolicy()


def _discover_family(
    env: SynthesisEnv,
    ctx: EvaluationContext,
    policy: SearchPolicy,
    family: str,
    work: Solution,
    sim: SimTrace,
    locked: frozenset[str],
    view: RelationalView | None,
    discovered: dict[str, int],
    pass_idx: int,
    step_idx: int,
) -> list[Candidate]:
    """Generate, tally, prune and rank one family's candidates."""
    t_disc = time.perf_counter()
    cands = _DISCOVER[family](env, work, sim, locked, view=view)
    ctx.telemetry.add_time("discovery", time.perf_counter() - t_disc)
    _tally_discovered(ctx.telemetry, cands, discovered)
    if env.config.prune:
        cands = prune_candidates(env, work, cands)
    return list(policy.rank_candidates(family, cands, pass_idx, step_idx))


def improve_solution(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    max_passes: int | None = None,
    max_moves: int | None = None,
    history: list[PassRecord] | None = None,
) -> Solution:
    """Run variable-depth iterative improvement on *solution*.

    Returns the best solution found (the input solution if nothing
    improved).  ``history`` — when supplied — receives one
    :class:`PassRecord` per executed pass.  Discretionary decisions
    route through ``env.policy`` (see :mod:`repro.search.policy`); the
    default policy reproduces the paper's fixed scheme exactly.
    """
    config = env.config
    max_passes = max_passes if max_passes is not None else config.max_passes
    max_moves = max_moves if max_moves is not None else config.max_moves
    ctx = env.context(sim)
    # Nested move-B resynthesis runs this same driver one level down;
    # its passes are an implementation detail of pricing one candidate,
    # so only the top-level search is traced — and only the top-level
    # search is policy-biased (see _DEFAULT_POLICY).
    nested = env._resynth_active
    rec = env.trace if not nested else None
    policy = env.policy if not nested else _DEFAULT_POLICY
    max_passes, max_moves = policy.budgets(max_passes, max_moves)
    plan = policy.family_order()

    current = solution
    current_cost = ctx.cost(current)
    current, current_cost = policy.seed_solution(ctx, current, current_cost)

    for _pass in range(max_passes):
        if policy.stop_pass(_pass, current_cost):
            break
        locked: frozenset[str] = frozenset()
        work = current
        sequence: list[tuple[Candidate, float]] = []
        if rec is not None:
            t_pass = rec.clock()
            rec.emit("pass_start", point=rec.point, **{"pass": _pass},
                     cost=current_cost)

        for _step in range(max_moves):
            if rec is not None:
                t_step = rec.clock()
                tel = ctx.telemetry
                ev0 = (
                    tel.evaluations,
                    tel.cache_hits,
                    tel.cache_misses,
                    tel.delta_hits,
                    sum(tel.moves_pruned.values()),
                )
            # The work solution was just priced (as a candidate or as the
            # pass seed), so its breakdown is normally resident; a None
            # (evicted) simply means candidates price from scratch.
            base = ctx.breakdown_of(work) if config.incremental else None
            workers = config.score_workers
            discovered: dict[str, int] = {}
            view = (
                RelationalView(env, work, locked) if config.relational else None
            )
            groups: dict[str, list[Candidate]] = {}
            scored: dict[str, ScoredMove | None] = {}
            for family in plan:
                groups[family] = _discover_family(
                    env, ctx, policy, family, work, sim, locked, view,
                    discovered, _pass, _step,
                )
            for family in plan:
                scored[family] = _best(
                    ctx, groups[family], base=base, workers=workers
                )
            work_cost = sequence[-1][1] if sequence else current_cost
            if "split" not in plan and policy.try_split(
                scored.get("share"), work_cost
            ):
                groups["split"] = _discover_family(
                    env, ctx, policy, "split", work, sim, locked, view,
                    discovered, _pass, _step,
                )
                m4 = _best(ctx, groups["split"], base=base, workers=workers)
                # The split winner competes in the sharing slot — the
                # paper's rule: splitting substitutes for a failed
                # sharing move, it does not outrank type A/B on ties.
                m3 = scored.get("share")
                if m4 is not None and (m3 is None or m4.cost_after < m3.cost_after):
                    scored["share"] = m4
            chosen = None
            for family in scored:
                move = scored[family]
                if move is None:
                    continue
                if chosen is None or move.cost_after < chosen.cost_after:
                    chosen = move
            if chosen is None:
                break
            if policy.stop_step(chosen, work_cost, _step):
                break
            if rec is not None:
                _emit_step(
                    rec, ctx, _pass, _step, work, work_cost, chosen,
                    [c for fam in groups.values() for c in fam],
                    discovered, ev0, t_step,
                )
            work = chosen.candidate.solution
            locked = locked | chosen.candidate.touched
            sequence.append((chosen.candidate, chosen.cost_after))

        if not sequence:
            if rec is not None:
                rec.emit("pass_end", point=rec.point, **{"pass": _pass},
                         steps=0, committed=0, cost=current_cost,
                         dur_ns=rec.elapsed_ns(t_pass))
            break

        best_idx = min(range(len(sequence)), key=lambda i: sequence[i][1])
        best_cost = sequence[best_idx][1]
        committed = 0
        if best_cost < current_cost - config.epsilon:
            current = sequence[best_idx][0].solution
            current_cost = best_cost
            committed = best_idx + 1
            for candidate, _cost in sequence[:committed]:
                ctx.telemetry.count_move_committed(candidate.kind)
            if config.verify_moves:
                t_verify = rec.clock() if rec is not None else None
                _verify_commit(env, current, sim, sequence[:committed])
                if rec is not None:
                    rec.emit("verify", point=rec.point, **{"pass": _pass},
                             ok=True, dur_ns=rec.elapsed_ns(t_verify))

        if rec is not None:
            rec.emit("pass_end", point=rec.point, **{"pass": _pass},
                     steps=len(sequence), committed=committed,
                     cost=current_cost, dur_ns=rec.elapsed_ns(t_pass))
        if history is not None or policy.observes:
            record = PassRecord(
                moves=[c.description for c, _ in sequence],
                costs=[cost for _, cost in sequence],
                committed_prefix=committed,
            )
            if history is not None:
                history.append(record)
            policy.observe_pass(record, current_cost)
        if committed == 0:
            break

    policy.publish(current, current_cost)
    return current


def _emit_step(
    rec,
    ctx: EvaluationContext,
    pass_idx: int,
    step_idx: int,
    work: Solution,
    work_cost: float,
    chosen: ScoredMove,
    candidates: list[Candidate],
    discovered: dict[str, int],
    ev0: tuple[int, int, int, int, int],
    t_step,
) -> None:
    """Emit one ``step`` trace event with full gain attribution.

    The gain is broken into its cost-model components by re-evaluating
    the pre- and post-move solutions — both are cache hits, since the
    move was just priced, so attribution costs no netlist rebuilds.
    """
    # Snapshot the pricing deltas first: the two attribution lookups
    # below also tick the telemetry counters (as cache hits).
    tel = ctx.telemetry
    evals = {
        "n": tel.evaluations - ev0[0],
        "hits": tel.cache_hits - ev0[1],
        "misses": tel.cache_misses - ev0[2],
        "delta": tel.delta_hits - ev0[3],
        "pruned": sum(tel.moves_pruned.values()) - ev0[4],
    }
    before = ctx.evaluate(work)
    after = ctx.evaluate(chosen.candidate.solution)
    tried: dict[str, int] = {}
    for cand in candidates:
        family = move_family(cand.kind)
        tried[family] = tried.get(family, 0) + 1
    rec.emit(
        "step",
        point=rec.point,
        **{"pass": pass_idx},
        step=step_idx,
        kind=chosen.candidate.kind,
        move=chosen.candidate.description,
        cost=chosen.cost_after,
        gain=work_cost - chosen.cost_after,
        d_power=after.power - before.power,
        d_area=after.area - before.area,
        d_cycles=after.schedule_length - before.schedule_length,
        # Pre-pruning generation counts by full kind: identical between
        # the relational and legacy discovery engines (equal candidate
        # multisets), so the field is safe for trace byte-identity.
        discovered=dict(sorted(discovered.items())),
        tried=dict(sorted(tried.items())),
        eval=evals,
        dur_ns=rec.elapsed_ns(t_step),
    )


def _verify_commit(
    env: SynthesisEnv,
    solution: Solution,
    sim: SimTrace,
    prefix: list[tuple[Candidate, float]],
) -> None:
    """Differentially check a freshly committed KL prefix.

    The reference streams are the memoized *sim* the whole point already
    runs on, so the only new work is interpreting the RTL.  A divergence
    here means a committed move broke the architecture's semantics —
    that is a synthesis bug, so we fail loudly with the shrunk
    counterexample rather than let a miscompiled design win the sweep.
    """
    # Local import: repro.verify builds on the synthesis package, so a
    # top-level import here would be circular.
    from ..errors import VerificationError
    from ..verify import verify_solution

    env.telemetry.verify_checks += 1
    result = verify_solution(env.design, solution, sim=sim)
    if not result.ok:
        env.telemetry.verify_failures += 1
        assert result.counterexample is not None
        moves = "; ".join(c.description for c, _ in prefix)
        raise VerificationError(
            f"committed pass prefix is not equivalent to the behavior "
            f"({result.counterexample.describe()}) after moves: {moves}"
        )


def resynthesize_module(
    env: SynthesisEnv,
    parent: Solution,
    parent_sim: SimTrace,
    node_id: str,
    behavior: str,
    module: RTLModule,
    budget_cycles: int,
) -> RTLModule | None:
    """Move B: resynthesize *module* for a relaxed cycle budget.

    Descends one level: the sub-DFG is re-optimized under a sampling
    budget equal to the slack-derived cycle budget, then packaged as a
    fresh module.  Nested resynthesis is depth-limited to one level per
    move to keep move pricing fast (deeper levels are still reached over
    successive iterations, because each committed move B publishes a new
    resynthesizable module).
    """
    if env._resynth_active:
        return None

    # Resynthesizing the same module under the same budget for the same
    # node is deterministic; memoize per operating point (the move
    # generator asks again every KL step).  The point key identifies the
    # module by canonical *content*, not by its generated name: two
    # structurally identical modules minted under different names (the
    # old key's failure mode) now share one entry.  node_id stays in the
    # point key so the hot path needs no stream gathering.
    module_sig = module_content_signature(module, env.design)
    cache_key = HashedKey(
        (
            "resynth", module_sig, node_id, budget_cycles,
            parent.clk_ns, parent.vdd,
        )
    )
    cached = env.store.get("resynth", cache_key)
    if cached is not MISSING:
        return cached

    # Point miss: build the content key (streams capture everything the
    # node contributes, so node_id drops out) and consult the run and
    # persistent tiers before resynthesizing.
    streams = hier_input_streams(parent.dfg, node_id, parent_sim)
    content = (
        "resynth",
        env.store_signature,
        env.objective,
        behavior,
        module_sig,
        stream_digest(streams),
        budget_cycles,
        parent.clk_ns,
        parent.vdd,
    )
    loaded = env.store.fetch(
        "resynth", cache_key, content, decode=env.adopt_loaded_module
    )
    if loaded is not MISSING:
        return loaded

    # The nested synthesis charges a scratch Telemetry: its evaluations
    # are an implementation detail of pricing one candidate, and a warm
    # run skips them entirely — counting them would make per-step eval
    # deltas (and --stats totals) differ between a cold and a warm run
    # of the same search.  Store counters are exempt: they were bound to
    # the run telemetry's dicts by reference and keep counting.
    saved_telemetry = env.telemetry
    env.telemetry = Telemetry()
    try:
        result = _resynthesize_uncached(
            env, parent, parent_sim, node_id, behavior, module,
            budget_cycles, streams,
        )
    finally:
        env.telemetry = saved_telemetry
    env.store.put("resynth", cache_key, content, result)
    return result


def _resynthesize_uncached(
    env: SynthesisEnv,
    parent: Solution,
    parent_sim: SimTrace,
    node_id: str,
    behavior: str,
    module: RTLModule,
    budget_cycles: int,
    streams: list[np.ndarray],
) -> RTLModule | None:
    if isinstance(module.internal, ModuleInternal):
        sub_dfg = module.internal.solution.dfg
    elif env.design.has_behavior(behavior):
        sub_dfg = env.design.default_variant(behavior)
    else:
        return None

    sub_sim = env.sub_sim(sub_dfg, streams)
    budget_ns = budget_cycles * parent.clk_ns

    start: Solution | None = None
    if isinstance(module.internal, ModuleInternal):
        internal = module.internal.solution
        if internal.clk_ns == parent.clk_ns and internal.vdd == parent.vdd:
            start = internal.clone()
            start.sampling_ns = budget_ns
    if start is None:
        start = initial_solution(
            env, sub_dfg, sub_sim, parent.clk_ns, parent.vdd, budget_ns
        )
    if not start.is_feasible():
        return None

    env._resynth_active = True
    try:
        improved = improve_solution(
            env,
            start,
            sub_sim,
            max_passes=env.config.resynth_passes,
            max_moves=env.config.resynth_moves,
        )
    finally:
        env._resynth_active = False

    if not improved.is_feasible():
        return None
    return env.register_module(
        characterize_module(
            env.fresh_module_name(behavior), behavior, improved, sub_sim, ()
        )
    )
