"""Turning synthesized sub-solutions into complex RTL modules.

When a hierarchical node has no library implementation, its behavior is
synthesized and the result is packaged as an
:class:`~repro.rtl.module.RTLModule`: timing becomes a **profile**
(Example 1 semantics — per-input tolerance for late arrival, per-output
latency), the trace-driven energy of one execution collapses into the
module's ``cap_internal`` coefficient, and the structural netlist is
retained for area evaluation and RTL embedding.

This module also implements the merge of two RTL modules (move C on
complex modules): the netlists are overlaid by
:func:`repro.rtl.embedding.embed_netlists` and the merged module
supports the union of behaviors, each with its original profile — "the
schedule, assignment, etc., for individual DFGs is unaltered"
(Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..library.cells import IDLE_FRACTION
from ..library.voltage import energy_scale
from ..power.activity import stream_activity
from ..power.simulate import SimTrace
from ..rtl.embedding import embed_netlists
from ..rtl.module import RTLModule
from ..rtl.profile import Profile
from ..scheduling.slack import required_signal_times
from .costs import EvaluationContext
from .datapath_build import build_netlist
from .solution import Solution

__all__ = ["ModuleInternal", "characterize_module", "merge_modules"]

#: Mux/wiring energy overhead applied to each behavior of a merged
#: module (per execution, as a fraction of cap_internal) — the merged
#: datapath steers values through the multiplexers the overlay added.
_MERGE_CAP_OVERHEAD = 0.03


@dataclass
class ModuleInternal:
    """Synthesis-side record kept inside a resynthesizable module."""

    solution: Solution
    path: tuple[str, ...]


def characterize_module(
    name: str,
    behavior: str,
    sub_solution: Solution,
    sim: SimTrace,
    path: tuple[str, ...],
) -> RTLModule:
    """Package a scheduled sub-solution as a complex RTL module.

    Parameters
    ----------
    name, behavior:
        Module type name and the behavior it implements.
    sub_solution:
        A feasible solution for the behavior's DFG.
    sim, path:
        Simulated streams and the hierarchy path at which the
        sub-solution's DFG instance lives (characterization stimulus).
    """
    dfg = sub_solution.dfg
    sched = sub_solution.schedule()
    makespan = max(sched.length, 1)

    # Input offsets: how late each input may arrive without stretching
    # the makespan — the backward requirement on primary-input signals.
    required = required_signal_times(dfg, sub_solution.tasks(), sched, makespan)
    offsets = tuple(
        min(required.get((input_id, 0), 0), makespan) for input_id in dfg.inputs
    )

    latencies = []
    for output_id in dfg.outputs:
        (edge,) = dfg.in_edges(output_id)
        latencies.append(max(sched.avail[edge.signal], 1))
    profile = Profile.from_cycles(
        offsets, tuple(latencies), sub_solution.clk_ns, sub_solution.vdd
    )

    # Energy of one execution under the characterization stimulus,
    # normalized to the input-stream activity so the estimator can
    # re-scale it when the module is shared (interleaved inputs).
    ctx = EvaluationContext(sim, path, objective="power")
    metrics = ctx.evaluate(sub_solution)
    input_streams = [sim.stream(path, (input_id, 0)) for input_id in dfg.inputs]
    if input_streams:
        alpha_in = float(
            np.mean([stream_activity(s, 16) for s in input_streams])
        )
    else:
        alpha_in = 0.5
    denom = (IDLE_FRACTION + alpha_in) * energy_scale(sub_solution.vdd) * 25.0
    cap_internal = metrics.energy_per_sample / denom

    netlist = build_netlist(sub_solution, name=name, skip_input_registers=True)
    return RTLModule(
        name=name,
        behavior=behavior,
        profile=profile,
        cap_internal=cap_internal,
        netlist=netlist,
        resynthesizable=True,
        internal=ModuleInternal(sub_solution, path),
    )


def merge_modules(module_a: RTLModule, module_b: RTLModule, name: str | None = None) -> RTLModule:
    """RTL-embed *module_b* into *module_a* (move C on complex modules).

    The merged module supports every behavior of both constituents with
    unchanged profiles; a small capacitance overhead models the added
    steering multiplexers.  It is not resynthesizable — its content is
    the committed overlay of two schedules.
    """
    merged_name = name or f"{module_a.name}+{module_b.name}"
    result = embed_netlists(module_a.netlist, module_b.netlist, merged_name)

    first_behavior = module_a.behaviors()[0]
    first_impl = module_a.impl(first_behavior)
    merged = RTLModule(
        name=merged_name,
        behavior=first_behavior,
        profile=first_impl.profile,
        cap_internal=first_impl.cap_internal * (1.0 + _MERGE_CAP_OVERHEAD),
        netlist=result.netlist,
        resynthesizable=False,
        internal=None,
    )
    for source in (module_a, module_b):
        for behavior in source.behaviors():
            if merged.supports(behavior):
                continue
            impl = source.impl(behavior)
            merged.add_behavior(
                behavior,
                impl.profile,
                impl.cap_internal * (1.0 + _MERGE_CAP_OVERHEAD),
            )
    return merged
