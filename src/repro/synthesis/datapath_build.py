"""Construct the structural datapath netlist and FSM from a solution.

The netlist is the arbiter for area (cells + inferred muxes +
interconnect measure) and the object RTL embedding works on; the FSM
controller is part of the synthesized deliverable ("a datapath netlist,
and a finite-state machine description of the controller", Section 5).

Port id convention: primary inputs become PORT components ``in0``,
``in1``, ... (positional, matching the DFG's ordered input list) and
primary outputs ``out0``, ``out1``, ...  — positional ids are what lets
:func:`repro.rtl.embedding.embed_netlists` overlay module boundaries of
two different behaviors.
"""

from __future__ import annotations

from ..dfg.graph import NodeKind, Signal
from ..errors import DFGError
from ..rtl.components import (
    Component,
    ComponentKind,
    Connection,
    DatapathNetlist,
)
from ..rtl.controller import (
    ControllerState,
    FSMController,
    MuxSelect,
    RegisterLoad,
    UnitStart,
)
from .solution import Solution

__all__ = ["build_netlist", "build_controller", "operand_port_map"]


def operand_port_map(solution: Solution, group: tuple[str, ...]) -> dict[tuple[str, int], int]:
    """Assign instance input-port indices to a task's external operands.

    For a singleton execution the DFG ports map through directly; for a
    chain, external operands are numbered in (node, port) order — the
    convention both the netlist builder and the controller share.
    """
    inside = set(group)
    mapping: dict[tuple[str, int], int] = {}
    next_port = 0
    for node_id in group:
        for edge in solution.dfg.in_edges(node_id):
            if edge.src in inside:
                continue
            mapping[(node_id, edge.dst_port)] = next_port
            next_port += 1
    return mapping


def _source_component(
    solution: Solution, signal: Signal
) -> tuple[str, int]:
    """The netlist component/port a consumer reads *signal* from."""
    src_node = solution.dfg.node(signal[0])
    if src_node.kind == NodeKind.CONST:
        return (f"k_{signal[0]}", 0)
    return (solution.register_of(signal), 0)


#: id(dfg) → (dfg, port/const components, const-source map).  The port
#: and const components of a netlist depend only on the DFG, and
#: :class:`~repro.rtl.components.Component` is an immutable named tuple,
#: so the same objects are shared by every netlist built for that DFG
#: (thousands per pricing step).  The dfg is kept in the value to pin
#: its id, same idiom as the activity caches.
_STATIC_PARTS: dict[
    int,
    tuple[
        object,
        list[Component],
        dict[str, tuple[str, int]],
        dict[str, int],
    ],
] = {}


def _static_parts(
    dfg,
) -> tuple[list[Component], dict[str, tuple[str, int]], dict[str, int]]:
    """Per-DFG invariants: boundary ports, constants, node widths."""
    entry = _STATIC_PARTS.get(id(dfg))
    if entry is not None and entry[0] is dfg:
        return entry[1], entry[2], entry[3]
    comps: list[Component] = []
    for idx, _input in enumerate(dfg.inputs):
        comps.append(Component(f"in{idx}", ComponentKind.PORT, "in"))
    for idx, _output in enumerate(dfg.outputs):
        comps.append(Component(f"out{idx}", ComponentKind.PORT, "out"))
    const_src: dict[str, tuple[str, int]] = {}
    widths: dict[str, int] = {}
    for node in dfg.nodes():
        widths[node.node_id] = node.width
        if node.kind == NodeKind.CONST:
            comps.append(
                Component(f"k_{node.node_id}", ComponentKind.PORT, "const")
            )
            const_src[node.node_id] = (f"k_{node.node_id}", 0)
    if len(_STATIC_PARTS) >= 64:
        _STATIC_PARTS.clear()
    _STATIC_PARTS[id(dfg)] = (dfg, comps, const_src, widths)
    return comps, const_src, widths


def build_netlist(
    solution: Solution,
    name: str | None = None,
    skip_input_registers: bool = False,
) -> DatapathNetlist:
    """Build the structural netlist implied by the solution's bindings.

    ``skip_input_registers=True`` is used when packaging a sub-solution
    as a complex RTL module: the module's inputs are already held in the
    *parent* datapath's registers for as long as the module's profile
    needs them, so registers that exist purely to sample primary inputs
    are omitted and consumers are wired to the input ports directly
    (otherwise every hierarchy level would pay for the same value
    twice).
    """
    dfg = solution.dfg
    # Built in bulk (plain list/set, adopted via ``_from_parts``): the
    # netlist is rebuilt for every priced candidate, and the per-call
    # bookkeeping of ``add_component``/``connect`` is measurable there.
    # Validity is by construction — every connection endpoint below is a
    # component this same function just created — with one duplicate-id
    # check at the end.
    comps: list[Component] = []
    conns: set[Connection] = set()

    input_regs: set[str] = set()
    if skip_input_registers:
        input_signals = {(input_id, 0) for input_id in dfg.inputs}
        for reg_id, signals in solution.reg_signals.items():
            if signals and all(s in input_signals for s in signals):
                input_regs.add(reg_id)

    #: Input signals served straight from their port.
    direct_inputs: dict[tuple[str, int], str] = {}
    for idx, input_id in enumerate(dfg.inputs):
        if skip_input_registers:
            signal = (input_id, 0)
            if solution.register_of(signal) in input_regs:
                direct_inputs[signal] = f"in{idx}"

    static_comps, const_src, widths = _static_parts(dfg)
    comps.extend(static_comps)

    # Raw tuple construction for per-candidate components and wires:
    # the NamedTuple ``__new__`` wrapper costs an extra Python frame per
    # object, and this function runs for every priced candidate.
    new_nt = tuple.__new__

    register_cell_name = solution.library.register_cell.name
    reg_kind = ComponentKind.REGISTER
    for reg_id, signals in solution.reg_signals.items():
        if reg_id in input_regs:
            continue
        reg_width = (
            max([widths[src] for src, _port in signals]) if signals else 16
        )
        comps.append(
            new_nt(Component, (reg_id, reg_kind, register_cell_name, reg_width))
        )

    fu_kind = ComponentKind.FUNCTIONAL
    for inst_id, inst in solution.instances.items():
        if inst.is_module:
            assert inst.module is not None
            comps.append(
                Component(inst_id, ComponentKind.MODULE, inst.module.name)
            )
        else:
            assert inst.cell is not None
            bound = [
                widths[node_id]
                for group in solution.executions[inst_id]
                for node_id in group
            ]
            inst_width = max(bound) if bound else 16
            comps.append(
                new_nt(Component, (inst_id, fu_kind, inst.cell.name, inst_width))
            )

    # Raw signal → register map: dozens of lookups per build make even
    # the ``register_of`` method-call wrapper measurable.  A missing
    # binding surfaces as a KeyError instead of a SynthesisError, which
    # only an internally inconsistent solution can trigger.
    reg_of = solution.registered_map()

    # Source resolution is inlined at both use sites below: a plain
    # const-map probe plus the register reverse map (plus the
    # direct-input overlay when registers are skipped).  A closure here
    # used to cost one Python call per connection, which is measurable
    # at thousands of connections per priced candidate.  Const node ids
    # and input signals are disjoint, so probe order does not matter.
    has_direct = bool(direct_inputs)

    new_conn = new_nt
    add_conn = conns.add

    # Primary inputs are sampled into their registers (unless served
    # directly from the module boundary).
    for idx, input_id in enumerate(dfg.inputs):
        signal = (input_id, 0)
        if signal in direct_inputs:
            continue
        add_conn(new_conn(Connection, (f"in{idx}", 0, reg_of[signal], 0)))

    # Membership via the binding reverse map: for a valid solution its
    # key set equals ``registered_signals()`` (an enforced invariant),
    # and it is already built for the source lookups above.
    registered = reg_of

    in_edges = dfg.in_edges
    for inst_id, execs in solution.executions.items():
        inst = solution.instances[inst_id]
        for group in execs:
            # Inlined operand_port_map: external operands get sequential
            # instance ports in the very (node, edge) order walked here,
            # so the port index is just a counter.
            inside = set(group)
            port = 0
            for node_id in group:
                for edge in in_edges(node_id):
                    if edge.src in inside:
                        continue
                    sig = edge.signal
                    src = const_src.get(sig[0])
                    if src is None:
                        if has_direct and sig in direct_inputs:
                            src = (direct_inputs[sig], 0)
                        else:
                            src = (reg_of[sig], 0)
                    add_conn(new_conn(Connection, src + (inst_id, port)))
                    port += 1
            # Produced signals land in their registers.
            if inst.is_module:
                (node_id,) = group
                node = dfg.node(node_id)
                for out_port in range(node.n_outputs):
                    signal = (node_id, out_port)
                    reg_id = registered.get(signal)
                    if reg_id is not None:
                        add_conn(new_conn(Connection, (inst_id, out_port, reg_id, 0)))
            else:
                for node_id in group:
                    reg_id = registered.get((node_id, 0))
                    if reg_id is not None:
                        add_conn(new_conn(Connection, (inst_id, 0, reg_id, 0)))

    for idx, output_id in enumerate(dfg.outputs):
        (edge,) = dfg.in_edges(output_id)
        sig = edge.signal
        src = const_src.get(sig[0])
        if src is None:
            if has_direct and sig in direct_inputs:
                src = (direct_inputs[sig], 0)
            else:
                src = (reg_of[sig], 0)
        add_conn(new_conn(Connection, src + (f"out{idx}", 0)))

    components = {comp.comp_id: comp for comp in comps}
    if len(components) != len(comps):
        raise DFGError(
            f"duplicate component ids while building netlist for {dfg.name!r}"
        )
    return DatapathNetlist._from_parts(
        name or f"{dfg.name}_dp", components, conns
    )


def build_controller(
    solution: Solution, netlist: DatapathNetlist | None = None
) -> FSMController:
    """Derive the per-cycle control word sequence from the schedule."""
    if netlist is None:
        netlist = build_netlist(solution)
    sched = solution.schedule()
    dfg = solution.dfg
    n_states = max(sched.length, 1)
    states = [ControllerState(cycle=c) for c in range(n_states)]

    def state_at(cycle: int) -> ControllerState:
        return states[min(cycle, n_states - 1)]

    registered = set(solution.registered_signals())

    # Input sampling in cycle 0.
    for idx, input_id in enumerate(dfg.inputs):
        signal = (input_id, 0)
        state_at(0).loads.append(
            RegisterLoad(solution.register_of(signal), f"in{idx}", 0)
        )

    for inst_id, execs in solution.executions.items():
        inst = solution.instances[inst_id]
        for k, group in enumerate(execs):
            task = solution.task(f"{inst_id}#{k}")
            start = sched.start[task.task_id]
            if inst.is_module:
                (node_id,) = group
                op_name = dfg.node(node_id).behavior or "?"
            else:
                op_name = "+".join(
                    str(dfg.node(n).op) for n in group if dfg.node(n).op
                )
            state_at(start).starts.append(UnitStart(inst_id, op_name))

            # Mux selects for multi-source operand ports, asserted when read.
            ports = operand_port_map(solution, group)
            inside = set(group)
            for node_id in group:
                for edge in dfg.in_edges(node_id):
                    if edge.src in inside:
                        continue
                    port = ports[(node_id, edge.dst_port)]
                    if len(netlist.sources_of(inst_id, port)) > 1:
                        src, src_port = _source_component(solution, edge.signal)
                        read_at = start + task.offset_of(node_id, edge.dst_port)
                        state_at(read_at).selects.append(
                            MuxSelect(inst_id, port, src, src_port)
                        )

            # Register loads when produced values become available.
            for node_id in group:
                node = dfg.node(node_id)
                for out_port in range(node.n_outputs):
                    signal = (node_id, out_port)
                    if signal not in registered:
                        continue
                    avail = sched.avail[signal]
                    state_at(avail if avail < n_states else n_states - 1).loads.append(
                        RegisterLoad(solution.register_of(signal), inst_id, out_port)
                    )

    return FSMController(f"{dfg.name}_fsm", states)
