"""Construct the structural datapath netlist and FSM from a solution.

The netlist is the arbiter for area (cells + inferred muxes +
interconnect measure) and the object RTL embedding works on; the FSM
controller is part of the synthesized deliverable ("a datapath netlist,
and a finite-state machine description of the controller", Section 5).

Port id convention: primary inputs become PORT components ``in0``,
``in1``, ... (positional, matching the DFG's ordered input list) and
primary outputs ``out0``, ``out1``, ...  — positional ids are what lets
:func:`repro.rtl.embedding.embed_netlists` overlay module boundaries of
two different behaviors.
"""

from __future__ import annotations

from ..dfg.graph import NodeKind, Signal
from ..errors import DFGError
from ..rtl.components import (
    Component,
    ComponentKind,
    Connection,
    DatapathNetlist,
)
from ..rtl.controller import (
    ControllerState,
    FSMController,
    MuxSelect,
    RegisterLoad,
    UnitStart,
)
from .solution import Solution

__all__ = ["build_netlist", "build_controller", "operand_port_map"]


def operand_port_map(solution: Solution, group: tuple[str, ...]) -> dict[tuple[str, int], int]:
    """Assign instance input-port indices to a task's external operands.

    For a singleton execution the DFG ports map through directly; for a
    chain, external operands are numbered in (node, port) order — the
    convention both the netlist builder and the controller share.
    """
    inside = set(group)
    mapping: dict[tuple[str, int], int] = {}
    next_port = 0
    for node_id in group:
        for edge in solution.dfg.in_edges(node_id):
            if edge.src in inside:
                continue
            mapping[(node_id, edge.dst_port)] = next_port
            next_port += 1
    return mapping


def _source_component(
    solution: Solution, signal: Signal
) -> tuple[str, int]:
    """The netlist component/port a consumer reads *signal* from."""
    src_node = solution.dfg.node(signal[0])
    if src_node.kind == NodeKind.CONST:
        return (f"k_{signal[0]}", 0)
    return (solution.register_of(signal), 0)


def build_netlist(
    solution: Solution,
    name: str | None = None,
    skip_input_registers: bool = False,
) -> DatapathNetlist:
    """Build the structural netlist implied by the solution's bindings.

    ``skip_input_registers=True`` is used when packaging a sub-solution
    as a complex RTL module: the module's inputs are already held in the
    *parent* datapath's registers for as long as the module's profile
    needs them, so registers that exist purely to sample primary inputs
    are omitted and consumers are wired to the input ports directly
    (otherwise every hierarchy level would pay for the same value
    twice).
    """
    dfg = solution.dfg
    # Built in bulk (plain list/set, adopted via ``_from_parts``): the
    # netlist is rebuilt for every priced candidate, and the per-call
    # bookkeeping of ``add_component``/``connect`` is measurable there.
    # Validity is by construction — every connection endpoint below is a
    # component this same function just created — with one duplicate-id
    # check at the end.
    comps: list[Component] = []
    conns: set[Connection] = set()

    input_regs: set[str] = set()
    if skip_input_registers:
        input_signals = {(input_id, 0) for input_id in dfg.inputs}
        for reg_id, signals in solution.reg_signals.items():
            if signals and all(s in input_signals for s in signals):
                input_regs.add(reg_id)

    #: Input signals served straight from their port.
    direct_inputs: dict[tuple[str, int], str] = {}
    for idx, input_id in enumerate(dfg.inputs):
        if skip_input_registers:
            signal = (input_id, 0)
            if solution.register_of(signal) in input_regs:
                direct_inputs[signal] = f"in{idx}"

    for idx, _input in enumerate(dfg.inputs):
        comps.append(Component(f"in{idx}", ComponentKind.PORT, "in"))
    for idx, _output in enumerate(dfg.outputs):
        comps.append(Component(f"out{idx}", ComponentKind.PORT, "out"))
    for node in dfg.nodes():
        if node.kind == NodeKind.CONST:
            comps.append(Component(f"k_{node.node_id}", ComponentKind.PORT, "const"))

    register_cell_name = solution.library.register_cell.name
    for reg_id, signals in solution.reg_signals.items():
        if reg_id in input_regs:
            continue
        reg_width = max(
            (dfg.node(src).width for src, _port in signals), default=16
        )
        comps.append(
            Component(reg_id, ComponentKind.REGISTER, register_cell_name, reg_width)
        )

    for inst_id, inst in solution.instances.items():
        if inst.is_module:
            assert inst.module is not None
            comps.append(Component(inst_id, ComponentKind.MODULE, inst.module.name))
        else:
            assert inst.cell is not None
            inst_width = max(
                (
                    dfg.node(node_id).width
                    for group in solution.executions[inst_id]
                    for node_id in group
                ),
                default=16,
            )
            comps.append(
                Component(inst_id, ComponentKind.FUNCTIONAL, inst.cell.name, inst_width)
            )

    def source_of(signal):
        if signal in direct_inputs:
            return (direct_inputs[signal], 0)
        return _source_component(solution, signal)

    # Primary inputs are sampled into their registers (unless served
    # directly from the module boundary).
    for idx, input_id in enumerate(dfg.inputs):
        signal = (input_id, 0)
        if signal in direct_inputs:
            continue
        conns.add(Connection(f"in{idx}", 0, solution.register_of(signal), 0))

    registered = set(solution.registered_signals())

    for inst_id, execs in solution.executions.items():
        inst = solution.instances[inst_id]
        for group in execs:
            # Inlined operand_port_map: external operands get sequential
            # instance ports in the very (node, edge) order walked here,
            # so the port index is just a counter.
            inside = set(group)
            port = 0
            for node_id in group:
                for edge in solution.dfg.in_edges(node_id):
                    if edge.src in inside:
                        continue
                    src, src_port = source_of(edge.signal)
                    conns.add(Connection(src, src_port, inst_id, port))
                    port += 1
            # Produced signals land in their registers.
            if inst.is_module:
                (node_id,) = group
                node = dfg.node(node_id)
                for out_port in range(node.n_outputs):
                    signal = (node_id, out_port)
                    if signal in registered:
                        conns.add(
                            Connection(
                                inst_id, out_port, solution.register_of(signal), 0
                            )
                        )
            else:
                for node_id in group:
                    signal = (node_id, 0)
                    if signal in registered:
                        conns.add(
                            Connection(inst_id, 0, solution.register_of(signal), 0)
                        )

    for idx, output_id in enumerate(dfg.outputs):
        (edge,) = dfg.in_edges(output_id)
        src, src_port = source_of(edge.signal)
        conns.add(Connection(src, src_port, f"out{idx}", 0))

    components = {comp.comp_id: comp for comp in comps}
    if len(components) != len(comps):
        raise DFGError(
            f"duplicate component ids while building netlist for {dfg.name!r}"
        )
    return DatapathNetlist._from_parts(
        name or f"{dfg.name}_dp", components, conns
    )


def build_controller(
    solution: Solution, netlist: DatapathNetlist | None = None
) -> FSMController:
    """Derive the per-cycle control word sequence from the schedule."""
    if netlist is None:
        netlist = build_netlist(solution)
    sched = solution.schedule()
    dfg = solution.dfg
    n_states = max(sched.length, 1)
    states = [ControllerState(cycle=c) for c in range(n_states)]

    def state_at(cycle: int) -> ControllerState:
        return states[min(cycle, n_states - 1)]

    registered = set(solution.registered_signals())

    # Input sampling in cycle 0.
    for idx, input_id in enumerate(dfg.inputs):
        signal = (input_id, 0)
        state_at(0).loads.append(
            RegisterLoad(solution.register_of(signal), f"in{idx}", 0)
        )

    for inst_id, execs in solution.executions.items():
        inst = solution.instances[inst_id]
        for k, group in enumerate(execs):
            task = solution.task(f"{inst_id}#{k}")
            start = sched.start[task.task_id]
            if inst.is_module:
                (node_id,) = group
                op_name = dfg.node(node_id).behavior or "?"
            else:
                op_name = "+".join(
                    str(dfg.node(n).op) for n in group if dfg.node(n).op
                )
            state_at(start).starts.append(UnitStart(inst_id, op_name))

            # Mux selects for multi-source operand ports, asserted when read.
            ports = operand_port_map(solution, group)
            inside = set(group)
            for node_id in group:
                for edge in dfg.in_edges(node_id):
                    if edge.src in inside:
                        continue
                    port = ports[(node_id, edge.dst_port)]
                    if len(netlist.sources_of(inst_id, port)) > 1:
                        src, src_port = _source_component(solution, edge.signal)
                        read_at = start + task.offset_of(node_id, edge.dst_port)
                        state_at(read_at).selects.append(
                            MuxSelect(inst_id, port, src, src_port)
                        )

            # Register loads when produced values become available.
            for node_id in group:
                node = dfg.node(node_id)
                for out_port in range(node.n_outputs):
                    signal = (node_id, out_port)
                    if signal not in registered:
                        continue
                    avail = sched.avail[signal]
                    state_at(avail if avail < n_states else n_states - 1).loads.append(
                        RegisterLoad(solution.register_of(signal), inst_id, out_port)
                    )

    return FSMController(f"{dfg.name}_fsm", states)
