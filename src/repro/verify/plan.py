"""Derive the interpreter's semantic tables from a bound solution.

The RTL interpreter (:mod:`repro.rtl.interpreter`) executes a netlist
under its FSM controller, but neither of those objects knows what a
functional unit *computes* — the netlist is purely structural and the
controller purely sequential.  This module supplies the missing
"datasheet": for every scheduled activation it derives the operand-read
timing (including register write-through bypasses), per-output
latencies, and a bit-true compute function built
from the DFG operations (simple cells and chains) or from the behavior's
reference DFG (complex modules).

Everything here intentionally mirrors the conventions of
:mod:`repro.synthesis.datapath_build` — operand-port numbering via
:func:`operand_port_map`, start/read/load placement from the schedule,
and the final-state clamp for end-of-schedule loads.  The mirroring is
what makes the differential check meaningful: the plan describes what
the binding *intends*, the netlist + controller describe what was
*emitted*, and the interpreter faults or diverges when they disagree.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..dfg.graph import DFG, NodeKind
from ..dfg.hierarchy import Design
from ..dfg.ops import apply_operation, wrap_to_width
from ..errors import VerificationError
from ..power.simulate import simulate_subgraph
from ..rtl.interpreter import (
    ExecPlan,
    ExecSemantics,
    OutputSpec,
    ReadSpec,
    RTLInterpreter,
)
from ..synthesis.datapath_build import (
    build_controller,
    build_netlist,
    operand_port_map,
)
from ..synthesis.solution import Solution

__all__ = ["build_exec_plan", "build_interpreter"]


def _wrap_scalar(value: int, width: int) -> int:
    return int(wrap_to_width(np.asarray([value], dtype=np.int64), width)[0])


def _cell_compute(
    dfg: DFG, group: tuple[str, ...], ports: dict[tuple[str, int], int]
) -> Callable[[int, dict[int, int]], int]:
    """Bit-true evaluation of a (possibly chained) cell activation.

    Nodes of a chain are listed in dependency order; intermediate values
    travel combinationally inside the activation and only the last
    node's result reaches the unit's output port 0.
    """
    inside = set(group)

    def compute(port: int, operands: dict[int, int]) -> int:
        values: dict[str, int] = {}
        for node_id in group:
            node = dfg.node(node_id)
            args = []
            for edge in dfg.in_edges(node_id):
                if edge.src in inside:
                    args.append(values[edge.src])
                else:
                    args.append(operands[ports[(node_id, edge.dst_port)]])
            arrays = [np.asarray([a], dtype=np.int64) for a in args]
            assert node.op is not None
            values[node_id] = int(apply_operation(node.op, arrays, node.width)[0])
        return values[group[-1]]

    return compute


class _BehaviorEval:
    """Memoized single-sample evaluation of one behavior's reference DFG."""

    def __init__(self, design: Design, behavior: str):
        if not design.has_behavior(behavior):
            raise VerificationError(
                f"cannot verify module activation: behavior {behavior!r} "
                "has no DFG registered in the design"
            )
        self.design = design
        self.sub = design.default_variant(behavior)
        self._cache: dict[tuple[int, ...], tuple[int, ...]] = {}

    def compute(self, port: int, operands: dict[int, int]) -> int:
        key = tuple(
            operands.get(i, 0) for i in range(len(self.sub.inputs))
        )
        if key not in self._cache:
            streams = [np.asarray([v], dtype=np.int64) for v in key]
            sim = simulate_subgraph(self.design, self.sub, streams)
            outs = []
            for name in self.sub.outputs:
                (edge,) = self.sub.in_edges(name)
                outs.append(int(sim.stream((), edge.signal)[0]))
            self._cache[key] = tuple(outs)
        return self._cache[key][port]


def build_exec_plan(design: Design, solution: Solution) -> ExecPlan:
    """Build the semantic tables for interpreting *solution*'s RTL."""
    dfg = solution.dfg
    sched = solution.schedule()
    n_states = max(sched.length, 1)
    registered = set(solution.registered_signals())
    evaluators: dict[str, _BehaviorEval] = {}

    unit_execs: dict[str, list[ExecSemantics]] = {}
    deferred: dict[tuple[str, str, int], int] = {}
    for inst_id, task_ids in sched.instance_order.items():
        inst = solution.instance(inst_id)
        execs: list[ExecSemantics] = []
        for task_id in task_ids:
            task = solution.task(task_id)
            group = task.nodes
            start = sched.start[task_id]
            ports = operand_port_map(solution, group)
            inside = set(group)

            reads: list[ReadSpec] = []
            for node_id in group:
                for edge in dfg.in_edges(node_id):
                    if edge.src in inside:
                        continue
                    offset = task.offset_of(node_id, edge.dst_port)
                    is_const = dfg.node(edge.src).kind == NodeKind.CONST
                    bypass = (
                        not is_const
                        and start + offset == sched.avail[edge.signal]
                    )
                    reads.append(
                        ReadSpec(
                            ports[(node_id, edge.dst_port)], offset, bypass
                        )
                    )

            if inst.is_module:
                (node_id,) = group
                node = dfg.node(node_id)
                assert node.behavior is not None
                op_label = node.behavior
                if node.behavior not in evaluators:
                    evaluators[node.behavior] = _BehaviorEval(
                        design, node.behavior
                    )
                ev = evaluators[node.behavior]
                if len(ev.sub.inputs) != len(dfg.in_edges(node_id)):
                    raise VerificationError(
                        f"hier node {node_id!r} has {len(dfg.in_edges(node_id))} "
                        f"operands but behavior {node.behavior!r} declares "
                        f"{len(ev.sub.inputs)} inputs"
                    )
                outputs = tuple(
                    OutputSpec(port, task.latency_of((node_id, port)))
                    for port in range(node.n_outputs)
                )
                compute = ev.compute
            else:
                op_label = "+".join(
                    str(dfg.node(n).op) for n in group if dfg.node(n).op
                )
                outputs = (OutputSpec(0, task.latency_of((group[-1], 0))),)
                compute = _cell_compute(dfg, group, ports)

            execs.append(
                ExecSemantics(
                    unit=inst_id,
                    op_label=op_label,
                    reads=tuple(reads),
                    outputs=outputs,
                    compute=compute,
                )
            )

            # End-of-schedule loads the controller clamps into its final
            # state: results available only when the schedule ends.
            for node_id in group:
                node = dfg.node(node_id)
                for out_port in range(node.n_outputs):
                    signal = (node_id, out_port)
                    if signal not in registered:
                        continue
                    if sched.avail[signal] >= n_states:
                        key = (
                            solution.register_of(signal),
                            inst_id,
                            out_port,
                        )
                        deferred[key] = deferred.get(key, 0) + 1
        unit_execs[inst_id] = execs

    const_values = {
        f"k_{node.node_id}": _wrap_scalar(node.value or 0, node.width)
        for node in dfg.nodes()
        if node.kind == NodeKind.CONST
    }

    # Outputs fed by a value born exactly at the schedule boundary are
    # sampled through the closing-edge write-through path.
    output_bypass: set[str] = set()
    for idx, output_id in enumerate(dfg.outputs):
        (edge,) = dfg.in_edges(output_id)
        if edge.signal in registered and sched.avail[edge.signal] >= n_states:
            output_bypass.add(f"out{idx}")

    return ExecPlan(
        unit_execs=unit_execs,
        const_values=const_values,
        deferred_loads=deferred,
        output_bypass=output_bypass,
    )


def build_interpreter(design: Design, solution: Solution) -> RTLInterpreter:
    """Netlist + controller + plan, assembled into a ready interpreter."""
    netlist = build_netlist(solution)
    controller = build_controller(solution, netlist)
    plan = build_exec_plan(design, solution)
    return RTLInterpreter(netlist, controller, plan)
