"""Differential verification of synthesized RTL against the behavior.

:func:`verify_solution` runs the same stimulus through two independent
semantic paths and compares them sample by sample:

* the **reference**: bit-true DFG simulation
  (:func:`repro.power.simulate.simulate_subgraph`) — pure dataflow, no
  notion of clocks, sharing or registers;
* the **DUT**: the cycle-accurate RTL interpreter executing the
  netlist and FSM controller emitted for the bound solution.

Any committed move (cell swap, resynthesis, sharing/embedding, split)
must leave the two paths in agreement; a corrupted binding, schedule or
controller shows up as either a value divergence on a primary output or
a structural fault (an X read, a missing mux select, ...) inside the
interpreter.

On failure the oracle reports the first divergent ``(sample, output,
cycle)`` and *shrinks* the stimulus: samples are independent (the FSM
restarts each sample), so the repro is a single input vector, whose
values are then greedily driven toward zero while the divergence
persists.  The resulting :class:`Counterexample` is small enough to
paste into a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dfg.hierarchy import Design
from ..errors import VerificationError
from ..power.simulate import SimTrace, simulate_subgraph
from ..power.traces import TraceSet
from ..rtl.interpreter import InterpreterFault, RTLInterpreter
from ..synthesis.solution import Solution
from .plan import build_interpreter

__all__ = ["Counterexample", "VerificationResult", "verify_solution"]


@dataclass(frozen=True)
class Counterexample:
    """A minimal failing stimulus with the first point of divergence."""

    #: Index of the failing sample in the original stimulus.
    sample: int
    #: DFG primary-output node id that diverged (``None`` for a fault
    #: that aborted the sample before outputs could be read).
    output: str | None
    #: First cycle at which the divergence is observable (the first
    #: register capture that differs, or the fault cycle).
    cycle: int
    expected: int | None
    actual: int | None
    #: Interpreter fault message, when the RTL faulted instead of
    #: producing a wrong value.
    fault: str | None
    #: Shrunk input vector (primary-input name → value) reproducing the
    #: divergence in a single sample.
    inputs: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        where = f"sample {self.sample}, cycle {self.cycle}"
        if self.fault is not None:
            head = f"RTL fault at {where}: {self.fault}"
        else:
            head = (
                f"output {self.output!r} diverged at {where}: "
                f"expected {self.expected}, got {self.actual}"
            )
        stim = ", ".join(f"{k}={v}" for k, v in self.inputs.items())
        return f"{head} [inputs: {stim}]"


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one differential check."""

    ok: bool
    n_samples: int
    counterexample: Counterexample | None = None

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class _Divergence:
    output: str | None
    cycle: int
    expected: int | None
    actual: int | None
    fault: str | None


def _check_sample(
    interp: RTLInterpreter,
    inputs: list[int],
    expected_outputs: list[int],
    output_names: list[str],
    expected_loads: dict[tuple[str, int], list[int]],
) -> _Divergence | None:
    """Run one sample through the DUT; None means it agrees."""
    try:
        outcome = interp.run_sample(inputs)
    except InterpreterFault as exc:
        return _Divergence(
            output=None,
            cycle=exc.cycle,
            expected=None,
            actual=None,
            fault=str(exc),
        )
    for idx, (got, want) in enumerate(zip(outcome.outputs, expected_outputs)):
        if got != want:
            # Localize: the first register capture that differs from the
            # schedule's intent is where the wrong value was born.
            actual_loads: dict[tuple[str, int], list[int]] = {}
            for cycle, register, value in outcome.loads:
                actual_loads.setdefault((register, cycle), []).append(value)
            divergent = [
                key
                for key in set(expected_loads) | set(actual_loads)
                if sorted(expected_loads.get(key, []))
                != sorted(actual_loads.get(key, []))
            ]
            cycle = (
                min(c for _r, c in divergent) if divergent else outcome.n_cycles
            )
            return _Divergence(
                output=output_names[idx],
                cycle=cycle,
                expected=want,
                actual=got,
                fault=None,
            )
    return None


def _shrink_inputs(
    design: Design,
    solution: Solution,
    interp: RTLInterpreter,
    inputs: list[int],
) -> tuple[list[int], _Divergence]:
    """Greedily simplify a failing input vector while it still fails."""
    dfg = solution.dfg
    output_names = list(dfg.outputs)

    def attempt(candidate: list[int]) -> _Divergence | None:
        streams = [np.asarray([v], dtype=np.int64) for v in candidate]
        ref = simulate_subgraph(design, dfg, streams)
        expected = [
            int(ref.stream((), dfg.in_edges(name)[0].signal)[0])
            for name in output_names
        ]
        wrapped = [
            int(ref.stream((), (name, 0))[0]) for name in dfg.inputs
        ]
        loads = _expected_loads(solution, ref, 0)
        return _check_sample(interp, wrapped, expected, output_names, loads)

    best = list(inputs)
    divergence = attempt(best)
    assert divergence is not None, "shrinker must start from a failing vector"

    changed = True
    while changed:
        changed = False
        for idx in range(len(best)):
            if best[idx] == 0:
                continue
            for replacement in (0, best[idx] // 2):
                if replacement == best[idx]:
                    continue
                candidate = list(best)
                candidate[idx] = replacement
                result = attempt(candidate)
                if result is not None:
                    best = candidate
                    divergence = result
                    changed = True
                    break
    return best, divergence


def _expected_loads(
    solution: Solution, sim: SimTrace, sample: int
) -> dict[tuple[str, int], list[int]]:
    """The (register, cycle) → values map the schedule intends."""
    sched = solution.schedule()
    n_states = max(sched.length, 1)
    expected: dict[tuple[str, int], list[int]] = {}
    for signal in solution.registered_signals():
        avail = sched.avail[signal]
        cycle = avail if avail < n_states else n_states - 1
        register = solution.register_of(signal)
        value = int(sim.stream((), signal)[sample])
        expected.setdefault((register, cycle), []).append(value)
    return expected


def verify_solution(
    design: Design,
    solution: Solution,
    traces: TraceSet | None = None,
    *,
    sim: SimTrace | None = None,
    shrink: bool = True,
) -> VerificationResult:
    """Differentially verify *solution*'s RTL against its DFG semantics.

    Stimulus comes either from ``traces`` (primary-input name → numpy
    stream, as produced by :mod:`repro.power.traces`) or from an already
    computed ``sim`` (the memoized :class:`SimTrace` the synthesis flow
    carries around — passing it skips re-simulation entirely).

    Returns a :class:`VerificationResult`; on failure its
    ``counterexample`` pins the first divergent (sample, output, cycle)
    and, when ``shrink`` is set, a minimized single-sample stimulus.
    """
    dfg = solution.dfg
    if sim is None:
        if traces is None:
            raise VerificationError(
                "verify_solution needs either traces or a simulated sim trace"
            )
        streams = [
            np.asarray(traces[name], dtype=np.int64) for name in dfg.inputs
        ]
        sim = simulate_subgraph(design, dfg, streams)

    input_streams = [sim.stream((), (name, 0)) for name in dfg.inputs]
    output_names = list(dfg.outputs)
    output_streams = [
        sim.stream((), dfg.in_edges(name)[0].signal) for name in output_names
    ]
    n_samples = (
        int(input_streams[0].shape[0]) if input_streams else sim.n_samples
    )

    interp = build_interpreter(design, solution)
    for i in range(n_samples):
        inputs = [int(s[i]) for s in input_streams]
        expected = [int(s[i]) for s in output_streams]
        divergence = _check_sample(
            interp, inputs, expected, output_names, _expected_loads(solution, sim, i)
        )
        if divergence is None:
            continue
        if shrink:
            shrunk, divergence = _shrink_inputs(design, solution, interp, inputs)
        else:
            shrunk = inputs
        return VerificationResult(
            ok=False,
            n_samples=n_samples,
            counterexample=Counterexample(
                sample=i,
                output=divergence.output,
                cycle=divergence.cycle,
                expected=divergence.expected,
                actual=divergence.actual,
                fault=divergence.fault,
                inputs=dict(zip(dfg.inputs, shrunk)),
            ),
        )
    return VerificationResult(ok=True, n_samples=n_samples)
