"""Differential RTL verification (interpreter + equivalence oracle).

The synthesis flow's deliverable — a datapath netlist plus an FSM
controller — is executed cycle by cycle and cross-checked against the
bit-true DFG simulation.  See :mod:`repro.verify.oracle` for the entry
point and ``docs/VERIFICATION.md`` for the workflow.
"""

from .oracle import Counterexample, VerificationResult, verify_solution
from .plan import build_exec_plan, build_interpreter

__all__ = [
    "Counterexample",
    "VerificationResult",
    "verify_solution",
    "build_exec_plan",
    "build_interpreter",
]
