"""Command-line interface (the H-SYN executable equivalent).

Subcommands
-----------
``info``   — parse/validate a textual design and print its statistics;
``synth``  — synthesize a textual design or a built-in benchmark and
             optionally write the datapath netlist and FSM controller;
``tables`` — regenerate the paper's Table 3/Table 4 for chosen circuits;
``gen``    — emit seeded random hierarchical designs (fuzzing corpus);
``serve``  — run the synthesis job server (see ``docs/SERVICE.md``);
``submit`` — send a job to a running server;
``status`` — query a job (or the server's counters).

Examples::

    python -m repro info mydesign.dfg
    python -m repro synth --benchmark dct --laxity 2.2 --objective power \\
        --netlist dct.v --fsm dct.fsm
    python -m repro synth mydesign.dfg --sampling-ns 400 --flatten
    python -m repro tables --circuits lat,test1 --laxity-factors 1.2,2.2
    python -m repro gen --seed 7 --count 20 --out-dir corpus/
    python -m repro serve --port 8000 --workers 4 --cache-dir .repro-service
    python -m repro submit --benchmark lat --laxity 2.2 --wait
    python -m repro status 5c44bb0234854ce2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .bench_suite import benchmark_names, get_benchmark
from .dfg import Design, flatten, op_histogram, parse_design, validate_design
from .errors import ReproError
from .library import default_library
from .power import image_traces, speech_traces, white_traces
from .reporting import (
    quick_config,
    render_stats,
    render_table3,
    render_table4,
    run_sweep,
)
from .rtl import emit_controller, emit_netlist
from .search import available_policies
from .synthesis import SynthesisConfig, synthesize, synthesize_flat, voltage_scale
from .synthesis.library_gen import build_complex_library

__all__ = ["main", "build_parser"]

_TRACE_GENERATORS = {
    "speech": speech_traces,
    "white": white_traces,
    "image": image_traces,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hierarchical power/area high-level synthesis "
            "(Lakshminarayana & Jha, DAC 1998 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="validate a design and print statistics")
    info.add_argument("design", type=Path, help="textual .dfg design file")

    synth = sub.add_parser("synth", help="synthesize a design")
    source = synth.add_mutually_exclusive_group(required=True)
    source.add_argument("design", nargs="?", type=Path, default=None,
                        help="textual .dfg design file")
    source.add_argument(
        "--benchmark", choices=sorted(benchmark_names()), default=None,
        help="use a built-in benchmark instead of a file",
    )
    constraint = synth.add_mutually_exclusive_group(required=True)
    constraint.add_argument("--laxity", type=float, default=None,
                            help="laxity factor (multiple of the minimum period)")
    constraint.add_argument("--sampling-ns", type=float, default=None,
                            help="absolute sampling period in nanoseconds")
    synth.add_argument("--objective", choices=("area", "power"), default="power")
    synth.add_argument("--policy", choices=available_policies(), default=None,
                       metavar="NAME",
                       help="search policy biasing the improvement driver "
                            "(default: the paper's fixed scheme; see "
                            "docs/SEARCH.md; choices: "
                            f"{', '.join(available_policies())})")
    synth.add_argument("--portfolio", type=int, default=None, metavar="N",
                       help="run N differently-biased search policies as a "
                            "cross-pollinating portfolio and keep the best "
                            "result (never worse than the single search; "
                            "incompatible with --flatten)")
    synth.add_argument("--priors", action="store_true",
                       help="search with trace-mined move priors and, after "
                            "the run, mine this run's trace back into the "
                            "priors store (persists with --cache-dir)")
    synth.add_argument("--flatten", action="store_true",
                       help="run the flattened baseline instead of hierarchical")
    synth.add_argument("--no-library", action="store_true",
                       help="skip pre-building the complex-module library")
    synth.add_argument("--voltage-scale", action="store_true",
                       help="voltage-scale the result to just meet the period")
    synth.add_argument("--traces", choices=sorted(_TRACE_GENERATORS), default="speech")
    synth.add_argument("--samples", type=int, default=48,
                       help="trace length used for power estimation")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--effort", choices=("quick", "full"), default="quick")
    synth.add_argument("--workers", type=int, default=1,
                       help="processes for the (Vdd, clock) operating-point "
                            "sweep (1 = serial; results are identical)")
    synth.add_argument("--score-workers", type=int, default=1,
                       help="threads for candidate scoring inside each "
                            "improvement step (1 = serial; results, telemetry "
                            "and traces are identical)")
    synth.add_argument("--no-incremental", action="store_true",
                       help="price every candidate from scratch instead of "
                            "by delta against the current solution "
                            "(results are bit-identical either way)")
    synth.add_argument("--validate-incremental", action="store_true",
                       help="cross-check every delta-priced candidate against "
                            "a from-scratch evaluation and fail on any "
                            "bitwise mismatch (debug mode; slow)")
    synth.add_argument("--no-prune", action="store_true",
                       help="disable dominance/feasibility pruning of "
                            "candidates before pricing")
    synth.add_argument("--no-batch-activity", action="store_true",
                       help="price candidate activities one stream set at a "
                            "time instead of through the batched kernel "
                            "(results are bit-identical either way)")
    synth.add_argument("--no-relational", action="store_true",
                       help="discover candidate moves with the legacy "
                            "per-pair Python loops instead of the relational "
                            "engine's batched joins + lazy materialization "
                            "(results are bit-identical either way)")
    synth.add_argument("--saturate", action="store_true",
                       help="before synthesis, saturate each non-top "
                            "behavior with bit-true algebraic rewrites "
                            "(commutativity, sub->add+neg, associativity) "
                            "to a bounded fixpoint, enlarging the move-A "
                            "anisomorphic-variant space; every discovered "
                            "variant is verified bit-true before use")
    synth.add_argument("--corners", action="store_true",
                       help="after synthesis, re-price every explored "
                            "architecture across the ±10%% supply × "
                            "(-40..125 °C) corner grid and print the "
                            "per-corner Pareto report")
    synth.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                       help="persist the content-addressed synthesis store "
                            "here so later runs warm-start (results are "
                            "bit-identical cold vs. warm)")
    synth.add_argument("--no-persistent-cache", action="store_true",
                       help="with --cache-dir: read/write nothing on disk "
                            "(keeps only the in-memory point/run tiers)")
    synth.add_argument("--stats", action="store_true",
                       help="print synthesis telemetry (evaluations, cost-cache "
                            "hit rate, delta-hit rate, moves per family, "
                            "stage times)")
    synth.add_argument("--verify", action="store_true",
                       help="differentially verify the RTL: re-check every "
                            "committed improvement pass and the final "
                            "architecture against the behavioral simulation")
    synth.add_argument("--trace", type=Path, default=None, metavar="JSONL",
                       help="record the search as a structured JSONL trace "
                            "(inspect with `repro-trace report/replay/profile`)")
    synth.add_argument("--no-trace-timings", action="store_true",
                       help="omit wall-clock spans from the trace, making it "
                            "byte-reproducible across runs and worker counts")
    synth.add_argument("--profile", type=Path, default=None, metavar="PSTATS",
                       help="run synthesis under cProfile and dump the stats "
                            "here (inspect with `python -m pstats`)")
    synth.add_argument("--netlist", type=Path, default=None,
                       help="write the structural datapath netlist here")
    synth.add_argument("--fsm", type=Path, default=None,
                       help="write the FSM controller description here")

    tables = sub.add_parser("tables", help="regenerate Tables 3 and 4")
    tables.add_argument("--circuits", default="lat,test1",
                        help="comma-separated benchmark names")
    tables.add_argument("--laxity-factors", default="1.2,2.2",
                        help="comma-separated laxity factors")
    tables.add_argument("--workers", type=int, default=1,
                        help="processes for each run's operating-point sweep")
    tables.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="persist the synthesis store here so repeated "
                             "table regenerations warm-start")

    cache = sub.add_parser(
        "cache", help="inspect or clear a persistent synthesis store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print entry counts and size of a store"
    )
    cache_stats.add_argument("--cache-dir", type=Path, required=True,
                             metavar="DIR", help="store directory to inspect")
    cache_clear = cache_sub.add_parser(
        "clear", help="delete every entry from a store"
    )
    cache_clear.add_argument("--cache-dir", type=Path, required=True,
                             metavar="DIR", help="store directory to clear")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict oldest entries beyond a size bound"
    )
    cache_prune.add_argument("--cache-dir", type=Path, required=True,
                             metavar="DIR", help="store directory to prune")
    cache_prune.add_argument("--max-entries", type=int, required=True,
                             help="keep at most this many entries "
                                  "(oldest-inserted evicted first)")

    gen = sub.add_parser(
        "gen",
        help="generate seeded random hierarchical designs",
    )
    gen.add_argument("--seed", type=int, default=0,
                     help="base seed; per-design seeds derive from it")
    gen.add_argument("--count", type=int, default=1,
                     help="number of designs to generate")
    gen.add_argument("--out-dir", type=Path, default=None, metavar="DIR",
                     help="write a corpus (design files + manifest.json) "
                          "here instead of printing designs to stdout")
    gen.add_argument("--hierarchy-depth", type=int, default=None,
                     help="maximum hierarchy depth (1 = flat)")
    gen.add_argument("--max-ops", type=int, default=None,
                     help="upper bound of simple operations per DFG body")
    gen.add_argument("--max-variants", type=int, default=None,
                     help="upper bound of DFG variants per behavior "
                          "(>1 exercises anisomorphic-module moves)")
    gen.add_argument("--stimulus", choices=sorted(_TRACE_GENERATORS),
                     default=None, help="paired stimulus family")
    gen.add_argument("--samples", type=int, default=None,
                     help="samples per input in the paired stimulus")

    serve = sub.add_parser(
        "serve", help="run the synthesis job server (see docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port; 0 binds an ephemeral free port "
                            "(the chosen port is printed at startup)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes synthesizing jobs concurrently")
    serve.add_argument("--cache-dir", type=Path,
                       default=Path(".repro-service"), metavar="DIR",
                       help="service state directory: job registry, per-job "
                            "artifacts, and the shared persistent store")
    serve.add_argument("--store-shards", type=int, default=None,
                       help="shard the persistent store across N SQLite "
                            "files to spread writer contention (default: "
                            "auto-detect the on-disk layout)")
    serve.add_argument("--threads", action="store_true",
                       help="thread workers instead of processes (hermetic "
                            "tests, platforms without process pools)")
    serve.add_argument("--prune-jobs", type=int, default=None, metavar="N",
                       help="at boot, keep at most N finished jobs in the "
                            "registry (oldest dropped, with their artifacts)")
    serve.add_argument("--prune-store", type=int, default=None, metavar="N",
                       help="at boot, keep at most N persistent-store "
                            "entries (oldest-inserted evicted first)")

    submit = sub.add_parser(
        "submit", help="submit a synthesis job to a running server"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8000",
                        help="base URL of the job server")
    submit_source = submit.add_mutually_exclusive_group(required=True)
    submit_source.add_argument("design", nargs="?", type=Path, default=None,
                               help="textual .dfg design file (sent inline)")
    submit_source.add_argument(
        "--benchmark", choices=sorted(benchmark_names()), default=None,
        help="use a built-in benchmark instead of a file",
    )
    submit_source.add_argument("--gen-seed", type=int, default=None,
                               help="synthesize the seeded generated design "
                                    "(repro.gen) with this seed")
    submit_constraint = submit.add_mutually_exclusive_group(required=True)
    submit_constraint.add_argument(
        "--laxity", type=float, default=None,
        help="laxity factor (multiple of the minimum period)")
    submit_constraint.add_argument(
        "--sampling-ns", type=float, default=None,
        help="absolute sampling period in nanoseconds")
    submit.add_argument("--objective", choices=("area", "power"),
                        default="power")
    submit.add_argument("--traces", choices=sorted(_TRACE_GENERATORS),
                        default="speech")
    submit.add_argument("--samples", type=int, default=48,
                        help="trace length used for power estimation")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--effort", choices=("quick", "full"),
                        default="quick")
    submit.add_argument("--flatten", action="store_true",
                        help="run the flattened baseline instead of "
                             "hierarchical")
    submit.add_argument("--policy", choices=available_policies(),
                        default=None, metavar="NAME",
                        help="search policy biasing the improvement driver "
                             "(see docs/SEARCH.md)")
    submit.add_argument("--portfolio", type=int, default=None, metavar="N",
                        help="run N differently-biased policies as a "
                             "cross-pollinating portfolio on the server")
    submit.add_argument("--priors", action="store_true",
                        help="search with the server's trace-mined move "
                             "priors and mine this run back into them")
    submit.add_argument("--verify", action="store_true",
                        help="differentially verify the winning RTL on the "
                             "server (a failing check fails the job)")
    submit.add_argument("--trace", action="store_true",
                        help="record the search trace server-side (fetch "
                             "with `repro status <id> --trace FILE`)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its "
                             "outcome (exit 1 on a failed job)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait with --wait before giving up")

    status = sub.add_parser(
        "status", help="query a job's status, or the server's counters"
    )
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id from `repro submit`; omit to print "
                             "server-wide counters and queue depth")
    status.add_argument("--url", default="http://127.0.0.1:8000",
                        help="base URL of the job server")
    status.add_argument("--result", type=Path, default=None, metavar="JSON",
                        help="write the job's full result JSON here "
                             "(done jobs only)")
    status.add_argument("--trace", type=Path, default=None, metavar="JSONL",
                        help="write the job's recorded search trace here "
                             "(jobs submitted with --trace only)")

    hier = sub.add_parser(
        "hierarchize",
        help="derive a hierarchical design from a flat one (subproblem (i))",
    )
    hier.add_argument("design", type=Path, help="textual .dfg design file")
    hier.add_argument("--max-cluster", type=int, default=8)
    hier.add_argument("--min-cluster", type=int, default=2)
    hier.add_argument("--output", type=Path, default=None,
                      help="write the hierarchical design here (textual format)")
    return parser


def _load_design(path: Path) -> Design:
    design = parse_design(
        path.read_text(), name_hint=path.stem, source=path.name
    )
    validate_design(design)
    return design


def _cmd_info(args: argparse.Namespace) -> int:
    design = _load_design(args.design)
    flat = flatten(design)
    print(f"design {design.name!r}: {len(list(design.dfgs()))} DFGs, "
          f"top {design.top_name!r}, hierarchy depth {design.depth()}")
    print(f"behaviors: {', '.join(sorted(design.behaviors()))}")
    print(f"flattened: {len(flat.op_nodes())} operations, "
          f"{len(flat.inputs)} inputs, {len(flat.outputs)} outputs")
    print("operation mix:")
    for op, count in sorted(op_histogram(flat).items(), key=lambda kv: str(kv[0])):
        print(f"  {op}: {count}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    if args.benchmark:
        design = get_benchmark(args.benchmark)
    else:
        design = _load_design(args.design)

    if args.portfolio is not None:
        if args.flatten:
            print("error: --portfolio is incompatible with --flatten",
                  file=sys.stderr)
            return 2
        if args.portfolio < 1:
            print("error: --portfolio needs N >= 1", file=sys.stderr)
            return 2

    config = quick_config() if args.effort == "quick" else SynthesisConfig()
    config.n_workers = args.workers
    config.score_workers = args.score_workers
    config.incremental = not args.no_incremental
    config.validate_incremental = args.validate_incremental
    config.prune = not args.no_prune
    config.batch_activity = not args.no_batch_activity
    config.relational = not args.no_relational
    config.verify_moves = args.verify
    # Set before the library build so module pre-characterization also
    # warm-starts from (and feeds) the persistent store.
    config.cache_dir = str(args.cache_dir) if args.cache_dir else None
    config.persistent_cache = not args.no_persistent_cache
    if args.policy:
        config.search_policy = args.policy
    elif args.priors:
        config.search_policy = "priors"
    if args.priors and not args.cache_dir:
        print("note: --priors without --cache-dir starts from empty priors "
              "and persists nothing", file=sys.stderr)
    if args.saturate:
        # Saturation runs before the library build: every verified
        # variant registers as an anisomorphic alternative of its
        # behavior, and build_complex_library then characterizes it
        # into the complex-module library move A draws from.
        from .synthesis.saturate import saturate_design

        n_new = saturate_design(design)
        print(f"equivalence saturation: {n_new} new bit-true variant(s)",
              file=sys.stderr)
    library = default_library()
    built_library = False
    if not args.no_library and not args.flatten and any(
        dfg.hier_nodes() for dfg in design.dfgs()
    ):
        print("building complex-module library...", file=sys.stderr)
        # Library preparation is untraced: only the main run's search
        # belongs in the trace (config.trace is still False here).
        library = build_complex_library(design, library, config=config)
        built_library = True

    if args.trace:
        config.trace = True
        config.trace_timings = not args.no_trace_timings
        # Everything `repro-trace replay` needs to rebuild this run
        # without the original process (see repro.trace.replay).
        config.trace_meta = {
            "benchmark": args.benchmark,
            "design_path": str(args.design) if args.design else None,
            "traces": args.traces,
            "seed": args.seed,
            "samples": args.samples,
            "built_library": built_library,
        }
    elif args.priors:
        # Priors are mined from the structured trace, so record it even
        # when no trace file was requested.
        config.trace = True

    trace_gen = _TRACE_GENERATORS[args.traces]
    traces = trace_gen(design.top, n=args.samples, seed=args.seed)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    portfolio = None
    if args.portfolio is not None:
        from .search import portfolio_synthesize

        portfolio = portfolio_synthesize(
            design,
            library,
            sampling_ns=args.sampling_ns,
            laxity_factor=args.laxity,
            objective=args.objective,
            traces=traces,
            config=config,
            n_samples=args.samples,
            n_members=args.portfolio,
        )
        result = portfolio.result
    else:
        run = synthesize_flat if args.flatten else synthesize
        result = run(
            design,
            library,
            sampling_ns=args.sampling_ns,
            laxity_factor=args.laxity,
            objective=args.objective,
            traces=traces,
            config=config,
            n_samples=args.samples,
        )
    if args.voltage_scale:
        result = voltage_scale(result, continuous=True)
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(args.profile)

    sched = result.solution.schedule()
    print(f"objective:      {args.objective}"
          f"{' (flattened)' if args.flatten else ''}")
    print(f"area:           {result.area:.1f}")
    print(f"power:          {result.power:.4f}")
    print(f"supply:         {result.vdd:.2f} V")
    print(f"clock:          {result.clk_ns:.2f} ns")
    print(f"schedule:       {sched.length} cycles "
          f"(budget {result.solution.deadline_cycles})")
    print(f"sampling:       {result.sampling_ns:.1f} ns")
    print(f"synthesis time: {result.elapsed_s:.2f} s")
    if portfolio is not None and portfolio.winner is not None:
        winner = portfolio.winner
        print(f"portfolio:      {args.portfolio} member(s) × "
              f"{portfolio.generations} generation(s), winner "
              f"{winner.policy!r} (generation {winner.generation}, "
              f"member {winner.member}) in {portfolio.elapsed_s:.2f} s")
    if args.verify:
        check = result.verify()
        if not check.ok:
            assert check.counterexample is not None
            print(f"verification:   FAILED — {check.counterexample.describe()}",
                  file=sys.stderr)
            return 1
        print(f"verification:   OK ({check.n_samples} samples, "
              f"{result.telemetry.verify_checks} checks)")
    if args.corners:
        from .reporting import evaluate_corners, render_corner_report

        store = None
        prefix = None
        if config.cache_dir:
            from .synthesis.store import SynthesisStore, context_signature

            store = SynthesisStore.from_config(config)
            prefix = context_signature(library, config)
        try:
            report = evaluate_corners(result, store=store, store_prefix=prefix)
        finally:
            if store is not None:
                store.close()
        print()
        print(render_corner_report(report))
    if args.stats:
        print()
        print(render_stats(result.telemetry, history=result.history))
        if portfolio is not None:
            print()
            print("portfolio members:")
            for m in portfolio.members:
                print(f"  generation {m.generation} member {m.member} "
                      f"({m.policy}): cost {m.cost:.4g}, "
                      f"{m.evaluations} evaluations, {m.elapsed_s:.2f} s")
    if args.trace:
        from .trace import write_trace

        n_events = write_trace(result.trace_events, args.trace)
        print(f"trace written to {args.trace} ({n_events} events)")
    if args.priors:
        from .dfg.canonical import design_fingerprint
        from .search.priors import mine_events, save_priors

        table = mine_events(result.trace_events or [])
        if config.cache_dir:
            from .synthesis.store import SynthesisStore

            store = SynthesisStore.from_config(config)
            try:
                fingerprint = design_fingerprint(
                    result.design, result.design.top
                )
                save_priors(store, fingerprint, table)
            finally:
                store.close()
            print(f"priors: mined {len(table.stats)} (regime, kind) "
                  f"statistics into {args.cache_dir}")
        else:
            print(f"priors: mined {len(table.stats)} (regime, kind) "
                  f"statistics (not persisted; no --cache-dir)")
    if args.profile:
        print(f"profile written to {args.profile}")

    if args.netlist:
        args.netlist.write_text(emit_netlist(result.netlist()) + "\n")
        print(f"netlist written to {args.netlist}")
    if args.fsm:
        args.fsm.write_text(emit_controller(result.controller()) + "\n")
        print(f"controller written to {args.fsm}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    circuits = tuple(c.strip() for c in args.circuits.split(",") if c.strip())
    laxities = tuple(float(x) for x in args.laxity_factors.split(","))
    config = quick_config()
    config.n_workers = args.workers
    config.cache_dir = str(args.cache_dir) if args.cache_dir else None
    results = run_sweep(
        circuits=circuits,
        laxity_factors=laxities,
        config=config,
        verbose=True,
    )
    print()
    print(render_table3(results))
    print()
    print(render_table4(results))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .synthesis.store import SynthesisStore

    store = SynthesisStore(cache_dir=str(args.cache_dir))
    try:
        if not store.persistent:
            print(f"error: no usable store under {args.cache_dir}",
                  file=sys.stderr)
            return 1
        if args.cache_command == "stats":
            stats = store.persistent_stats()
            print(f"store:   {stats['path']}")
            if stats.get("shards", 1) > 1:
                print(f"shards:  {stats['shards']}")
            print(f"entries: {stats['total_entries']}")
            for ns, count in sorted(stats["entries"].items()):
                print(f"  {ns}: {count}")
            print(f"size:    {stats['bytes']} bytes")
            return 0
        if args.cache_command == "prune":
            removed = store.prune_persistent(args.max_entries)
            kept = store.persistent_stats()["total_entries"]
            print(f"pruned {removed} entries from {args.cache_dir} "
                  f"({kept} kept)")
            return 0
        assert args.cache_command == "clear"
        removed = store.clear_persistent()
        print(f"cleared {removed} entries from {args.cache_dir}")
        return 0
    finally:
        store.close()


def _cmd_gen(args: argparse.Namespace) -> int:
    import dataclasses

    from .gen import GenConfig, generate_batch, write_corpus

    config = GenConfig()
    overrides: dict[str, object] = {}
    if args.hierarchy_depth is not None:
        overrides["hierarchy_depth"] = args.hierarchy_depth
    if args.max_ops is not None:
        lo = min(config.ops_per_dfg[0], args.max_ops)
        overrides["ops_per_dfg"] = (lo, args.max_ops)
    if args.max_variants is not None:
        lo = min(config.variants_per_behavior[0], args.max_variants)
        overrides["variants_per_behavior"] = (lo, args.max_variants)
    if args.stimulus is not None:
        overrides["stimulus"] = args.stimulus
    if args.samples is not None:
        overrides["n_samples"] = args.samples
    if overrides:
        config = dataclasses.replace(config, **overrides)

    generated = generate_batch(args.seed, args.count, config)
    if args.out_dir is not None:
        manifest = write_corpus(args.out_dir, generated)
        total_ops = sum(g.design.total_operations() for g in generated)
        print(f"wrote {len(generated)} designs ({total_ops} operations) "
              f"to {args.out_dir}")
        print(f"manifest: {manifest}")
        return 0
    for gen in generated:
        sys.stdout.write(gen.text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=str(args.cache_dir),
        store_shards=args.store_shards,
        use_processes=not args.threads,
        prune_jobs=args.prune_jobs,
        prune_store=args.prune_store,
    )
    return run_service(config)


def _print_job_status(status: dict) -> None:
    print(f"job {status['job_id']}: {status['state']}"
          f"{' (served from store)' if status['served_from_store'] else ''}"
          f" — {status['clients']} client(s)")
    if status.get("error"):
        print(f"error: {status['error']}")
    summary = status.get("summary")
    if summary:
        print(f"area:   {summary['area']:.1f}")
        print(f"power:  {summary['power']:.4f}")
        print(f"supply: {summary['vdd']:.2f} V")
        print(f"clock:  {summary['clk_ns']:.2f} ns")
    for event in status.get("progress", []):
        fields = {k: v for k, v in event.items() if k not in ("k", "ts")}
        detail = ", ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        print(f"  {event['k']}{': ' + detail if detail else ''}")


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import JobRequest, ServiceClient

    request = JobRequest(
        design_text=args.design.read_text() if args.design else None,
        benchmark=args.benchmark,
        gen_seed=args.gen_seed,
        objective=args.objective,
        laxity_factor=args.laxity,
        sampling_ns=args.sampling_ns,
        traces=args.traces,
        samples=args.samples,
        seed=args.seed,
        effort=args.effort,
        flatten=args.flatten,
        verify=args.verify,
        trace=args.trace,
        policy=args.policy,
        portfolio=args.portfolio,
        priors=args.priors,
    )
    client = ServiceClient(args.url)
    receipt = client.submit(request)
    how = (
        "coalesced onto a running job" if receipt["coalesced"]
        else "served from store" if receipt["served_from_store"]
        else "dispatched"
    )
    print(f"job {receipt['job_id']}: {receipt['state']} ({how})")
    if args.wait:
        final = client.wait(receipt["job_id"], timeout_s=args.timeout)
        _print_job_status(final)
        return 1 if final["state"] == "failed" else 0
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id is None:
        stats = client.stats()
        print(f"workers: {stats['workers']}")
        print("counters:")
        for key, value in sorted(stats["counters"].items()):
            print(f"  {key}: {value}")
        queue = stats["queue"]
        print(f"queue:   depth {queue['depth']} "
              f"(queued {queue['queued']}, running {queue['running']}, "
              f"done {queue['done']}, failed {queue['failed']})")
        store = stats["store"]
        if store:
            print(f"store:   {store.get('total_entries', 0)} entries, "
                  f"{store.get('bytes', 0)} bytes, "
                  f"{store.get('shards', 1)} shard(s)")
        return 0
    status = client.status(args.job_id)
    _print_job_status(status)
    if args.result is not None:
        import json as _json

        result = client.result(args.job_id)["result"]
        args.result.write_text(_json.dumps(result, indent=2, sort_keys=True)
                               + "\n")
        print(f"result written to {args.result}")
    if args.trace is not None:
        args.trace.write_text(client.trace(args.job_id))
        print(f"trace written to {args.trace}")
    return 1 if status["state"] == "failed" else 0


def _cmd_hierarchize(args: argparse.Namespace) -> int:
    from .dfg import hierarchize, write_design

    design = _load_design(args.design)
    flat = flatten(design)
    derived = hierarchize(
        flat,
        max_cluster_size=args.max_cluster,
        min_cluster_size=args.min_cluster,
    )
    validate_design(derived)
    hier_nodes = derived.top.hier_nodes()
    behaviors = {n.behavior for n in hier_nodes}
    print(
        f"derived {len(hier_nodes)} hierarchical nodes over "
        f"{len(behaviors)} behaviors from {len(flat.op_nodes())} operations"
    )
    text = write_design(derived)
    if args.output:
        args.output.write_text(text + "\n")
        print(f"written to {args.output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "synth":
            return _cmd_synth(args)
        if args.command == "tables":
            return _cmd_tables(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "gen":
            return _cmd_gen(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "hierarchize":
            return _cmd_hierarchize(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
