"""Plain-text table rendering used by every experiment harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "fmt"]


def fmt(value, digits: int = 2) -> str:
    """Format one cell: floats to fixed digits, everything else via str."""
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    digits: int = 2,
) -> str:
    """Render a left-padded ASCII table (the benches print these)."""
    text_rows = [[fmt(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)
