"""The Table 3 / Table 4 experiment sweep.

One :class:`CellResult` holds the six synthesis runs the paper performs
per (circuit, laxity factor): flattened and hierarchical versions of
the area-optimized (5 V, later voltage-scaled) and power-optimized
architectures.  Normalization follows the paper exactly: every area and
power is divided by the area/power of the **flattened, area-optimized,
non-Vdd-scaled** circuit at the same laxity factor.

Hierarchical runs use a complex-module library pre-built from the
design's behaviors (the paper's Figure 2 library); library preparation
is an offline step and excluded from the reported synthesis times, like
the paper's CPU-time measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench_suite.registry import TABLE3_BENCHMARKS, get_benchmark
from ..library.library import default_library
from ..synthesis.api import SynthesisResult, synthesize, synthesize_flat, voltage_scale
from ..synthesis.context import SynthesisConfig
from ..synthesis.library_gen import build_complex_library

__all__ = ["CellResult", "SweepResults", "run_cell", "run_sweep", "quick_config",
           "DEFAULT_LAXITY_FACTORS"]

DEFAULT_LAXITY_FACTORS: tuple[float, ...] = (1.2, 2.2, 3.2)


def quick_config() -> SynthesisConfig:
    """Reduced-effort configuration for CI-speed sweeps."""
    return SynthesisConfig(
        max_moves=8,
        max_passes=3,
        max_ab_targets=5,
        max_share_pairs=12,
        max_split_candidates=6,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=5,
    )


@dataclass
class CellResult:
    """All six runs for one (circuit, laxity factor) table cell."""

    circuit: str
    laxity: float
    flat_area: SynthesisResult
    flat_area_scaled: SynthesisResult
    flat_power: SynthesisResult
    hier_area: SynthesisResult
    hier_area_scaled: SynthesisResult
    hier_power: SynthesisResult

    # ------------------------------------------------------------------
    # Normalized quantities (paper's Table 3 cells).  Base: flattened
    # area-optimized architecture at 5 V.
    # ------------------------------------------------------------------
    @property
    def base_area(self) -> float:
        return self.flat_area.area

    @property
    def base_power(self) -> float:
        return self.flat_area.power

    def norm_area(self, result: SynthesisResult) -> float:
        return result.area / self.base_area

    def norm_power(self, result: SynthesisResult) -> float:
        return result.power / self.base_power

    def table3_row_a(self) -> tuple[float, float, float, float]:
        """Row A: areas of (Flat-A, Flat-P, Hier-A, Hier-P)."""
        return (
            self.norm_area(self.flat_area_scaled),
            self.norm_area(self.flat_power),
            self.norm_area(self.hier_area_scaled),
            self.norm_area(self.hier_power),
        )

    def table3_row_p(self) -> tuple[float, float, float, float]:
        """Row P: powers of (Flat-A scaled, Flat-P, Hier-A scaled, Hier-P)."""
        return (
            self.norm_power(self.flat_area_scaled),
            self.norm_power(self.flat_power),
            self.norm_power(self.hier_area_scaled),
            self.norm_power(self.hier_power),
        )

    @property
    def flat_synth_time(self) -> float:
        """Mean CPU seconds of the flattened area+power runs."""
        return 0.5 * (self.flat_area.elapsed_s + self.flat_power.elapsed_s)

    @property
    def hier_synth_time(self) -> float:
        return 0.5 * (self.hier_area.elapsed_s + self.hier_power.elapsed_s)


@dataclass
class SweepResults:
    """Results of the full sweep, indexed by (circuit, laxity factor)."""

    cells: dict[tuple[str, float], CellResult] = field(default_factory=dict)

    def circuits(self) -> list[str]:
        seen: list[str] = []
        for circuit, _lf in self.cells:
            if circuit not in seen:
                seen.append(circuit)
        return seen

    def laxities(self) -> list[float]:
        return sorted({lf for _c, lf in self.cells})

    def cell(self, circuit: str, laxity: float) -> CellResult:
        return self.cells[(circuit, laxity)]


def run_cell(
    circuit: str,
    laxity: float,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
) -> CellResult:
    """Run the six syntheses of one table cell."""
    config = config or quick_config()
    design = get_benchmark(circuit)

    flat_lib = default_library()
    hier_lib = build_complex_library(
        design, default_library(), config=config, n_samples=n_samples
    )

    flat_area = synthesize_flat(
        design, flat_lib, laxity_factor=laxity, objective="area",
        config=config, n_samples=n_samples,
    )
    flat_power = synthesize_flat(
        design, flat_lib, laxity_factor=laxity, objective="power",
        config=config, n_samples=n_samples,
    )
    hier_area = synthesize(
        design, hier_lib, laxity_factor=laxity, objective="area",
        config=config, n_samples=n_samples,
    )
    hier_power = synthesize(
        design, hier_lib, laxity_factor=laxity, objective="power",
        config=config, n_samples=n_samples,
    )
    return CellResult(
        circuit=circuit,
        laxity=laxity,
        flat_area=flat_area,
        flat_area_scaled=voltage_scale(flat_area, continuous=True),
        flat_power=flat_power,
        hier_area=hier_area,
        hier_area_scaled=voltage_scale(hier_area, continuous=True),
        hier_power=hier_power,
    )


def run_sweep(
    circuits: tuple[str, ...] = TABLE3_BENCHMARKS,
    laxity_factors: tuple[float, ...] = DEFAULT_LAXITY_FACTORS,
    config: SynthesisConfig | None = None,
    n_samples: int = 48,
    verbose: bool = False,
) -> SweepResults:
    """Run every (circuit, laxity) cell of the Table 3 sweep."""
    results = SweepResults()
    for circuit in circuits:
        for laxity in laxity_factors:
            cell = run_cell(circuit, laxity, config=config, n_samples=n_samples)
            results.cells[(circuit, laxity)] = cell
            if verbose:
                row_a = cell.table3_row_a()
                row_p = cell.table3_row_p()
                print(
                    f"{circuit} LF={laxity}: "
                    f"A={['%.2f' % x for x in row_a]} "
                    f"P={['%.2f' % x for x in row_p]} "
                    f"t(fl)={cell.flat_synth_time:.1f}s t(hi)={cell.hier_synth_time:.1f}s"
                )
    return results
