"""Operating-corner grid sweep and Pareto reporting.

A synthesized architecture is committed at one nominal operating point,
but silicon ships across *corners*: supply tolerance (±10 %) crossed
with junction temperature (−40 °C … 125 °C).  This module re-prices the
architectures a synthesis run explored across such a grid and reports
the per-corner Pareto frontiers over (power, area, schedule), so the
cross-condition robustness of a power- or area-optimized circuit is
visible rather than implied by a single nominal row.

Corner evaluation reuses the voltage-scaling trick of
:func:`repro.synthesis.api.voltage_scale`: the clone's clock is
stretched by the exact CMOS delay ratio of the corner supply, which
keeps every cycle count — and therefore the schedule and binding —
identical, so the re-evaluation prices the *same* architecture at the
corner supply.  Temperature enters analytically on top (first-order
derating from :mod:`repro.library.voltage`): the corner clock is
stretched by the mobility factor for the timing check, and switched
energy is scaled by the temperature energy factor.

Corner metrics persist through the synthesis store's ``"metrics"``
namespace (content-addressed under a ``"corner"`` prefix), so repeated
reporting runs over a warm cache skip the re-evaluations entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..library.voltage import (
    T_REF,
    V_THRESHOLD,
    delay_scale,
    temperature_delay_scale,
    temperature_energy_scale,
)
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.api import PointCandidate, SynthesisResult
    from ..synthesis.store import SynthesisStore

__all__ = [
    "OperatingCorner",
    "CornerCell",
    "CornerReport",
    "DEFAULT_CORNERS",
    "corner_grid",
    "evaluate_corners",
    "pareto_indices",
    "render_corner_report",
]


@dataclass(frozen=True)
class OperatingCorner:
    """One (supply factor, junction temperature) operating condition."""

    name: str
    vdd_factor: float
    temp_c: float


def corner_grid(
    vdd_factors: Sequence[float] = (0.9, 1.0, 1.1),
    temps_c: Sequence[float] = (-40.0, T_REF, 125.0),
) -> tuple[OperatingCorner, ...]:
    """Full supply × temperature grid with canonical PVT names.

    The three classic corners get their traditional names — ``slow``
    (low supply, hot), ``typ`` (nominal, reference temperature) and
    ``fast`` (high supply, cold); the rest of the grid is named
    systematically (``v0.90/t25``).
    """
    lo, hi = min(vdd_factors), max(vdd_factors)
    canonical = {}
    if (lo, max(temps_c)) != (hi, min(temps_c)):
        # Only a grid with genuine spread has slow/fast extremes; in a
        # degenerate 1×1 grid those keys collide and neither name fits.
        canonical[(lo, max(temps_c))] = "slow"
        canonical[(hi, min(temps_c))] = "fast"
    # Inserted last: the nominal point is "typ" even when it doubles as
    # a slow/fast extreme (e.g. single-supply or single-temperature
    # grids).
    canonical[(1.0, T_REF)] = "typ"
    corners = []
    for factor in vdd_factors:
        for temp in temps_c:
            name = canonical.get(
                (factor, temp), f"v{factor:.2f}/t{temp:g}"
            )
            corners.append(OperatingCorner(name, factor, temp))
    return tuple(corners)


#: Default sweep grid: ±10 % supply crossed with the industrial
#: temperature range.
DEFAULT_CORNERS: tuple[OperatingCorner, ...] = corner_grid()


@dataclass
class CornerCell:
    """One (architecture, corner) row of the sweep."""

    corner: OperatingCorner
    #: Nominal operating point the architecture was synthesized at.
    source_vdd: float
    source_clk_ns: float
    #: Corner supply and the clock the circuit must run at there (CMOS
    #: delay ratio × temperature derating — cycle counts unchanged).
    vdd: float
    clk_ns: float
    cycles: int
    #: Does the derated schedule still fit the sampling period?
    meets_timing: bool
    area: float
    power: float
    energy_per_sample: float
    #: Schedule latency at the corner clock, ns.
    schedule_ns: float
    #: Set by :func:`evaluate_corners`: on the corner's Pareto frontier
    #: over (power, area, schedule) among timing-clean rows.
    on_frontier: bool = False


@dataclass
class CornerReport:
    """All corner cells of one sweep plus the evaluated grid."""

    corners: tuple[OperatingCorner, ...]
    cells: list[CornerCell] = field(default_factory=list)
    #: Number of distinct architectures evaluated.
    n_architectures: int = 0

    @property
    def frontier(self) -> list[CornerCell]:
        return [cell for cell in self.cells if cell.on_frontier]


def pareto_indices(points: Sequence[tuple[float, ...]]) -> list[int]:
    """Indices of non-dominated points (all objectives minimized).

    A point is dominated when another is ≤ in every coordinate and < in
    at least one; ties survive together.
    """
    front: list[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j, q in enumerate(points):
            if j == i:
                continue
            if all(qc <= pc for qc, pc in zip(q, p)) and any(
                qc < pc for qc, pc in zip(q, p)
            ):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def _architectures(result: "SynthesisResult") -> list["PointCandidate"]:
    """The sweep's feasible architectures, winner guaranteed present."""
    from ..synthesis.api import PointCandidate

    candidates = list(result.candidates)
    if not any(cand.solution is result.solution for cand in candidates):
        candidates.insert(
            0,
            PointCandidate(
                result.vdd, result.clk_ns, result.solution, result.metrics
            ),
        )
    return candidates


def _nominal_corner_metrics(
    cand: "PointCandidate",
    vdd: float,
    clk_ns: float,
    result: "SynthesisResult",
    store: "SynthesisStore | None",
    store_prefix: str | None,
) -> tuple[float, float, float, int]:
    """(power, energy, area, cycles) of *cand* rescaled to *vdd*.

    Evaluated through the same single-evaluator path as synthesis (a
    clone with the delay-ratio-stretched clock), memoized through the
    store's ``"metrics"`` namespace when one is supplied.
    """
    from ..synthesis.caching import HashedKey
    from ..synthesis.costs import EvaluationContext
    from ..synthesis.store import (
        MISSING,
        sim_level_digest,
        solution_pricing_signature,
    )

    content = key = None
    if store is not None:
        content = (
            "corner",
            store_prefix,
            solution_pricing_signature(cand.solution, result.design),
            sim_level_digest(result.sim, ()),
            round(vdd, 12),
            round(clk_ns, 12),
        )
        key = HashedKey(content)
        cached = store.get("metrics", key)
        if cached is MISSING:
            cached = store.fetch("metrics", key, content)
        if cached is not MISSING:
            return cached
    scaled = cand.solution.clone()
    scaled.vdd = vdd
    scaled.clk_ns = clk_ns
    scaled.sampling_ns = cand.solution.sampling_ns
    ctx = EvaluationContext(result.sim, (), result.objective)
    metrics = ctx.evaluate(scaled)
    data = (
        metrics.power,
        metrics.energy_per_sample,
        metrics.area,
        metrics.schedule_length,
    )
    if store is not None:
        store.put("metrics", key, content, data)
    return data


def evaluate_corners(
    result: "SynthesisResult",
    corners: Sequence[OperatingCorner] = DEFAULT_CORNERS,
    store: "SynthesisStore | None" = None,
    store_prefix: str | None = None,
) -> CornerReport:
    """Sweep every explored architecture across *corners*.

    Returns a :class:`CornerReport` whose cells carry per-corner power,
    area and schedule latency; within each corner, timing-clean cells on
    the (power, area, schedule) Pareto frontier are flagged.  Supplies
    derated below the device threshold are skipped.
    """
    candidates = _architectures(result)
    report = CornerReport(
        corners=tuple(corners), n_architectures=len(candidates)
    )
    for corner in corners:
        corner_cells: list[CornerCell] = []
        for cand in candidates:
            vdd = cand.vdd * corner.vdd_factor
            if vdd <= V_THRESHOLD + 1e-6:
                continue  # below threshold: the corner supply is unusable
            # Voltage-only stretch first (cycle counts identical), then
            # temperature derating on the corner clock.
            clk_v = cand.clk_ns * (delay_scale(vdd) / delay_scale(cand.vdd))
            clk_corner = clk_v * temperature_delay_scale(corner.temp_c)
            power, energy, area, cycles = _nominal_corner_metrics(
                cand, vdd, clk_v, result, store, store_prefix
            )
            tes = temperature_energy_scale(corner.temp_c)
            sampling_ns = cand.solution.sampling_ns
            corner_cells.append(
                CornerCell(
                    corner=corner,
                    source_vdd=cand.vdd,
                    source_clk_ns=cand.clk_ns,
                    vdd=vdd,
                    clk_ns=clk_corner,
                    cycles=cycles,
                    meets_timing=cycles * clk_corner <= sampling_ns + 1e-9,
                    area=area,
                    power=power * tes,
                    energy_per_sample=energy * tes,
                    schedule_ns=cycles * clk_corner,
                )
            )
        timed = [cell for cell in corner_cells if cell.meets_timing]
        for idx in pareto_indices(
            [(cell.power, cell.area, cell.schedule_ns) for cell in timed]
        ):
            timed[idx].on_frontier = True
        report.cells.extend(corner_cells)
    return report


def render_corner_report(report: CornerReport) -> str:
    """ASCII table of the corner sweep, frontier rows starred."""
    headers = [
        "corner", "arch", "vdd", "clk_ns", "timing",
        "power", "area", "sched_ns", "pareto",
    ]
    rows = []
    for cell in report.cells:
        rows.append(
            [
                cell.corner.name,
                f"{cell.source_vdd:g}V/{cell.source_clk_ns:.1f}ns",
                cell.vdd,
                cell.clk_ns,
                "ok" if cell.meets_timing else "MISS",
                cell.power,
                cell.area,
                cell.schedule_ns,
                "*" if cell.on_frontier else "",
            ]
        )
    title = (
        f"Operating-corner sweep ({report.n_architectures} architectures "
        f"x {len(report.corners)} corners)"
    )
    return render_table(headers, rows, title=title)
