"""Headline-claim summary: the paper's Section 5 prose, computed.

The paper closes its evaluation with four prose claims; this module
computes each from a sweep so EXPERIMENTS.md (and the benches) can
compare like with like:

1. "upto 6.7-fold reduction in power ... over area-optimized circuits
   working at 5 Volts" — the maximum 1/P ratio over hierarchical
   power-optimized cells;
2. "at area overheads not exceeding 50%" — the area overhead of that
   same best-power cell;
3. "hierarchical power-optimized designs consumed 13.3% less power than
   flattened designs optimized for power" — the mean hier/flat
   power-optimized power ratio;
4. "hierarchical area-optimized designs had an area overhead of 5.6%
   over flattened, area-optimized designs" — the mean hier/flat
   area-optimized area ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sweep import SweepResults
from .tables import render_table

__all__ = ["HeadlineClaims", "compute_claims", "render_claims"]


@dataclass
class HeadlineClaims:
    """The four Section 5 claims, as measured."""

    max_power_reduction: float
    max_power_reduction_cell: tuple[str, float]
    area_overhead_at_best: float
    hier_vs_flat_power_opt: float
    hier_vs_flat_area_opt: float


def compute_claims(results: SweepResults) -> HeadlineClaims:
    """Evaluate the headline claims over a sweep."""
    if not results.cells:
        raise ValueError("empty sweep")

    best_reduction = 0.0
    best_cell = ("", 0.0)
    best_overhead = 0.0
    power_ratios: list[float] = []
    area_ratios: list[float] = []

    for (circuit, laxity), cell in results.cells.items():
        hier_p = cell.norm_power(cell.hier_power)
        if hier_p > 0:
            reduction = 1.0 / hier_p
            if reduction > best_reduction:
                best_reduction = reduction
                best_cell = (circuit, laxity)
                best_overhead = cell.norm_area(cell.hier_power) - 1.0
        power_ratios.append(cell.hier_power.power / cell.flat_power.power)
        area_ratios.append(cell.hier_area.area / cell.flat_area.area)

    return HeadlineClaims(
        max_power_reduction=best_reduction,
        max_power_reduction_cell=best_cell,
        area_overhead_at_best=best_overhead,
        hier_vs_flat_power_opt=sum(power_ratios) / len(power_ratios),
        hier_vs_flat_area_opt=sum(area_ratios) / len(area_ratios),
    )


def render_claims(results: SweepResults) -> str:
    """Side-by-side table: paper's prose claims vs this sweep."""
    claims = compute_claims(results)
    circuit, laxity = claims.max_power_reduction_cell
    rows = [
        [
            "max power reduction (hier P-opt vs 5V A-opt)",
            "6.7x",
            f"{claims.max_power_reduction:.1f}x ({circuit} @ LF {laxity:g})",
        ],
        [
            "area overhead at that point",
            "<= 50%",
            f"{100 * claims.area_overhead_at_best:.0f}%",
        ],
        [
            "hier P-opt power vs flat P-opt (mean)",
            "-13.3%",
            f"{100 * (claims.hier_vs_flat_power_opt - 1):+.1f}%",
        ],
        [
            "hier A-opt area vs flat A-opt (mean)",
            "+5.6%",
            f"{100 * (claims.hier_vs_flat_area_opt - 1):+.1f}%",
        ],
    ]
    return render_table(
        ["claim", "paper", "measured"],
        rows,
        title="Section 5 headline claims",
    )
