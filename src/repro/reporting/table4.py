"""Rendering Table 4: per-laxity averages of area, power and CPU time.

Columns follow the paper:

* *Area ratio* — average area of power-optimized circuits over the
  flattened area-optimized base (Fl and Hi);
* *Power ratio 5V* — power-optimized power over the 5 V area-optimized
  power;
* *Power ratio Vdd-sc* — power-optimized power over the power of the
  area-optimized circuit voltage-scaled to just meet the sampling
  period;
* *Synth. time* — mean synthesis CPU seconds (area + power runs
  averaged), flattened vs hierarchical.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sweep import SweepResults
from .tables import render_table

__all__ = ["Table4Row", "table4_rows", "render_table4"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


@dataclass
class Table4Row:
    """Aggregated figures for one laxity factor."""

    laxity: float
    area_ratio_flat: float
    area_ratio_hier: float
    power_5v_flat: float
    power_5v_hier: float
    power_vddsc_flat: float
    power_vddsc_hier: float
    time_flat_s: float
    time_hier_s: float


def table4_rows(results: SweepResults) -> list[Table4Row]:
    rows: list[Table4Row] = []
    for laxity in results.laxities():
        cells = [
            results.cell(circuit, laxity) for circuit in results.circuits()
        ]
        rows.append(
            Table4Row(
                laxity=laxity,
                area_ratio_flat=_mean([c.norm_area(c.flat_power) for c in cells]),
                area_ratio_hier=_mean([c.norm_area(c.hier_power) for c in cells]),
                power_5v_flat=_mean([c.norm_power(c.flat_power) for c in cells]),
                power_5v_hier=_mean([c.norm_power(c.hier_power) for c in cells]),
                power_vddsc_flat=_mean(
                    [
                        c.flat_power.power / c.flat_area_scaled.power
                        for c in cells
                    ]
                ),
                power_vddsc_hier=_mean(
                    [
                        c.hier_power.power / c.hier_area_scaled.power
                        for c in cells
                    ]
                ),
                time_flat_s=_mean([c.flat_synth_time for c in cells]),
                time_hier_s=_mean([c.hier_synth_time for c in cells]),
            )
        )
    return rows


def render_table4(results: SweepResults) -> str:
    headers = [
        "L.F",
        "Area Fl", "Area Hi",
        "P5V Fl", "P5V Hi",
        "Pvdd Fl", "Pvdd Hi",
        "Time Fl (s)", "Time Hi (s)",
    ]
    body = [
        [
            row.laxity,
            row.area_ratio_flat, row.area_ratio_hier,
            row.power_5v_flat, row.power_5v_hier,
            row.power_vddsc_flat, row.power_vddsc_hier,
            row.time_flat_s, row.time_hier_s,
        ]
        for row in table4_rows(results)
    ]
    return render_table(
        headers,
        body,
        title="Table 4: summary of area, power and synthesis-time ratios",
    )
