"""JSON export of sweep results (for archival and external plotting).

``sweep_to_dict`` flattens a :class:`~repro.reporting.sweep.SweepResults`
into plain data: per cell the normalized Table 3 numbers, the absolute
metrics of all six runs, and the synthesis times.  ``EXPERIMENTS.md``'s
tables can be regenerated from this file alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..synthesis.api import SynthesisResult
from .sweep import CellResult, SweepResults

__all__ = ["result_to_dict", "cell_to_dict", "sweep_to_dict", "save_sweep_json"]


def result_to_dict(result: SynthesisResult) -> dict[str, Any]:
    """Serializable summary of one synthesis run."""
    return {
        "objective": result.objective,
        "flattened": result.flattened,
        "area": result.area,
        "power": result.power,
        "energy_per_sample": result.metrics.energy_per_sample,
        "vdd": result.vdd,
        "clk_ns": result.clk_ns,
        "sampling_ns": result.sampling_ns,
        "schedule_cycles": result.metrics.schedule_length,
        "elapsed_s": result.elapsed_s,
        "telemetry": result.telemetry.as_dict(),
    }


def cell_to_dict(cell: CellResult) -> dict[str, Any]:
    """Serializable summary of one Table 3 cell."""
    row_a = cell.table3_row_a()
    row_p = cell.table3_row_p()
    return {
        "circuit": cell.circuit,
        "laxity": cell.laxity,
        "normalized": {
            "area": {
                "flat_area_scaled": row_a[0],
                "flat_power": row_a[1],
                "hier_area_scaled": row_a[2],
                "hier_power": row_a[3],
            },
            "power": {
                "flat_area_scaled": row_p[0],
                "flat_power": row_p[1],
                "hier_area_scaled": row_p[2],
                "hier_power": row_p[3],
            },
        },
        "runs": {
            "flat_area": result_to_dict(cell.flat_area),
            "flat_area_scaled": result_to_dict(cell.flat_area_scaled),
            "flat_power": result_to_dict(cell.flat_power),
            "hier_area": result_to_dict(cell.hier_area),
            "hier_area_scaled": result_to_dict(cell.hier_area_scaled),
            "hier_power": result_to_dict(cell.hier_power),
        },
        "synth_time_s": {
            "flat": cell.flat_synth_time,
            "hier": cell.hier_synth_time,
        },
    }


def sweep_to_dict(results: SweepResults) -> dict[str, Any]:
    """Whole-sweep export, keyed ``"<circuit>@<laxity>"``."""
    return {
        "circuits": results.circuits(),
        "laxity_factors": results.laxities(),
        "cells": {
            f"{circuit}@{laxity:g}": cell_to_dict(cell)
            for (circuit, laxity), cell in sorted(results.cells.items())
        },
    }


def save_sweep_json(results: SweepResults, path: Path | str) -> Path:
    """Write the sweep export as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(sweep_to_dict(results), indent=2) + "\n")
    return path
