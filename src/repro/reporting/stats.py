"""Rendering of synthesis-run telemetry (the CLI's ``--stats`` view).

The engine counts what it did — evaluations, cost-cache hits, moves
tried and committed per family (A/B/C/D), operating points explored,
and per-stage wall time — in a :class:`~repro.telemetry.Telemetry`
attached to every :class:`~repro.synthesis.api.SynthesisResult`.  This
module turns one into the same plain-text table style the experiment
harness uses.
"""

from __future__ import annotations

from ..telemetry import Telemetry
from .tables import render_table

__all__ = ["render_stats"]

_FAMILY_LABELS = {
    "A": "A (module selection)",
    "B": "B (resynthesis)",
    "C": "C (sharing/embedding)",
    "D": "D (splitting)",
}


def render_stats(telemetry: Telemetry, title: str = "Synthesis statistics") -> str:
    """Render telemetry counters as a plain-text table."""
    rows: list[tuple[str, object]] = [
        ("evaluations", telemetry.evaluations),
        ("cost-cache hits", telemetry.cache_hits),
        ("cost-cache misses", telemetry.cache_misses),
        ("cost-cache hit rate", f"{telemetry.cache_hit_rate:.1%}"),
        (
            "cache misses priced",
            f"{telemetry.delta_hits} delta / "
            f"{telemetry.delta_fallbacks} fallback / "
            f"{telemetry.full_evals} full",
        ),
        ("delta-hit rate", f"{telemetry.delta_hit_rate:.1%}"),
        ("points explored", telemetry.points_explored),
        ("points skipped", telemetry.points_skipped),
    ]
    for family in sorted(set(telemetry.moves_tried) | set(telemetry.moves_committed)):
        label = _FAMILY_LABELS.get(family, family)
        rows.append(
            (
                f"moves {label}",
                f"{telemetry.moves_tried.get(family, 0)} tried / "
                f"{telemetry.moves_committed.get(family, 0)} committed",
            )
        )
    if telemetry.moves_discovered:
        discovered = " / ".join(
            f"{kind}: {n}" for kind, n in sorted(telemetry.moves_discovered.items())
        )
        rows.append(("moves discovered", discovered))
    if telemetry.moves_materialized:
        materialized = " / ".join(
            f"{kind}: {n}"
            for kind, n in sorted(telemetry.moves_materialized.items())
        )
        rows.append(("moves materialized", materialized))
    if telemetry.moves_pruned:
        pruned = " / ".join(
            f"{family}: {n}" for family, n in sorted(telemetry.moves_pruned.items())
        )
        rows.append(("moves pruned before pricing", pruned))
    if telemetry.verify_checks:
        rows.append(
            (
                "RTL verifications",
                f"{telemetry.verify_checks} checks / "
                f"{telemetry.verify_failures} failures",
            )
        )
    store_keys = sorted(
        set(telemetry.store_hits)
        | set(telemetry.store_misses)
        | set(telemetry.store_evictions)
    )
    for key in store_keys:
        hits = telemetry.store_hits.get(key, 0)
        misses = telemetry.store_misses.get(key, 0)
        evictions = telemetry.store_evictions.get(key, 0)
        value = f"{hits} hits / {misses} misses"
        if evictions:
            value += f" / {evictions} evicted"
        rows.append((f"store {key}", value))
    for stage, seconds in sorted(telemetry.stage_s.items()):
        rows.append((f"time: {stage}", f"{seconds:.3f} s"))
    return render_table(("counter", "value"), rows, title=title)
