"""Rendering of synthesis-run telemetry (the CLI's ``--stats`` view).

The engine counts what it did — evaluations, cost-cache hits, moves
tried and committed per family (A/B/C/D), operating points explored,
and per-stage wall time — in a :class:`~repro.telemetry.Telemetry`
attached to every :class:`~repro.synthesis.api.SynthesisResult`.  This
module turns one into the same plain-text table style the experiment
harness uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..telemetry import Telemetry
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.improve import PassRecord

__all__ = ["render_stats"]

_FAMILY_LABELS = {
    "A": "A (module selection)",
    "B": "B (resynthesis)",
    "C": "C (sharing/embedding)",
    "D": "D (splitting)",
}


def _history_rows(
    history: "dict[tuple[float, float], list[PassRecord]]",
) -> list[tuple[str, object]]:
    """Per-pass rows from the sweep's improvement-pass records.

    Each explored operating point contributes one row per pass showing
    how deep the variable-depth sequence went, how much of it committed,
    and the cost the committed prefix reached.
    """
    rows: list[tuple[str, object]] = []
    for (vdd, clk_ns), records in sorted(history.items()):
        for idx, record in enumerate(records):
            if record.committed_prefix:
                cost = record.costs[record.committed_prefix - 1]
                value = (
                    f"{len(record.moves)} moves, "
                    f"{record.committed_prefix} committed, cost {cost:.4g}"
                )
            else:
                value = f"{len(record.moves)} moves, none committed"
            rows.append((f"pass {vdd:.2f}V/{clk_ns:.1f}ns #{idx}", value))
    return rows


def render_stats(
    telemetry: Telemetry,
    title: str = "Synthesis statistics",
    history: "dict[tuple[float, float], list[PassRecord]] | None" = None,
) -> str:
    """Render telemetry counters as a plain-text table.

    *history* (``SynthesisResult.history``) appends one row per
    improvement pass of every explored operating point — the
    variable-depth search's per-pass depth, committed prefix and
    committed move kinds.
    """
    rows: list[tuple[str, object]] = [
        ("evaluations", telemetry.evaluations),
        ("cost-cache hits", telemetry.cache_hits),
        ("cost-cache misses", telemetry.cache_misses),
        ("cost-cache hit rate", f"{telemetry.cache_hit_rate:.1%}"),
        (
            "cache misses priced",
            f"{telemetry.delta_hits} delta / "
            f"{telemetry.delta_fallbacks} fallback / "
            f"{telemetry.full_evals} full",
        ),
        ("delta-hit rate", f"{telemetry.delta_hit_rate:.1%}"),
        ("points explored", telemetry.points_explored),
        ("points skipped", telemetry.points_skipped),
    ]
    for family in sorted(set(telemetry.moves_tried) | set(telemetry.moves_committed)):
        label = _FAMILY_LABELS.get(family, family)
        rows.append(
            (
                f"moves {label}",
                f"{telemetry.moves_tried.get(family, 0)} tried / "
                f"{telemetry.moves_committed.get(family, 0)} committed",
            )
        )
    if telemetry.moves_discovered:
        discovered = " / ".join(
            f"{kind}: {n}" for kind, n in sorted(telemetry.moves_discovered.items())
        )
        rows.append(("moves discovered", discovered))
    if telemetry.moves_materialized:
        materialized = " / ".join(
            f"{kind}: {n}"
            for kind, n in sorted(telemetry.moves_materialized.items())
        )
        rows.append(("moves materialized", materialized))
    if telemetry.moves_pruned:
        pruned = " / ".join(
            f"{family}: {n}" for family, n in sorted(telemetry.moves_pruned.items())
        )
        rows.append(("moves pruned before pricing", pruned))
    if telemetry.verify_checks:
        rows.append(
            (
                "RTL verifications",
                f"{telemetry.verify_checks} checks / "
                f"{telemetry.verify_failures} failures",
            )
        )
    store_keys = sorted(
        set(telemetry.store_hits)
        | set(telemetry.store_misses)
        | set(telemetry.store_evictions)
    )
    for key in store_keys:
        hits = telemetry.store_hits.get(key, 0)
        misses = telemetry.store_misses.get(key, 0)
        evictions = telemetry.store_evictions.get(key, 0)
        value = f"{hits} hits / {misses} misses"
        if evictions:
            value += f" / {evictions} evicted"
        rows.append((f"store {key}", value))
    if history:
        rows.extend(_history_rows(history))
    for stage, seconds in sorted(telemetry.stage_s.items()):
        rows.append((f"time: {stage}", f"{seconds:.3f} s"))
    return render_table(("counter", "value"), rows, title=title)
