"""Rendering Table 3: normalized area and power per circuit and laxity.

Layout mirrors the paper: per circuit two rows (A = area, P = power),
per laxity factor four columns (Flat-A, Flat-P, Hier-A, Hier-P), all
normalized to the flattened area-optimized 5 V architecture at the same
laxity factor.
"""

from __future__ import annotations

from .sweep import SweepResults
from .tables import render_table

__all__ = ["render_table3", "table3_rows"]


def table3_rows(results: SweepResults) -> list[list[object]]:
    """Flatten the sweep into printable Table 3 rows."""
    laxities = results.laxities()
    rows: list[list[object]] = []
    for circuit in results.circuits():
        row_a: list[object] = [circuit, "A"]
        row_p: list[object] = ["", "P"]
        for laxity in laxities:
            cell = results.cell(circuit, laxity)
            fa_a, fp_a, ha_a, hp_a = cell.table3_row_a()
            fa_p, fp_p, ha_p, hp_p = cell.table3_row_p()
            # Column Flat-A row A is the normalization base: exactly 1.
            row_a.extend([1.0, fp_a, ha_a, hp_a])
            row_p.extend([fa_p, fp_p, ha_p, hp_p])
        rows.append(row_a)
        rows.append(row_p)
    return rows


def render_table3(results: SweepResults) -> str:
    """Render the full Table 3 analogue."""
    laxities = results.laxities()
    headers = ["Circuit", "A/P"]
    for laxity in laxities:
        headers.extend(
            [
                f"LF{laxity:g} Fl.A",
                f"LF{laxity:g} Fl.P",
                f"LF{laxity:g} Hi.A",
                f"LF{laxity:g} Hi.P",
            ]
        )
    return render_table(
        headers,
        table3_rows(results),
        title="Table 3: area (normalized) and power (normalized) results",
    )
