"""Experiment harness: regenerate the paper's tables from the library."""

from .corners import (
    CornerCell,
    CornerReport,
    DEFAULT_CORNERS,
    OperatingCorner,
    corner_grid,
    evaluate_corners,
    pareto_indices,
    render_corner_report,
)
from .export import cell_to_dict, result_to_dict, save_sweep_json, sweep_to_dict
from .stats import render_stats
from .summary import HeadlineClaims, compute_claims, render_claims
from .sweep import (
    CellResult,
    DEFAULT_LAXITY_FACTORS,
    SweepResults,
    quick_config,
    run_cell,
    run_sweep,
)
from .table3 import render_table3, table3_rows
from .table4 import Table4Row, render_table4, table4_rows
from .tables import fmt, render_table

__all__ = [
    "CellResult",
    "CornerCell",
    "CornerReport",
    "DEFAULT_CORNERS",
    "OperatingCorner",
    "corner_grid",
    "evaluate_corners",
    "pareto_indices",
    "render_corner_report",
    "cell_to_dict",
    "result_to_dict",
    "save_sweep_json",
    "sweep_to_dict",
    "DEFAULT_LAXITY_FACTORS",
    "SweepResults",
    "HeadlineClaims",
    "Table4Row",
    "compute_claims",
    "render_claims",
    "fmt",
    "quick_config",
    "render_stats",
    "render_table",
    "render_table3",
    "render_table4",
    "run_cell",
    "run_sweep",
    "table3_rows",
    "table4_rows",
]
