"""Bounded trace recorder and JSONL serialization.

One :class:`TraceRecorder` travels with a synthesis run (owned by the
:class:`~repro.synthesis.context.SynthesisEnv` when
``SynthesisConfig.trace`` is set).  It buffers events in memory with a
hard bound — a runaway search drops events and counts them instead of
exhausting RAM — and knows nothing about files: the run serializes the
merged buffer at the end with :func:`write_trace`.

Parallel sweeps give every worker process its own recorder (it rides
inside the worker's fresh env); the parent concatenates the per-worker
buffers **in operating-point order**, which is exactly the order the
serial sweep would have emitted, so the merged trace is deterministic.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = ["TraceRecorder", "dumps_trace", "load_trace", "write_trace"]


class TraceRecorder:
    """An append-only, bounded buffer of trace events.

    ``timings=False`` (the byte-determinism mode) suppresses every
    wall-clock field: :meth:`clock` returns ``None`` and :meth:`emit`
    drops ``dur_ns``-style keys whose value is ``None``.
    """

    def __init__(self, timings: bool = True, max_events: int = 1_000_000):
        self.timings = timings
        self.max_events = max_events
        #: Current operating-point index; stamped by the sweep driver so
        #: events emitted deep inside the engine carry their coordinate.
        self.point: int | None = None
        self.events: list[dict[str, Any]] = []
        #: Events discarded because the buffer hit ``max_events``.
        self.dropped = 0

    # ------------------------------------------------------------------
    def clock(self) -> int | None:
        """Monotonic nanoseconds, or ``None`` when timings are off."""
        if not self.timings:
            return None
        return time.perf_counter_ns()

    def elapsed_ns(self, t0: int | None) -> int | None:
        """Nanoseconds since a :meth:`clock` mark (``None`` passthrough)."""
        if t0 is None:
            return None
        return time.perf_counter_ns() - t0

    # ------------------------------------------------------------------
    def emit(self, kind: str, /, **fields: Any) -> None:
        """Append one event; ``None``-valued fields are omitted.

        Field order follows the keyword order at the call site, which
        the emitters keep fixed per kind — that is what makes the JSONL
        output byte-stable.
        """
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        event: dict[str, Any] = {"k": kind}
        for key, value in fields.items():
            if value is None:
                continue
            event[key] = value
        self.events.append(event)

    def absorb(self, events: Iterable[dict[str, Any]], dropped: int = 0) -> None:
        """Merge a worker's buffered events (already in point order)."""
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            self.events.append(event)
        self.dropped += dropped


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def dumps_trace(events: Iterable[dict[str, Any]]) -> str:
    """Serialize events to JSONL text (one compact object per line)."""
    lines = [
        json.dumps(event, separators=(",", ":"), ensure_ascii=True)
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(events: Iterable[dict[str, Any]], path: str | Path) -> int:
    """Write events as JSONL to *path*; returns the number of events."""
    events = list(events)
    Path(path).write_text(dumps_trace(events))
    return len(events)


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts."""
    events: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
