"""Deterministic replay of a recorded move sequence.

A trace records, for every improvement pass, the moves the engine chose
and the cost after each one.  Replay re-executes exactly the *committed*
prefixes of those passes — regenerating the candidate moves at each step
and selecting the recorded one — against a freshly reconstructed run
(design, library, stimulus, operating point).  Because every stage of
the engine is deterministic, the replayed solution must price to the
recorded final cost **bit-identically**; the replayed architecture is
then cross-checked against the behavioral simulation by the
differential verification oracle (:mod:`repro.verify`).

Two ways in:

* :func:`replay_trace` with explicit ``design``/``library``/``traces``
  objects — for API users who hold the originals;
* a trace whose ``run_start`` carries CLI provenance (benchmark name or
  design path, trace generator, seed) replays standalone:
  ``repro-trace replay run.jsonl``.

Candidate matching is by (kind, description); committed move-B chains
can rename generated modules between runs (the fresh-name counter sees
a different pricing history), so an exact-cost fallback resolves those.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..dfg.hierarchy import Design
from ..errors import ReproError
from ..library.library import ModuleLibrary, default_library
from ..power.simulate import simulate_subgraph
from ..power.traces import TraceSet
from ..synthesis.api import flatten_for_synthesis
from ..synthesis.context import SynthesisConfig, SynthesisEnv
from ..synthesis.initial import initial_solution
from ..synthesis.moves import (
    Candidate,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from ..synthesis.solution import Solution
from .reader import TraceSchemaError, check_schema

__all__ = ["ReplayError", "ReplayResult", "replay_trace"]


class ReplayError(ReproError):
    """A recorded move could not be reproduced from the trace."""


@dataclass
class ReplayResult:
    """Outcome of replaying one trace's winning operating point."""

    #: True when the replayed cost equals the recorded cost bit-for-bit
    #: and (if requested) the verification oracle passed.
    ok: bool
    #: Objective value of the replayed final solution.
    cost: float
    #: Objective value the trace's ``run_end`` recorded for the winner.
    recorded_cost: float
    #: Number of committed moves re-applied.
    n_moves: int
    #: (Vdd, clk_ns) of the replayed operating point.
    vdd: float
    clk_ns: float
    #: The replayed architecture.
    solution: Solution
    #: Oracle verdict (None when ``verify=False``).
    verification: Any | None = None

    def describe(self) -> str:
        """One-paragraph human-readable verdict."""
        head = (
            f"replayed {self.n_moves} committed moves at "
            f"Vdd {self.vdd:.2f} V / clock {self.clk_ns:.2f} ns: "
            f"cost {self.cost!r} vs recorded {self.recorded_cost!r} — "
            f"{'bit-identical' if self.cost == self.recorded_cost else 'MISMATCH'}"
        )
        if self.verification is not None:
            head += (
                "; oracle OK"
                if self.verification.ok
                else f"; oracle FAILED ({self.verification.counterexample.describe()})"
            )
        return head


# ----------------------------------------------------------------------
# Trace dissection
# ----------------------------------------------------------------------

def _parse(events: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Extract run header, winner and the committed move plan."""
    run_start = next((e for e in events if e["k"] == "run_start"), None)
    if run_start is None:
        raise ReplayError("not a synthesis trace: no run_start event")
    try:
        # Replay only consumes fields present since schema v1 (committed
        # prefixes and the recorded config), so every version the shared
        # reader accepts replays.
        check_schema(run_start.get("schema"))
    except TraceSchemaError as exc:
        raise ReplayError(str(exc)) from exc
    run_end = next((e for e in events if e["k"] == "run_end"), None)
    if run_end is None:
        raise ReplayError("trace is incomplete: no run_end event")
    winner = run_end["winner"]
    point = winner["point"]
    committed = {
        e["pass"]: e["committed"]
        for e in events
        if e["k"] == "pass_end" and e.get("point") == point
    }
    plan: list[list[dict]] = []
    for p in sorted(committed):
        if committed[p] == 0:
            continue
        steps = sorted(
            (
                e for e in events
                if e["k"] == "step" and e.get("point") == point
                and e["pass"] == p and e["step"] < committed[p]
            ),
            key=lambda e: e["step"],
        )
        if len(steps) != committed[p]:
            raise ReplayError(
                f"trace is missing step events for point {point} pass {p} "
                f"(have {len(steps)}, committed {committed[p]}) — "
                "was it truncated by trace_max_events?"
            )
        plan.append(steps)
    return {"run_start": run_start, "winner": winner, "plan": plan}


def _reconstruct_inputs(
    run_start: dict[str, Any],
    design: Design | None,
    library: ModuleLibrary | None,
    traces: TraceSet | None,
) -> tuple[Design, ModuleLibrary, TraceSet, SynthesisConfig]:
    """Rebuild the run's inputs from arguments or recorded provenance."""
    provenance = run_start.get("provenance") or {}
    config_fields = {f for f in SynthesisConfig.__dataclass_fields__}
    config = SynthesisConfig(**{
        k: v for k, v in run_start["config"].items() if k in config_fields
    })
    config.n_workers = 1
    config.trace = False
    config.verify_moves = False

    if design is None:
        design = _design_from_provenance(provenance)
    if library is None:
        library = default_library()
        if provenance.get("built_library"):
            from ..synthesis.library_gen import build_complex_library

            library = build_complex_library(design, library, config=config)
    if traces is None:
        traces = _traces_from_provenance(provenance, design)
    return design, library, traces, config


def _design_from_provenance(provenance: dict[str, Any]) -> Design:
    if provenance.get("benchmark"):
        from ..bench_suite import get_benchmark

        return get_benchmark(provenance["benchmark"])
    if provenance.get("design_path"):
        from ..dfg import parse_design, validate_design

        path = Path(provenance["design_path"])
        if not path.exists():
            raise ReplayError(
                f"recorded design file {path} no longer exists; pass "
                "design= explicitly"
            )
        design = parse_design(path.read_text(), name_hint=path.stem)
        validate_design(design)
        return design
    raise ReplayError(
        "trace has no design provenance (API-produced trace): pass "
        "design=, and usually library=/traces=, explicitly"
    )


def _traces_from_provenance(
    provenance: dict[str, Any], design: Design
) -> TraceSet:
    from ..power import image_traces, speech_traces, white_traces

    generators = {
        "speech": speech_traces, "white": white_traces, "image": image_traces,
    }
    name = provenance.get("traces")
    if name not in generators:
        raise ReplayError(
            "trace has no stimulus provenance: pass traces= explicitly"
        )
    return generators[name](
        design.top,
        n=int(provenance.get("samples", 48)),
        seed=int(provenance.get("seed", 0)),
    )


# ----------------------------------------------------------------------
# Move matching
# ----------------------------------------------------------------------

def _regenerate(env, work, sim, locked) -> list[Candidate]:
    """All candidate moves the engine could have generated at one step."""
    return (
        type_a_b_candidates(env, work, sim, locked)
        + sharing_candidates(env, work, sim, locked)
        + splitting_candidates(env, work, sim, locked)
    )


def _match(
    candidates: list[Candidate],
    recorded: dict[str, Any],
    ctx,
) -> Candidate:
    """Find the recorded move among freshly generated candidates.

    Primary key: (kind, description).  Fallback: same kind and the
    exact recorded post-move cost — this absorbs generated-module name
    drift (``dct_sub_v3`` vs ``_v5``) without weakening the check,
    because the cost is a full structural evaluation.
    """
    same_kind = [c for c in candidates if c.kind == recorded["kind"]]
    exact = [c for c in same_kind if c.description == recorded["move"]]
    if len(exact) == 1:
        return exact[0]
    if len(exact) > 1:
        priced = [c for c in exact if ctx.cost(c.solution) == recorded["cost"]]
        if priced:
            return priced[0]
        raise ReplayError(
            f"ambiguous candidates for recorded move {recorded['move']!r} "
            "and none prices to the recorded cost"
        )
    by_cost = [
        c for c in same_kind if ctx.cost(c.solution) == recorded["cost"]
    ]
    if len(by_cost) >= 1:
        return by_cost[0]
    raise ReplayError(
        f"recorded move {recorded['move']!r} ({recorded['kind']}) could "
        "not be regenerated — replay inputs differ from the recorded run"
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def replay_trace(
    events: Sequence[dict[str, Any]],
    design: Design | None = None,
    library: ModuleLibrary | None = None,
    traces: TraceSet | None = None,
    verify: bool = True,
) -> ReplayResult:
    """Re-execute a trace's committed move sequence and cross-check it.

    Reconstructs the winning operating point's search: initial solution,
    then each committed pass prefix move by move.  Returns a
    :class:`ReplayResult` whose ``ok`` requires the replayed final cost
    to equal the recorded one bit-for-bit and — unless ``verify=False``
    — the differential RTL oracle to accept the replayed architecture.
    """
    parsed = _parse(events)
    run_start, winner = parsed["run_start"], parsed["winner"]
    design, library, traces, config = _reconstruct_inputs(
        run_start, design, library, traces
    )
    if run_start.get("flattened"):
        design = flatten_for_synthesis(design)

    top = design.top
    input_streams = [traces[name] for name in top.inputs]
    sim = simulate_subgraph(design, top, input_streams)

    env = SynthesisEnv(design, library, run_start["objective"], config)
    ctx = env.context(sim)
    vdd, clk_ns = winner["vdd"], winner["clk_ns"]
    current = initial_solution(
        env, top, sim, clk_ns, vdd, run_start["sampling_ns"]
    )

    n_moves = 0
    for pass_steps in parsed["plan"]:
        locked: frozenset[str] = frozenset()
        work = current
        for recorded in pass_steps:
            candidates = _regenerate(env, work, sim, locked)
            chosen = _match(candidates, recorded, ctx)
            work = chosen.solution
            locked = locked | chosen.touched
            n_moves += 1
        current = work

    cost = ctx.cost(current)
    verification = None
    ok = cost == winner["cost"]
    if verify:
        from ..verify import verify_solution

        verification = verify_solution(design, current, sim=sim)
        ok = ok and verification.ok
    return ReplayResult(
        ok=ok,
        cost=cost,
        recorded_cost=winner["cost"],
        n_moves=n_moves,
        vdd=vdd,
        clk_ns=clk_ns,
        solution=current,
        verification=verification,
    )
