"""``python -m repro.trace`` — alias for the ``repro-trace`` tool."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
