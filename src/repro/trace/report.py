"""Gain-attribution and profiling reports over a recorded trace.

:func:`render_report` answers the question telemetry counters cannot:
*which moves earned their keep*.  For every committed pass it lists the
move sequence with per-move gain (split into power/area/schedule
components), marks the committed prefix, and shows where negative-gain
moves were later repaid — the defining behaviour of the paper's
variable-depth (Kernighan–Lin) scheme.  A per-family rollup then
attributes the total committed gain to move types A/B/C/D.

:func:`render_profile` renders the wall-clock side of the same trace:
per-stage seconds, the slowest passes, and cost-evaluation cache
provenance (requires a trace recorded with ``trace_timings=True``).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..reporting.tables import render_table
from ..telemetry import move_family
from .reader import check_schema

__all__ = ["render_profile", "render_report", "run_overview"]

_FAMILY_LABELS = {
    "A": "A (module selection)",
    "B": "B (resynthesis)",
    "C": "C (sharing/embedding)",
    "D": "D (splitting)",
}


def _index(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Group a flat event list by kind and by operating point."""
    by_kind: dict[str, list[dict]] = {}
    for event in events:
        by_kind.setdefault(event["k"], []).append(event)
    starts = by_kind.get("run_start", [])
    if not starts:
        raise ValueError("not a synthesis trace: no run_start event")
    run_start = starts[0]
    # Older schemas (v1/v2) differ from the current one only by absent
    # optional fields, which every consumer below defaults — so any
    # version the shared reader accepts renders here.
    check_schema(run_start.get("schema"))
    return {
        "run_start": run_start,
        "run_end": by_kind.get("run_end", [None])[-1],
        "by_kind": by_kind,
    }


def run_overview(events: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Machine-readable run summary: header fields, winner, counts."""
    idx = _index(events)
    run_start, run_end = idx["run_start"], idx["run_end"]
    by_kind = idx["by_kind"]
    return {
        "design": run_start["design"],
        "objective": run_start["objective"],
        "sampling_ns": run_start["sampling_ns"],
        "flattened": run_start["flattened"],
        "n_points": run_start["n_points"],
        "winner": run_end["winner"] if run_end else None,
        "n_events": len(events),
        "n_steps": len(by_kind.get("step", [])),
        "n_passes": len(by_kind.get("pass_end", [])),
    }


def _point_events(
    by_kind: dict[str, list[dict]], kind: str, point: int
) -> list[dict]:
    return [e for e in by_kind.get(kind, []) if e.get("point") == point]


def _fmt_gain(value: float) -> str:
    return f"{value:+.6g}"


def _pass_tables(
    by_kind: dict[str, list[dict]], point: int, digits: int = 4
) -> list[str]:
    """One move-sequence table per pass of *point*."""
    sections: list[str] = []
    steps = _point_events(by_kind, "step", point)
    for pass_end in _point_events(by_kind, "pass_end", point):
        p = pass_end["pass"]
        committed = pass_end["committed"]
        pass_steps = sorted(
            (e for e in steps if e["pass"] == p), key=lambda e: e["step"]
        )
        if not pass_steps:
            continue
        rows = []
        cum = 0.0
        for e in pass_steps:
            cum += e["gain"]
            in_prefix = e["step"] < committed
            rows.append((
                e["step"],
                e["kind"],
                e["move"][:44],
                _fmt_gain(e["gain"]),
                _fmt_gain(cum),
                _fmt_gain(e["d_power"]),
                _fmt_gain(e["d_area"]),
                "yes" if in_prefix else "",
            ))
        negative_committed = [
            e for e in pass_steps
            if e["step"] < committed and e["gain"] < 0
        ]
        title = (
            f"point {point} pass {p}: {len(pass_steps)} moves, "
            f"committed prefix {committed}"
        )
        table = render_table(
            ("step", "kind", "move", "gain", "cum gain", "d_power",
             "d_area", "committed"),
            rows,
            title=title,
            digits=digits,
        )
        if negative_committed:
            paid = sum(e["gain"] for e in negative_committed)
            prefix_gain = sum(
                e["gain"] for e in pass_steps if e["step"] < committed
            )
            table += (
                f"\nnegative-gain moves in the committed prefix: "
                f"{len(negative_committed)} (cost {_fmt_gain(paid)}), "
                f"repaid by the prefix's net gain {_fmt_gain(prefix_gain)}"
            )
        sections.append(table)
    return sections


def _family_rollup(
    by_kind: dict[str, list[dict]], point: int
) -> str | None:
    """Gain attribution by move family for one operating point."""
    steps = _point_events(by_kind, "step", point)
    committed_by_pass = {
        e["pass"]: e["committed"]
        for e in _point_events(by_kind, "pass_end", point)
    }
    discovered: dict[str, int] = {}
    tried: dict[str, int] = {}
    chosen: dict[str, int] = {}
    committed: dict[str, int] = {}
    gain: dict[str, float] = {}
    negative: dict[str, int] = {}
    for e in steps:
        family = move_family(e["kind"])
        # Schema v3 counts generated candidates by full kind before
        # pruning; absent in older traces, hence the default.
        for kind, n in e.get("discovered", {}).items():
            fam = move_family(kind)
            discovered[fam] = discovered.get(fam, 0) + n
        for fam, n in e.get("tried", {}).items():
            tried[fam] = tried.get(fam, 0) + n
        chosen[family] = chosen.get(family, 0) + 1
        if e["step"] < committed_by_pass.get(e["pass"], 0):
            committed[family] = committed.get(family, 0) + 1
            gain[family] = gain.get(family, 0.0) + e["gain"]
            if e["gain"] < 0:
                negative[family] = negative.get(family, 0) + 1
    if not steps:
        return None
    rows = []
    for family in sorted(set(discovered) | set(tried) | set(chosen)):
        rows.append((
            _FAMILY_LABELS.get(family, family),
            discovered.get(family, 0),
            tried.get(family, 0),
            chosen.get(family, 0),
            committed.get(family, 0),
            negative.get(family, 0),
            _fmt_gain(gain.get(family, 0.0)),
        ))
    return render_table(
        ("move family", "discovered", "tried", "chosen", "committed",
         "neg-gain", "committed gain"),
        rows,
        title=f"gain attribution by move family (point {point})",
    )


def _cache_line(by_kind: dict[str, list[dict]], point: int) -> str | None:
    steps = _point_events(by_kind, "step", point)
    n = sum(e["eval"]["n"] for e in steps)
    hits = sum(e["eval"]["hits"] for e in steps)
    misses = sum(e["eval"]["misses"] for e in steps)
    # Older traces predate the incremental engine; default the new
    # counters to zero so their reports still render.
    delta = sum(e["eval"].get("delta", 0) for e in steps)
    pruned = sum(e["eval"].get("pruned", 0) for e in steps)
    if n == 0:
        return None
    line = (
        f"cost evaluations while pricing: {n} "
        f"({hits} cache hits / {misses} rebuilds, "
        f"{hits / n:.1%} hit rate)"
    )
    if delta and misses:
        line += (
            f"; of the rebuilds, {delta} delta-priced / "
            f"{misses - delta} from scratch "
            f"({delta / misses:.1%} delta-hit rate)"
        )
    if pruned:
        line += f"; {pruned} candidates pruned before pricing"
    return line


def render_report(
    events: Sequence[dict[str, Any]], all_points: bool = False
) -> str:
    """Render the per-pass gain-attribution report for a trace.

    By default only the winning operating point is detailed (that is the
    search that produced the returned architecture); ``all_points``
    also walks the losing points.
    """
    idx = _index(events)
    run_start, run_end = idx["run_start"], idx["run_end"]
    by_kind = idx["by_kind"]

    out: list[str] = []
    head = (
        f"trace: {run_start['design']} — objective {run_start['objective']}, "
        f"sampling {run_start['sampling_ns']:.1f} ns, "
        f"{run_start['n_points']} operating points"
        f"{' (flattened)' if run_start.get('flattened') else ''}"
    )
    out.append(head)

    if run_end is None:
        out.append("run did not finish: no run_end event (partial trace)")
        points = sorted({
            e["point"] for e in by_kind.get("point_start", [])
        })
    else:
        winner = run_end["winner"]
        out.append(
            f"winner: point {winner['point']} "
            f"(Vdd {winner['vdd']:.2f} V, clock {winner['clk_ns']:.2f} ns) — "
            f"cost {winner['cost']:.6g}, area {winner['area']:.1f}, "
            f"power {winner['power']:.4f}"
        )
        if run_end.get("events_dropped"):
            out.append(
                f"warning: {run_end['events_dropped']} events dropped "
                f"(trace_max_events reached)"
            )
        points = (
            sorted({e["point"] for e in by_kind.get("point_start", [])})
            if all_points
            else [winner["point"]]
        )

    for point in points:
        start = next(
            (e for e in by_kind.get("point_start", [])
             if e["point"] == point),
            None,
        )
        if start is not None:
            out.append("")
            out.append(
                f"--- point {point}: Vdd {start['vdd']:.2f} V, "
                f"clock {start['clk_ns']:.2f} ns "
                + "-" * 24
            )
        for section in _pass_tables(by_kind, point):
            out.append("")
            out.append(section)
        rollup = _family_rollup(by_kind, point)
        if rollup is not None:
            out.append("")
            out.append(rollup)
        cache = _cache_line(by_kind, point)
        if cache is not None:
            out.append(cache)
    return "\n".join(out)


def render_profile(events: Sequence[dict[str, Any]]) -> str:
    """Render the wall-clock trajectory of a trace (needs timings)."""
    idx = _index(events)
    run_start, run_end = idx["run_start"], idx["run_end"]
    by_kind = idx["by_kind"]

    timed_passes = [e for e in by_kind.get("pass_end", []) if "dur_ns" in e]
    timed_points = [e for e in by_kind.get("point_end", []) if "dur_ns" in e]
    stage_s = (run_end or {}).get("stage_s")
    if not timed_passes and not timed_points and not stage_s:
        return (
            "trace has no timing spans (recorded with trace_timings=False); "
            "re-run with timings enabled to profile"
        )

    out: list[str] = [
        f"profile: {run_start['design']} — {run_start['objective']}, "
        f"{run_start['n_points']} operating points"
    ]
    if stage_s:
        rows = [(stage, f"{seconds:.3f}") for stage, seconds in stage_s.items()]
        out.append("")
        out.append(render_table(("stage", "seconds"), rows,
                                title="wall-clock by stage"))
    store = (run_end or {}).get("store")
    if store:
        keys = sorted(
            set(store.get("hits", {}))
            | set(store.get("misses", {}))
            | set(store.get("evictions", {}))
        )
        rows = [
            (
                key,
                store.get("hits", {}).get(key, 0),
                store.get("misses", {}).get(key, 0),
                store.get("evictions", {}).get(key, 0),
            )
            for key in keys
        ]
        if rows:
            out.append("")
            out.append(render_table(
                ("tier.namespace", "hits", "misses", "evictions"), rows,
                title="synthesis store",
            ))
    if timed_points:
        rows = [
            (
                e["point"],
                e["status"],
                f"{e['dur_ns'] / 1e9:.3f}",
                len([
                    p for p in by_kind.get("pass_end", [])
                    if p.get("point") == e["point"]
                ]),
            )
            for e in timed_points
        ]
        out.append("")
        out.append(render_table(
            ("point", "status", "seconds", "passes"), rows,
            title="operating points",
        ))
    if timed_passes:
        slowest = sorted(
            timed_passes, key=lambda e: -e["dur_ns"]
        )[:5]
        rows = [
            (e["point"], e["pass"], e["steps"], e["committed"],
             f"{e['dur_ns'] / 1e9:.3f}")
            for e in slowest
        ]
        out.append("")
        out.append(render_table(
            ("point", "pass", "steps", "committed", "seconds"), rows,
            title="slowest improvement passes",
        ))
    evals = by_kind.get("eval", [])
    if evals:
        cached = sum(1 for e in evals if e["cached"])
        rebuild_ns = sum(e.get("dur_ns", 0) for e in evals if not e["cached"])
        delta = sum(1 for e in evals if e.get("mode") == "delta")
        line = (
            f"cost evaluations: {len(evals)} spans, {cached} cache hits, "
            f"{len(evals) - cached} rebuilds "
            f"({rebuild_ns / 1e9:.3f} s rebuilding)"
        )
        if delta:
            line += f"; {delta} of the rebuilds were delta-priced"
        out.append("")
        out.append(line)
    return "\n".join(out)
