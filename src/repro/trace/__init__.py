"""Structured search observability for the synthesis engine.

The iterative-improvement engine (Figure 4 of the paper) commits the
best *prefix* of a move sequence in which individual moves may have
negative gain.  Aggregate telemetry counters cannot explain *why* a
pass chose the moves it did; this package records the search itself as
a stream of structured events — run → operating point → pass → move —
with per-move gain attribution (cost, power, area and schedule deltas),
cost-evaluation cache provenance, and optional ``perf_counter_ns`` span
timings.

Layout
------
:mod:`repro.trace.events`    — the JSONL schema (kinds, fields, version);
:mod:`repro.trace.recorder`  — bounded in-memory recorder + JSONL I/O;
:mod:`repro.trace.reader`    — shared ingestion accepting every schema
                               version this build can read (v1→current);
:mod:`repro.trace.report`    — per-pass gain-attribution rendering;
:mod:`repro.trace.replay`    — deterministic re-execution of a recorded
                               move sequence, cross-checked against the
                               differential verification oracle;
:mod:`repro.trace.cli`       — the ``repro-trace`` command-line tool.

Traces are produced by ``synthesize(..., config=SynthesisConfig(
trace=True))`` (surfaced as ``SynthesisResult.trace_events``) or the
CLI's ``--trace out.jsonl`` flag, and survive the parallel
operating-point sweep: each worker buffers its own events and the
parent merges them in point order, so a trace is byte-identical
regardless of ``n_workers`` (when timings are disabled).  See
``docs/TRACING.md`` for the full schema and a worked example.
"""

from .events import SCHEMA_VERSION, span_kinds
from .reader import (
    MIN_SCHEMA_VERSION,
    TraceSchemaError,
    iter_events,
    read_events,
)
from .recorder import TraceRecorder, dumps_trace, load_trace, write_trace

__all__ = [
    "MIN_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "ReplayError",
    "ReplayResult",
    "TraceRecorder",
    "TraceSchemaError",
    "dumps_trace",
    "iter_events",
    "load_trace",
    "read_events",
    "render_profile",
    "render_report",
    "replay_trace",
    "span_kinds",
    "write_trace",
]

#: Consumers (report rendering, replay) build on repro.synthesis, which
#: itself emits into this package — so they are imported lazily (PEP
#: 562) to keep ``repro.synthesis → repro.trace`` acyclic at load time.
_LAZY = {
    "render_report": "report",
    "render_profile": "report",
    "ReplayError": "replay",
    "ReplayResult": "replay",
    "replay_trace": "replay",
}


def __getattr__(name: str):
    """Resolve the lazily exported consumer API on first access."""
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
