"""Shared trace ingestion: one parser, every schema version.

:mod:`repro.trace.report` and :mod:`repro.trace.replay` each used to
open the JSONL stream themselves and refuse anything but the current
:data:`~repro.trace.events.SCHEMA_VERSION`; :mod:`repro.search.priors`
made a third consumer, so the parsing and version policy moved here.

Version policy
--------------
The schema has only ever grown by *optional* fields:

* **v1 → v2** added ``store`` (tiered synthesis-store counters) to
  ``run_end``;
* **v2 → v3** added ``discovered`` (pre-pruning candidate counts by
  kind) to ``step`` and the optional ``policy`` header field to
  ``run_start``.

An older trace is therefore already a valid current-schema trace with
those fields absent, and consumers default them.  :func:`iter_events`
accepts every version from :data:`MIN_SCHEMA_VERSION` through
:data:`~repro.trace.events.SCHEMA_VERSION` and yields the events
untouched; traces from a *newer* build (or with no recognizable
header version) raise :class:`TraceSchemaError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Union

from ..errors import ReproError
from .events import SCHEMA_VERSION

__all__ = [
    "MIN_SCHEMA_VERSION",
    "TraceSchemaError",
    "check_schema",
    "iter_events",
    "read_events",
    "trace_schema",
]

#: Oldest schema this build still reads.  Every bump since has added
#: optional fields only, so upgrading is pure tolerance — no rewriting.
MIN_SCHEMA_VERSION = 1

#: Accepted event sources: a JSONL file path, an open text stream, an
#: iterable of JSONL lines, or an iterable of already-parsed events.
TraceSource = Union[str, Path, IO[str], Iterable[str], Iterable[dict]]


class TraceSchemaError(ReproError, ValueError):
    """The trace's recorded schema version cannot be read by this build."""


def check_schema(version: Any) -> int:
    """Validate a ``run_start`` schema version; returns it as an int.

    Raises :class:`TraceSchemaError` for versions outside
    [:data:`MIN_SCHEMA_VERSION`, :data:`~repro.trace.events.SCHEMA_VERSION`]
    and for non-integer values (a missing or mangled header).
    """
    if not isinstance(version, int) or isinstance(version, bool):
        raise TraceSchemaError(
            f"trace has no usable schema version (got {version!r}); "
            "is this a synthesis trace?"
        )
    if not MIN_SCHEMA_VERSION <= version <= SCHEMA_VERSION:
        raise TraceSchemaError(
            f"trace schema {version} is not supported (this build reads "
            f"schema {MIN_SCHEMA_VERSION} through {SCHEMA_VERSION})"
        )
    return version


def trace_schema(events: Iterable[dict[str, Any]]) -> int:
    """Schema version of a parsed event stream (validated).

    Raises ``ValueError`` when the stream has no ``run_start`` header
    and :class:`TraceSchemaError` when the version is unreadable.
    """
    for event in events:
        if event.get("k") == "run_start":
            return check_schema(event.get("schema"))
    raise ValueError("not a synthesis trace: no run_start event")


def _iter_lines(source: TraceSource) -> tuple[Iterable, bool]:
    """Normalize *source* to (iterable, is_parsed) without consuming it."""
    if isinstance(source, (str, Path)):
        return Path(source).read_text().splitlines(), False
    if hasattr(source, "read"):
        return source, False
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return (), False
    if isinstance(first, dict):
        return _chain_first(first, iterator), True
    return _chain_first(first, iterator), False


def _chain_first(first, rest) -> Iterator:
    yield first
    yield from rest


def iter_events(source: TraceSource) -> Iterator[dict[str, Any]]:
    """Stream trace events from *source*, validating the schema header.

    *source* may be a JSONL file path, an open text stream, an iterable
    of JSONL lines, or an iterable of already-parsed event dicts (the
    latter passes through unreparsed — useful for in-memory
    ``SynthesisResult.trace_events``).  Blank lines are skipped; a
    malformed line raises ``ValueError`` with its 1-based line number;
    an unsupported ``run_start`` schema raises
    :class:`TraceSchemaError` at the point the header is seen.
    """
    lines, parsed = _iter_lines(source)
    for lineno, item in enumerate(lines, start=1):
        if parsed:
            event = item
        else:
            text = item.strip()
            if not text:
                continue
            try:
                event = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"trace line {lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(event, dict) or "k" not in event:
                raise ValueError(
                    f"trace line {lineno}: not a trace event "
                    "(expected an object with a 'k' kind field)"
                )
        if event.get("k") == "run_start":
            check_schema(event.get("schema"))
        yield event


def read_events(source: TraceSource) -> list[dict[str, Any]]:
    """Read a whole trace into a list (see :func:`iter_events`)."""
    return list(iter_events(source))
