"""The trace event schema: span kinds, fields and versioning.

A trace is a JSON-Lines stream; every line is one event (a span or a
point annotation) emitted by the synthesis engine.  Events form a tree
through their coordinate fields rather than through nesting:

* ``point`` — index of the (Vdd, clock) operating point in sweep order;
* ``pass``  — improvement-pass index within the point (0-based);
* ``step``  — move index within the pass (0-based).

Field order within an event is fixed by the emitter, so a trace
serializes deterministically: the same seed and configuration produce a
byte-identical file whether the sweep ran serially or on a worker pool
(timing fields, which are inherently nondeterministic, are only present
when ``SynthesisConfig.trace_timings`` is enabled).

The authoritative field list per kind lives in :data:`span_kinds`; it
is what ``docs/TRACING.md`` documents and what the schema test pins.
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "span_kinds"]

#: Bump when an event kind gains/loses/renames a field.  Consumers
#: (report, replay) check it and refuse traces from a different major.
#: Version 2 added the optional ``store`` field (tiered synthesis-store
#: counters) to ``run_end``.  Version 3 added ``discovered`` to
#: ``step``: pre-pruning candidate-generation counts keyed by full move
#: kind (``"A-cell"``, ``"C-share-fu"``, ...), identical whichever
#: discovery engine (relational or legacy loops) produced the set —
#: and, later, the optional ``policy`` header field on ``run_start``
#: (the non-default search-policy name; absent for default-policy runs,
#: which therefore serialize exactly as before the field existed).
SCHEMA_VERSION = 3

#: kind → (one-line description, tuple of field names in emission order).
#: Fields marked with a trailing ``?`` are optional: timing fields appear
#: only when ``trace_timings`` is on, ``provenance`` only when the CLI
#: (or a caller) attached run metadata for replay.
_SPAN_KINDS: dict[str, tuple[str, tuple[str, ...]]] = {
    "run_start": (
        "one synthesis run begins (after Vdd/clock pruning); policy "
        "names the non-default search policy when one is configured",
        ("schema", "design", "objective", "sampling_ns", "flattened",
         "n_points", "config", "provenance?", "policy?"),
    ),
    "point_start": (
        "one (Vdd, clock) operating point begins",
        ("point", "vdd", "clk_ns"),
    ),
    "init": (
        "initial solution constructed for the point",
        ("point", "cycles", "budget"),
    ),
    "pass_start": (
        "one variable-depth improvement pass begins",
        ("point", "pass", "cost"),
    ),
    "step": (
        "one move chosen and applied inside a pass (Figure 4's inner "
        "loop); gain components attribute the cost delta; discovered "
        "counts generated candidates by kind before pruning, tried "
        "counts priced candidates by family after pruning",
        ("point", "pass", "step", "kind", "move", "cost", "gain",
         "d_power", "d_area", "d_cycles", "discovered", "tried", "eval",
         "dur_ns?"),
    ),
    "pass_end": (
        "pass finished; the best prefix of its move sequence committed",
        ("point", "pass", "steps", "committed", "cost", "dur_ns?"),
    ),
    "verify": (
        "differential RTL check of a committed prefix (verify_moves)",
        ("point", "pass", "ok", "dur_ns?"),
    ),
    "eval": (
        "one cost evaluation (only with trace_evals; cached=True means "
        "the fingerprint cache answered instead of a netlist rebuild; "
        "mode attributes a rebuild to the incremental engine: 'delta' "
        "= priced against the base breakdown, 'fallback' = base "
        "offered but nothing reusable, absent = full evaluation)",
        ("point", "cached", "mode?", "dur_ns?"),
    ),
    "point_end": (
        "operating point finished (status: explored | skipped)",
        ("point", "status", "feasible?", "cost?", "area?", "power?",
         "cycles?", "dur_ns?"),
    ),
    "run_end": (
        "run finished; winner identifies the best feasible point "
        "(store: per-tier synthesis-store hit/miss/eviction counters, "
        "present only with trace_timings — totals vary with worker "
        "counts, like wall-clock)",
        ("winner", "events_dropped", "stage_s?", "store?"),
    ),
    "voltage_scale": (
        "post-synthesis supply scaling applied to the winner",
        ("vdd", "clk_ns", "power"),
    ),
}


def span_kinds() -> dict[str, tuple[str, tuple[str, ...]]]:
    """Schema as data: kind → (description, ordered field names).

    Returns a copy so callers cannot mutate the schema.
    """
    return dict(_SPAN_KINDS)
