"""The ``repro-trace`` command-line tool.

Subcommands
-----------
``report``  — per-pass gain attribution: the move sequence of every
              committed pass, which move families earned their keep,
              and where negative-gain prefixes paid off;
``replay``  — re-execute the recorded committed move sequence and check
              that it reproduces the final cost bit-identically, then
              run the differential RTL oracle on the replayed result;
``profile`` — wall-clock trajectory: per-stage seconds, slowest passes,
              cost-evaluation cache provenance (needs trace timings).

Examples::

    python -m repro synth --benchmark paulin --laxity 2.2 \\
        --objective power --trace paulin.jsonl
    repro-trace report paulin.jsonl
    repro-trace replay paulin.jsonl
    repro-trace profile paulin.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from .reader import read_events

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="inspect, profile and replay synthesis search traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-pass gain attribution by move type"
    )
    report.add_argument("trace", type=Path, help="JSONL trace file")
    report.add_argument(
        "--all-points", action="store_true",
        help="detail every operating point, not just the winner",
    )

    replay = sub.add_parser(
        "replay",
        help="re-execute the recorded move sequence and verify the result",
    )
    replay.add_argument("trace", type=Path, help="JSONL trace file")
    replay.add_argument(
        "--no-verify", action="store_true",
        help="skip the differential RTL oracle (cost check only)",
    )

    profile = sub.add_parser(
        "profile", help="wall-clock breakdown from span timings"
    )
    profile.add_argument("trace", type=Path, help="JSONL trace file")
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import render_report

    events = read_events(args.trace)
    print(render_report(events, all_points=args.all_points))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .replay import replay_trace

    events = read_events(args.trace)
    result = replay_trace(events, verify=not args.no_verify)
    print(result.describe())
    return 0 if result.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from .report import render_profile

    events = read_events(args.trace)
    print(render_profile(events))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "profile":
            return _cmd_profile(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
