"""Job schema of the synthesis service: requests, records, fingerprints.

A job request carries exactly one design source — inline ``design_text``
(the textual ``.dfg`` format), a built-in ``benchmark`` name, or a
``gen_seed`` drawn from the seeded generator (:mod:`repro.gen`) — plus
the same result-shaping knobs the ``repro synth`` CLI exposes
(objective, laxity/sampling constraint, stimulus family, effort).

:func:`request_fingerprint` is the service's unit of identity: the
iso-invariant canonical fingerprint of the resolved design
(:func:`repro.dfg.canonical.design_fingerprint`) combined with the
library/config signatures and every result-shaping request field.  Two
requests with equal fingerprints produce byte-identical results, so the
server can coalesce them into one running job and serve repeats from
the persistent store tier.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..dfg.canonical import config_signature, design_fingerprint, library_signature
from ..errors import ServiceError
from ..synthesis.store import STORE_SCHEMA_VERSION, digest_content

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfg.hierarchy import Design
    from ..library.library import ModuleLibrary
    from ..synthesis.context import SynthesisConfig

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobRequest",
    "request_fingerprint",
    "resolve_job_design",
]

#: Job lifecycle: ``queued`` (registry row exists, not yet dispatched or
#: waiting for a worker slot) → ``running`` (a worker process owns it) →
#: ``done`` (result attached) | ``failed`` (error attached).  Jobs
#: answered from the persistent store are created directly in ``done``.
JOB_STATES = ("queued", "running", "done", "failed")

_TRACE_FAMILIES = ("speech", "white", "image")
_OBJECTIVES = ("power", "area")
_EFFORTS = ("quick", "full")


@dataclass
class JobRequest:
    """One synthesis job as submitted over the wire (plain data)."""

    #: Exactly one of the three design sources must be set.
    design_text: str | None = None
    benchmark: str | None = None
    gen_seed: int | None = None
    objective: str = "power"
    #: Exactly one of the two throughput constraints must be set.
    laxity_factor: float | None = None
    sampling_ns: float | None = None
    traces: str = "speech"
    samples: int = 48
    seed: int = 0
    effort: str = "quick"
    flatten: bool = False
    #: Differentially verify the winning RTL; the verdict rides on the
    #: result as ``verification.ok`` (a failing check fails the job).
    verify: bool = False
    #: Record the search trace; the server keeps it per job and serves
    #: it at ``GET /jobs/<id>/trace``.
    trace: bool = False
    #: Search policy biasing the improvement driver (``None`` = the
    #: paper's default scheme; see :mod:`repro.search.policy`).
    policy: str | None = None
    #: Run N differently-biased policies as a cross-pollinating
    #: portfolio and keep the best result (``None`` = single search).
    portfolio: int | None = None
    #: Search with trace-mined move priors and mine this run's trace
    #: back into the server's priors store after it finishes.
    priors: bool = False

    def validate(self) -> None:
        """Reject structurally invalid requests before any work starts."""
        sources = [
            s for s in (self.design_text, self.benchmark, self.gen_seed)
            if s is not None
        ]
        if len(sources) != 1:
            raise ServiceError(
                "give exactly one of design_text / benchmark / gen_seed"
            )
        if (self.laxity_factor is None) == (self.sampling_ns is None):
            raise ServiceError(
                "give exactly one of laxity_factor / sampling_ns"
            )
        if self.objective not in _OBJECTIVES:
            raise ServiceError(f"unknown objective {self.objective!r}")
        if self.traces not in _TRACE_FAMILIES:
            raise ServiceError(f"unknown traces family {self.traces!r}")
        if self.effort not in _EFFORTS:
            raise ServiceError(f"unknown effort {self.effort!r}")
        if self.samples < 1:
            raise ServiceError(f"samples must be >= 1, got {self.samples}")
        if self.policy is not None:
            from ..search import available_policies

            if self.policy not in available_policies():
                raise ServiceError(
                    f"unknown search policy {self.policy!r}; available: "
                    f"{', '.join(available_policies())}"
                )
        if self.portfolio is not None:
            if self.portfolio < 1:
                raise ServiceError(
                    f"portfolio must be >= 1, got {self.portfolio}"
                )
            if self.flatten:
                raise ServiceError("portfolio is incompatible with flatten")

    def to_dict(self) -> dict[str, Any]:
        """Wire form (JSON object body of ``POST /jobs``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRequest":
        """Parse a wire payload; unknown keys are rejected, not dropped.

        Silently ignoring a typoed key (``laxity`` for ``laxity_factor``)
        would synthesize something other than what the client asked for.
        """
        if not isinstance(payload, dict):
            raise ServiceError("job request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(
                f"unknown job request field(s): {', '.join(unknown)}"
            )
        request = cls(**payload)
        request.validate()
        return request


def resolve_job_design(request: JobRequest) -> "Design":
    """Materialize the request's design source as a validated Design."""
    from ..dfg import parse_design, validate_design

    if request.design_text is not None:
        design = parse_design(request.design_text, source="<job request>")
    elif request.benchmark is not None:
        from ..bench_suite import benchmark_names, get_benchmark

        if request.benchmark not in benchmark_names():
            raise ServiceError(f"unknown benchmark {request.benchmark!r}")
        design = get_benchmark(request.benchmark)
    else:
        assert request.gen_seed is not None
        from ..gen import GenConfig, generate_design

        design = generate_design(request.gen_seed, GenConfig()).design
    validate_design(design)
    return design


def request_fingerprint(
    request: JobRequest,
    design: "Design",
    library: "ModuleLibrary",
    config: "SynthesisConfig",
) -> str:
    """Canonical identity of a request: what, under which knobs.

    Covers the resolved design's content (so ``design_text`` and a
    ``gen_seed`` emitting the same text coalesce), the base library and
    search-shaping config signatures, and every request field that
    shapes result bytes.  Execution-only server knobs (worker counts,
    shard counts) are deliberately absent — they never change results.
    """
    return digest_content(
        (
            "job",
            STORE_SCHEMA_VERSION,
            design_fingerprint(design, design.top),
            library_signature(library),
            config_signature(config),
            request.objective,
            request.laxity_factor,
            request.sampling_ns,
            request.traces,
            request.samples,
            request.seed,
            request.effort,
            request.flatten,
            request.verify,
            request.trace,
            request.policy,
            request.portfolio,
            request.priors,
        )
    )


@dataclass
class JobRecord:
    """One registry row: a job's lifecycle and (once done) its result."""

    job_id: str
    fingerprint: str
    state: str
    request: dict[str, Any]
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict[str, Any] | None = None
    #: Result answered from the persistent store, no worker involved.
    served_from_store: bool = False
    #: Clients attached to this job (1 + coalesced duplicates).
    clients: int = 1

    def as_dict(self, include_result: bool = False) -> dict[str, Any]:
        """Status-endpoint view; the full result rides only on demand."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "request": self.request,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "served_from_store": self.served_from_store,
            "clients": self.clients,
        }
        if include_result:
            payload["result"] = self.result
        elif self.result is not None:
            # A light summary so polling clients can print headline
            # numbers without shipping netlists on every poll.
            payload["summary"] = {
                key: self.result.get(key)
                for key in ("area", "power", "vdd", "clk_ns", "elapsed_s")
            }
        return payload
