"""SQLite-backed job registry shared by server, workers and CLI tools.

The registry is the durable side of the job server: one ``jobs`` table
(in its own database file next to the synthesis store's shards, inside
the service cache directory) holding every job's request, lifecycle
timestamps, and — for finished jobs — the result JSON or error string.

Concurrent-writer hardening mirrors (and goes beyond) the store tier's
sweep-worker setup: WAL journaling with a generous busy timeout,
``BEGIN IMMEDIATE`` transactions for read-modify-write updates (the
coalesce counter), and bounded retries on transient ``database is
locked`` failures, so a server, its workers, and ``repro status``
probes in other processes can all touch one registry safely.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from ..errors import ServiceError
from .jobs import JOB_STATES, JobRecord

__all__ = ["JobRegistry", "REGISTRY_SCHEMA_VERSION"]

#: Bumped when the jobs-table layout changes incompatibly; a registry
#: recorded under a different version is dropped on open (job rows are
#: operational state, not data of record).
REGISTRY_SCHEMA_VERSION = 1

_DB_NAME = "service_jobs.sqlite"

_WRITE_RETRIES = 5
_WRITE_RETRY_SLEEP_S = 0.02


class JobRegistry:
    """Durable job table with store-grade concurrent-writer hardening."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Per-job artifacts (progress lines, search traces) live here,
        #: one file per job id, so they stream without dragging large
        #: blobs through the jobs table.
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(exist_ok=True)
        self.path = self.root / _DB_NAME
        self._lock = threading.Lock()
        self._db = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._init_schema()

    def _init_schema(self) -> None:
        db = self._db
        db.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        db.execute(
            "CREATE TABLE IF NOT EXISTS jobs ("
            " job_id TEXT PRIMARY KEY,"
            " fingerprint TEXT NOT NULL,"
            " state TEXT NOT NULL,"
            " request TEXT NOT NULL,"
            " submitted_at REAL NOT NULL,"
            " started_at REAL,"
            " finished_at REAL,"
            " error TEXT,"
            " result TEXT,"
            " served_from_store INTEGER NOT NULL DEFAULT 0,"
            " clients INTEGER NOT NULL DEFAULT 1)"
        )
        db.execute(
            "CREATE INDEX IF NOT EXISTS jobs_fingerprint"
            " ON jobs (fingerprint, state)"
        )
        row = db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            db.execute(
                "INSERT OR IGNORE INTO meta VALUES ('schema_version', ?)",
                (str(REGISTRY_SCHEMA_VERSION),),
            )
        elif row[0] != str(REGISTRY_SCHEMA_VERSION):
            db.execute("DELETE FROM jobs")
            db.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(REGISTRY_SCHEMA_VERSION),),
            )
        db.commit()

    # ------------------------------------------------------------------
    # Write path (retry-hardened)
    # ------------------------------------------------------------------
    def _write(self, sql: str, params: tuple, immediate: bool = False) -> None:
        """Execute one write, retrying transient writer contention."""
        last: Exception | None = None
        for attempt in range(_WRITE_RETRIES):
            try:
                with self._lock:
                    if immediate:
                        # Take the writer lock up front so the whole
                        # read-modify-write statement is atomic against
                        # other processes.
                        self._db.execute("BEGIN IMMEDIATE")
                    self._db.execute(sql, params)
                    self._db.commit()
                return
            except sqlite3.OperationalError as exc:
                last = exc
                if "locked" not in str(exc) and "busy" not in str(exc):
                    break
                with self._lock:
                    try:
                        self._db.rollback()
                    except sqlite3.Error:
                        pass
                time.sleep(_WRITE_RETRY_SLEEP_S * (attempt + 1))
            except sqlite3.Error as exc:
                last = exc
                break
        raise ServiceError(f"job registry write failed: {last}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        request: dict[str, Any],
        fingerprint: str,
        state: str = "queued",
        result: dict[str, Any] | None = None,
        served_from_store: bool = False,
    ) -> JobRecord:
        """Insert a new job row and return its record (fresh job id)."""
        if state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r}")
        now = time.time()
        record = JobRecord(
            job_id=uuid.uuid4().hex[:16],
            fingerprint=fingerprint,
            state=state,
            request=request,
            submitted_at=now,
            finished_at=now if state in ("done", "failed") else None,
            result=result,
            served_from_store=served_from_store,
        )
        self._write(
            "INSERT INTO jobs (job_id, fingerprint, state, request,"
            " submitted_at, started_at, finished_at, error, result,"
            " served_from_store, clients)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.job_id, record.fingerprint, record.state,
                json.dumps(record.request, sort_keys=True),
                record.submitted_at, record.started_at, record.finished_at,
                record.error,
                json.dumps(record.result, sort_keys=True)
                if record.result is not None else None,
                int(record.served_from_store), record.clients,
            ),
        )
        return record

    def mark_running(self, job_id: str) -> None:
        """``queued`` → ``running`` (a worker process took the job)."""
        self._write(
            "UPDATE jobs SET state = 'running', started_at = ?"
            " WHERE job_id = ? AND state = 'queued'",
            (time.time(), job_id),
        )

    def finish(self, job_id: str, result: dict[str, Any]) -> None:
        """Attach a result and move the job to ``done``."""
        self._write(
            "UPDATE jobs SET state = 'done', finished_at = ?, result = ?"
            " WHERE job_id = ?",
            (time.time(), json.dumps(result, sort_keys=True), job_id),
        )

    def fail(self, job_id: str, error: str) -> None:
        """Attach an error and move the job to ``failed``."""
        self._write(
            "UPDATE jobs SET state = 'failed', finished_at = ?, error = ?"
            " WHERE job_id = ?",
            (time.time(), error, job_id),
        )

    def add_client(self, job_id: str) -> None:
        """Count one coalesced duplicate submission onto a live job."""
        self._write(
            "UPDATE jobs SET clients = clients + 1 WHERE job_id = ?",
            (job_id,),
            immediate=True,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _row_to_record(self, row: tuple) -> JobRecord:
        return JobRecord(
            job_id=row[0],
            fingerprint=row[1],
            state=row[2],
            request=json.loads(row[3]),
            submitted_at=row[4],
            started_at=row[5],
            finished_at=row[6],
            error=row[7],
            result=json.loads(row[8]) if row[8] is not None else None,
            served_from_store=bool(row[9]),
            clients=row[10],
        )

    _COLUMNS = (
        "job_id, fingerprint, state, request, submitted_at, started_at,"
        " finished_at, error, result, served_from_store, clients"
    )

    def get(self, job_id: str) -> JobRecord | None:
        """The record of one job, or ``None`` for unknown ids."""
        with self._lock:
            row = self._db.execute(
                f"SELECT {self._COLUMNS} FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return self._row_to_record(row) if row is not None else None

    def active_for(self, fingerprint: str) -> JobRecord | None:
        """The queued/running job for *fingerprint*, if any (coalescing)."""
        with self._lock:
            row = self._db.execute(
                f"SELECT {self._COLUMNS} FROM jobs"
                " WHERE fingerprint = ? AND state IN ('queued', 'running')"
                " ORDER BY submitted_at LIMIT 1",
                (fingerprint,),
            ).fetchone()
        return self._row_to_record(row) if row is not None else None

    def counts(self) -> dict[str, int]:
        """Jobs per state (absent states are reported as zero)."""
        with self._lock:
            rows = self._db.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    def queue_depth(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, max_finished: int) -> int:
        """Drop oldest finished jobs beyond *max_finished* (and their
        artifact files); live jobs are never touched."""
        if max_finished < 0:
            raise ServiceError(
                f"max_finished must be >= 0, got {max_finished}"
            )
        with self._lock:
            victims = self._db.execute(
                "SELECT job_id FROM jobs WHERE state IN ('done', 'failed')"
                " ORDER BY finished_at DESC, job_id LIMIT -1 OFFSET ?",
                (max_finished,),
            ).fetchall()
        if not victims:
            return 0
        for (job_id,) in victims:
            self._write("DELETE FROM jobs WHERE job_id = ?", (job_id,))
            for suffix in ("progress.jsonl", "trace.jsonl"):
                artifact = self.jobs_dir / f"{job_id}.{suffix}"
                if artifact.exists():
                    artifact.unlink()
        return len(victims)

    # ------------------------------------------------------------------
    # Per-job artifacts
    # ------------------------------------------------------------------
    def progress_path(self, job_id: str) -> Path:
        """Where the worker appends the job's progress JSONL lines."""
        return self.jobs_dir / f"{job_id}.progress.jsonl"

    def trace_path(self, job_id: str) -> Path:
        """Where the worker writes the job's full search trace."""
        return self.jobs_dir / f"{job_id}.trace.jsonl"

    def progress(self, job_id: str) -> list[dict[str, Any]]:
        """Parsed progress events of one job (empty before it starts)."""
        path = self.progress_path(job_id)
        if not path.exists():
            return []
        events = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if line:
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    # A worker may be mid-append; a torn final line is
                    # not an error, it simply isn't visible yet.
                    break
        return events

    def close(self) -> None:
        """Close the registry connection (idempotent)."""
        if self._db is not None:
            self._db.close()
