"""The asyncio HTTP/JSON job server (``repro serve``).

One :class:`SynthesisService` owns the three moving parts of the
service: the durable :class:`~repro.service.registry.JobRegistry`, the
shared :class:`~repro.synthesis.store.SynthesisStore` (whose
``service`` namespace holds completed result blobs), and a pool of
worker processes running :func:`~repro.service.worker.run_job`.  The
HTTP layer is deliberately tiny — stdlib asyncio streams, one request
per connection, JSON in and out — so the service adds no dependencies.

Endpoints (full reference with examples: ``docs/SERVICE.md``)::

    GET  /healthz          liveness probe
    GET  /stats            service counters + queue depths + store stats
    POST /jobs             submit a job (JSON JobRequest body)
    GET  /jobs/<id>        job status + progress events
    GET  /jobs/<id>/result full result JSON (done jobs only)
    GET  /jobs/<id>/trace  recorded search trace (JSONL, traced jobs)

Submission resolves the request to its canonical fingerprint first and
then takes the cheapest path that answers it: attach to an in-flight
job with the same fingerprint (request coalescing), answer from the
persistent store (completed earlier, any process), or dispatch to the
worker pool.  Worker slots are gated by a semaphore so a queued job
stays ``queued`` in the registry until a worker actually takes it.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ReproError, ServiceError
from ..library.library import default_library
from ..reporting.sweep import quick_config
from ..synthesis.context import SynthesisConfig
from ..synthesis.store import MISSING, STORE_SCHEMA_VERSION, SynthesisStore
from .jobs import JobRequest, request_fingerprint, resolve_job_design
from .registry import JobRegistry
from .worker import run_job

__all__ = ["ServiceConfig", "ServiceStats", "SynthesisService"]


@dataclass
class ServiceConfig:
    """Placement and sizing knobs of one server instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral free port (see ``bound_port``).
    port: int = 8000
    #: Worker processes synthesizing jobs concurrently.
    workers: int = 1
    #: Registry + store directory (the service's durable state).
    cache_dir: str = ".repro-service"
    #: Persistent-tier shard count (``None`` auto-detects the layout).
    store_shards: int | None = None
    #: Run jobs in worker *processes* (the default).  Thread mode exists
    #: for platforms without process pools and for hermetic tests.
    use_processes: bool = True
    #: Reject request bodies larger than this (a design text should be
    #: kilobytes; anything bigger is a client bug or abuse).
    max_request_bytes: int = 16 << 20
    #: When set, prune the registry to this many finished jobs at boot.
    prune_jobs: int | None = None
    #: When set, prune the persistent store to this many entries at boot.
    prune_store: int | None = None


@dataclass
class ServiceStats:
    """Service-level counters (the ``/stats`` endpoint's ``counters``)."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    #: Submissions attached to an already queued/running identical job.
    coalesce_hits: int = 0
    #: Submissions answered from the persistent store's ``service``
    #: namespace without touching the worker pool.
    store_hits: int = 0
    #: Jobs actually dispatched to a worker (cold synthesis runs).
    synth_runs: int = 0
    rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-data view for the ``/stats`` payload."""
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "coalesce_hits": self.coalesce_hits,
            "store_hits": self.store_hits,
            "synth_runs": self.synth_runs,
            "rejected": self.rejected,
        }


@dataclass
class _Response:
    """One HTTP response: status, JSON payload or raw body."""

    status: int
    payload: Any = None
    body: bytes | None = None
    content_type: str = "application/json"


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error"}


class SynthesisService:
    """Job server state machine + asyncio HTTP front end."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.registry = JobRegistry(self.config.cache_dir)
        self.store = SynthesisStore(
            cache_dir=self.config.cache_dir,
            shards=self.config.store_shards,
        )
        self.stats = ServiceStats()
        #: fingerprint → job id of the queued/running job, for O(1)
        #: coalescing inside this server process.
        self._inflight: dict[str, str] = {}
        self._base_library = default_library()
        #: Fingerprints use the effort-resolved engine config; cache
        #: knobs are execution-only and excluded from its signature.
        self._effort_configs: dict[str, SynthesisConfig] = {
            "quick": quick_config(),
            "full": SynthesisConfig(),
        }
        self._executor: Executor | None = None
        self._slots: asyncio.Semaphore | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self.bound_port: int | None = None
        if self.config.prune_jobs is not None:
            self.registry.prune(self.config.prune_jobs)
        if self.config.prune_store is not None:
            self.store.prune_persistent(self.config.prune_store)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_executor(self) -> Executor:
        workers = max(1, self.config.workers)
        if self.config.use_processes:
            try:
                return ProcessPoolExecutor(max_workers=workers)
            except (OSError, ImportError, ValueError):
                # Platforms without process support degrade to threads —
                # same results, shared GIL.
                pass
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )

    async def start(self) -> None:
        """Bind the listening socket and start accepting requests."""
        if self._server is not None:
            raise ServiceError("service already started")
        self._executor = self._make_executor()
        self._slots = asyncio.Semaphore(max(1, self.config.workers))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self, announce: bool = True) -> None:
        """Start (if needed), print the bound address, serve until stopped."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        if announce:
            print(
                f"repro service listening on "
                f"http://{self.config.host}:{self.bound_port} "
                f"({self.config.workers} worker(s), "
                f"cache {self.config.cache_dir})",
                flush=True,
            )
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, wait for dispatched jobs, release resources."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.registry.close()
        self.store.close()

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._read_and_route(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # never kill the accept loop
            response = _Response(500, {"error": f"internal error: {exc}"})
        body = (
            response.body
            if response.body is not None
            else json.dumps(response.payload, sort_keys=True).encode()
        )
        reason = _REASONS.get(response.status, "Unknown")
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_and_route(self, reader: asyncio.StreamReader) -> _Response:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return _Response(400, {"error": "empty request"})
        try:
            method, target, _version = request_line.split()
        except ValueError:
            return _Response(400, {"error": "malformed request line"})
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_request_bytes:
            self.stats.rejected += 1
            return _Response(413, {"error": "request body too large"})
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return self._route(method, path, body)

    def _route(self, method: str, path: str, body: bytes) -> _Response:
        if path == "/healthz" and method == "GET":
            return _Response(200, {"ok": True, "store_schema":
                                   STORE_SCHEMA_VERSION})
        if path == "/stats" and method == "GET":
            return _Response(200, self._stats_payload())
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.stats.rejected += 1
                return _Response(400, {"error": "request body is not JSON"})
            try:
                return self.submit(payload)
            except ReproError as exc:
                self.stats.rejected += 1
                return _Response(400, {"error": str(exc)})
        if path.startswith("/jobs/"):
            if method != "GET":
                return _Response(405, {"error": f"{method} not allowed"})
            parts = path[len("/jobs/"):].split("/")
            job_id = parts[0]
            record = self.registry.get(job_id)
            if record is None:
                return _Response(404, {"error": f"unknown job {job_id!r}"})
            if len(parts) == 1:
                status = record.as_dict()
                status["progress"] = self.registry.progress(job_id)
                return _Response(200, status)
            if parts[1:] == ["result"]:
                if record.state != "done":
                    return _Response(
                        404,
                        {"error": f"job {job_id} is {record.state}, "
                                  "result not available"},
                    )
                return _Response(200, record.as_dict(include_result=True))
            if parts[1:] == ["trace"]:
                trace_path = self.registry.trace_path(job_id)
                if not trace_path.exists():
                    return _Response(
                        404,
                        {"error": f"job {job_id} has no recorded trace "
                                  "(submit with \"trace\": true)"},
                    )
                return _Response(
                    200,
                    body=trace_path.read_bytes(),
                    content_type="application/x-ndjson",
                )
        return _Response(404, {"error": f"no route for {method} {path}"})

    def _stats_payload(self) -> dict[str, Any]:
        counts = self.registry.counts()
        return {
            "counters": self.stats.as_dict(),
            "queue": {
                **counts,
                "depth": counts["queued"] + counts["running"],
                "inflight": len(self._inflight),
            },
            "workers": self.config.workers,
            "store": self.store.persistent_stats(),
        }

    # ------------------------------------------------------------------
    # Submission: coalesce → store → dispatch
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> _Response:
        """Handle one ``POST /jobs`` body (runs in the event loop)."""
        request = JobRequest.from_dict(payload)
        design = resolve_job_design(request)
        fingerprint = request_fingerprint(
            request, design, self._base_library,
            self._effort_configs[request.effort],
        )
        self.stats.jobs_submitted += 1

        # 1. Coalesce onto this server's in-flight job...
        job_id = self._inflight.get(fingerprint)
        record = self.registry.get(job_id) if job_id is not None else None
        if record is None or record.state not in ("queued", "running"):
            # ...or onto another server instance's live job on the same
            # registry (its owner finishes it; we only report status).
            record = self.registry.active_for(fingerprint)
        if record is not None:
            self.registry.add_client(record.job_id)
            self.stats.coalesce_hits += 1
            return _Response(200, {
                "job_id": record.job_id,
                "state": record.state,
                "coalesced": True,
                "served_from_store": False,
            })

        # 2. Serve a completed identical request from the store.  Not
        # for priors jobs: their result depends on the priors the store
        # has accumulated so far, so an old answer would pin the search
        # to priors that have since been refined.
        cached = MISSING
        if not request.priors:
            content = ("service", STORE_SCHEMA_VERSION, fingerprint)
            cached = self.store.get("service", fingerprint)
            if cached is MISSING:
                cached = self.store.fetch("service", fingerprint, content)
        if cached is not MISSING:
            record = self.registry.create(
                request.to_dict(), fingerprint, state="done",
                result=cached, served_from_store=True,
            )
            self.stats.store_hits += 1
            return _Response(200, {
                "job_id": record.job_id,
                "state": "done",
                "coalesced": False,
                "served_from_store": True,
            })

        # 3. Dispatch a cold job to the worker pool.
        record = self.registry.create(request.to_dict(), fingerprint)
        self._inflight[fingerprint] = record.job_id
        self.stats.synth_runs += 1
        worker_payload = {
            "job_id": record.job_id,
            "request": request.to_dict(),
            "fingerprint": fingerprint,
            "cache_dir": self.config.cache_dir,
            "store_shards": self.store.shards,
            "persistent_cache": True,
            "jobs_dir": str(self.registry.jobs_dir),
        }
        task = asyncio.get_running_loop().create_task(
            self._execute(record.job_id, fingerprint, worker_payload)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return _Response(202, {
            "job_id": record.job_id,
            "state": "queued",
            "coalesced": False,
            "served_from_store": False,
        })

    async def _execute(
        self, job_id: str, fingerprint: str, worker_payload: dict[str, Any]
    ) -> None:
        """Run one dispatched job through the pool and record its end."""
        assert self._slots is not None and self._executor is not None
        async with self._slots:
            self.registry.mark_running(job_id)
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    self._executor, run_job, worker_payload
                )
            except Exception as exc:
                self.registry.fail(job_id, f"{type(exc).__name__}: {exc}")
                self.stats.jobs_failed += 1
            else:
                verification = result.get("verification")
                if verification is not None and not verification.get("ok"):
                    self.registry.fail(
                        job_id,
                        "verification failed: "
                        + (verification.get("counterexample") or "diverged"),
                    )
                    self.stats.jobs_failed += 1
                else:
                    self.store.put(
                        "service", fingerprint,
                        ("service", STORE_SCHEMA_VERSION, fingerprint),
                        result,
                    )
                    self.registry.finish(job_id, result)
                    self.stats.jobs_completed += 1
            finally:
                if self._inflight.get(fingerprint) == job_id:
                    del self._inflight[fingerprint]


def run_service(config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro serve``.

    Serves until SIGINT/SIGTERM, then shuts down *gracefully*: stop
    accepting, let dispatched jobs finish, and join the worker pool —
    otherwise a terminated server leaves orphaned pool processes
    behind, holding its inherited stdout/stderr pipes open.
    """
    import signal

    service = SynthesisService(config)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):
                pass  # non-main thread / platforms without signals
        serving = asyncio.ensure_future(service.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (serving, stopping):
                task.cancel()
            await asyncio.gather(serving, stopping, return_exceptions=True)
            await service.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
