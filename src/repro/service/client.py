"""Stdlib HTTP client for the job server (``repro submit``/``status``).

:class:`ServiceClient` is a thin, dependency-free wrapper over
``urllib`` that speaks the server's JSON dialect: it submits
:class:`~repro.service.jobs.JobRequest` payloads, polls job status, and
fetches results/traces.  Server-side rejections (HTTP 4xx/5xx with an
``{"error": ...}`` body) and unreachable servers both surface as
:class:`~repro.errors.ServiceError` so CLI callers get one failure
type.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..errors import ServiceError
from .jobs import JobRequest

__all__ = ["ServiceClient"]


class ServiceClient:
    """Client for one server base URL (e.g. ``http://127.0.0.1:8000``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        if "://" not in self.base_url:
            self.base_url = "http://" + self.base_url
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(
        self, method: str, path: str, payload: Any = None, raw: bool = False
    ) -> Any:
        data = (
            json.dumps(payload).encode() if payload is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc
        if raw:
            return body.decode()
        try:
            return json.loads(body.decode())
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"service returned non-JSON body for {path}"
            ) from exc

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz`` — liveness probe."""
        return self._call("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` — counters, queue depths, store stats."""
        return self._call("GET", "/stats")

    def submit(self, request: JobRequest | dict[str, Any]) -> dict[str, Any]:
        """``POST /jobs`` — submit one job; returns the dispatch receipt.

        The receipt carries ``job_id``, the initial ``state``, and how
        the request was answered: ``coalesced`` (attached to a live
        identical job) or ``served_from_store`` (finished instantly from
        the persistent tier).
        """
        payload = (
            request.to_dict() if isinstance(request, JobRequest) else request
        )
        return self._call("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>`` — lifecycle, progress events, summary."""
        return self._call("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>/result`` — the full result of a done job."""
        return self._call("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> str:
        """``GET /jobs/<id>/trace`` — raw JSONL search trace text."""
        return self._call("GET", f"/jobs/{job_id}/trace", raw=True)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
    ) -> dict[str, Any]:
        """Poll until the job reaches ``done``/``failed``; return status.

        Raises :class:`ServiceError` on timeout.  A ``failed`` terminal
        state is returned, not raised — callers decide how fatal it is.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for job "
                    f"{job_id} (last state: {status['state']})"
                )
            time.sleep(poll_s)
