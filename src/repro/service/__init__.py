"""Synthesis-as-a-service: async job server over the tiered store.

The single-process engine (``repro.synthesis``) serves one caller; this
package serves many.  ``repro serve`` runs an asyncio HTTP/JSON job
server that accepts synthesis jobs (design text, built-in benchmark, or
generated-corpus seed, plus library/constraint knobs), schedules them
across a pool of worker processes, and answers status/result queries —
with two sharing layers on top of the plain engine:

* **request coalescing** — identical requests are keyed by the
  canonical design fingerprint (:mod:`repro.dfg.canonical`) plus every
  result-shaping request knob; while a job for that fingerprint is
  queued or running, further submissions attach to it instead of
  spawning duplicate work (:func:`repro.service.jobs.request_fingerprint`).
* **store-served repeats** — completed results are written to the
  ``service`` namespace of the persistent
  :class:`~repro.synthesis.store.SynthesisStore` tier, so a repeat of a
  finished request answers in milliseconds, byte-identical to the
  original run, without touching the worker pool.

Module map: :mod:`~repro.service.jobs` (request schema, states,
fingerprints), :mod:`~repro.service.registry` (SQLite job registry),
:mod:`~repro.service.worker` (process-pool job execution with per-job
cache teardown), :mod:`~repro.service.server` (the asyncio HTTP
server), :mod:`~repro.service.client` (stdlib HTTP client used by
``repro submit``/``repro status``).  Operator guide: ``docs/SERVICE.md``.
"""

from .client import ServiceClient
from .jobs import (
    JOB_STATES,
    JobRecord,
    JobRequest,
    request_fingerprint,
    resolve_job_design,
)
from .registry import JobRegistry
from .server import ServiceConfig, SynthesisService
from .worker import run_job

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobRegistry",
    "JobRequest",
    "ServiceClient",
    "ServiceConfig",
    "SynthesisService",
    "request_fingerprint",
    "resolve_job_design",
    "run_job",
]
