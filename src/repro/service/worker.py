"""Process-pool side of the job server: run one job, stay bounded.

:func:`run_job` is the pool entry point the server dispatches to.  It
rebuilds the design from the request, runs the same flow as ``repro
synth`` (complex-library build, synthesis, optional differential
verification), and returns a JSON-serializable result dict — the
server owns the registry and store writes.

Two obligations matter for a *long-lived* worker serving many jobs:

* **progress visibility** — the worker appends stage events to the
  job's progress file (and, when tracing is requested, writes the full
  search trace), so the status endpoint can stream what a job is doing
  without any channel back from the pool;
* **memory-boundedness** — every job ends (success *or* failure) with
  :func:`~repro.power.activity.reset_activity_caches` and the energy
  memos dropped, so the module-level caches of this process never pin
  streams of finished jobs.  The engine tears these down inside
  :func:`~repro.synthesis.api._synthesize` as well; the worker-level
  ``finally`` also covers failures in library building, trace writing
  and verification, which run outside the engine.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from ..power import image_traces, speech_traces, white_traces
from ..power.activity import reset_activity_caches
from ..reporting.export import result_to_dict
from ..reporting.sweep import quick_config
from ..rtl import emit_netlist
from ..synthesis.context import SynthesisConfig
from ..synthesis.incremental import _reset_energy_memos
from .jobs import JobRequest, resolve_job_design

__all__ = ["job_config", "run_job"]

_TRACE_GENERATORS = {
    "speech": speech_traces,
    "white": white_traces,
    "image": image_traces,
}


def job_config(request: JobRequest, payload: dict[str, Any]) -> SynthesisConfig:
    """The engine configuration one request resolves to.

    Shared by the worker and by :func:`~repro.service.jobs.
    request_fingerprint` callers so the fingerprint's config signature
    matches what actually runs.
    """
    config = quick_config() if request.effort == "quick" else SynthesisConfig()
    config.cache_dir = payload.get("cache_dir")
    config.persistent_cache = payload.get("persistent_cache", True)
    config.store_shards = payload.get("store_shards")
    if request.trace:
        config.trace = True
        # Timings off: job traces double as bit-identity witnesses
        # (cold vs. store-served repeats), so they must be
        # byte-reproducible.
        config.trace_timings = False
        config.trace_meta = {
            "benchmark": request.benchmark,
            "design_path": None,
            "traces": request.traces,
            "seed": request.seed,
            "samples": request.samples,
            "built_library": not request.flatten,
        }
    elif request.priors:
        # Priors are mined from the structured trace, so record it even
        # when the client did not ask for a trace artifact.
        config.trace = True
    if request.policy is not None:
        config.search_policy = request.policy
    elif request.priors:
        config.search_policy = "priors"
    return config


class _Progress:
    """Append-only JSONL progress writer (one flush per event)."""

    def __init__(self, path: Path | None):
        self._path = path
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("")

    def emit(self, kind: str, **fields: Any) -> None:
        if self._path is None:
            return
        event = {"k": kind, "ts": round(time.time(), 3), **fields}
        with self._path.open("a") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


def run_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one synthesis job; the process-pool entry point.

    *payload* carries the wire request plus server-side placement:
    ``job_id``, ``request`` (dict), ``cache_dir``/``store_shards``/
    ``persistent_cache`` (the shared store), ``jobs_dir`` (progress and
    trace files; ``None`` silences both), and ``fingerprint`` (echoed
    into the result).  Raises :class:`~repro.errors.ReproError`
    subclasses on invalid/ infeasible jobs — the server records them as
    the job's failure.
    """
    request = JobRequest.from_dict(payload["request"])
    job_id = payload.get("job_id", "local")
    jobs_dir = payload.get("jobs_dir")
    progress = _Progress(
        Path(jobs_dir) / f"{job_id}.progress.jsonl" if jobs_dir else None
    )
    progress.emit("job_start", job_id=job_id)
    try:
        design = resolve_job_design(request)
        progress.emit(
            "design_resolved",
            design=design.name,
            operations=design.total_operations(),
        )
        config = job_config(request, payload)

        from ..library import default_library
        from ..synthesis import synthesize, synthesize_flat
        from ..synthesis.library_gen import build_complex_library

        library = default_library()
        if not request.flatten and any(
            dfg.hier_nodes() for dfg in design.dfgs()
        ):
            t0 = time.perf_counter()
            library = build_complex_library(design, library, config=config)
            progress.emit(
                "library_built", elapsed_s=round(time.perf_counter() - t0, 3)
            )

        traces = _TRACE_GENERATORS[request.traces](
            design.top, n=request.samples, seed=request.seed
        )
        portfolio = None
        if request.portfolio:
            from ..search import portfolio_synthesize

            portfolio = portfolio_synthesize(
                design,
                library,
                sampling_ns=request.sampling_ns,
                laxity_factor=request.laxity_factor,
                objective=request.objective,
                traces=traces,
                config=config,
                n_samples=request.samples,
                n_members=request.portfolio,
            )
            result = portfolio.result
            if portfolio.winner is not None:
                progress.emit(
                    "portfolio",
                    members=len(portfolio.members),
                    generations=portfolio.generations,
                    winner_policy=portfolio.winner.policy,
                )
        else:
            run = synthesize_flat if request.flatten else synthesize
            result = run(
                design,
                library,
                sampling_ns=request.sampling_ns,
                laxity_factor=request.laxity_factor,
                objective=request.objective,  # type: ignore[arg-type]
                traces=traces,
                config=config,
                n_samples=request.samples,
            )
        progress.emit(
            "synthesized",
            area=result.area,
            power=result.power,
            vdd=result.vdd,
            clk_ns=result.clk_ns,
            elapsed_s=round(result.elapsed_s, 3),
        )

        payload_out = result_to_dict(result)
        payload_out["fingerprint"] = payload.get("fingerprint")
        payload_out["design"] = design.name
        payload_out["netlist"] = emit_netlist(result.netlist())
        payload_out["controller_states"] = result.controller().n_states
        if portfolio is not None and portfolio.winner is not None:
            payload_out["portfolio"] = {
                "members": [
                    {
                        "generation": m.generation,
                        "member": m.member,
                        "policy": m.policy,
                        "cost": m.cost,
                        "evaluations": m.evaluations,
                    }
                    for m in portfolio.members
                ],
                "generations": portfolio.generations,
                "winner_policy": portfolio.winner.policy,
                "winner_generation": portfolio.winner.generation,
            }

        if request.priors and result.trace_events is not None:
            from ..dfg.canonical import design_fingerprint
            from ..search.priors import mine_events, save_priors
            from ..synthesis.store import SynthesisStore

            table = mine_events(result.trace_events)
            if config.cache_dir:
                priors_store = SynthesisStore.from_config(config)
                try:
                    save_priors(
                        priors_store,
                        design_fingerprint(design, design.top),
                        table,
                    )
                finally:
                    priors_store.close()
            progress.emit("priors_mined", stats=len(table.stats))

        if request.verify:
            check = result.verify()
            payload_out["verification"] = {
                "ok": check.ok,
                "n_samples": check.n_samples,
                "counterexample": (
                    check.counterexample.describe()
                    if check.counterexample is not None
                    else None
                ),
            }
            progress.emit("verified", ok=check.ok)

        if request.trace and jobs_dir and result.trace_events is not None:
            from ..trace import write_trace

            trace_path = Path(jobs_dir) / f"{job_id}.trace.jsonl"
            n_events = write_trace(result.trace_events, trace_path)
            payload_out["trace_events"] = n_events
        progress.emit("job_end", status="done")
        return payload_out
    except BaseException as exc:
        progress.emit(
            "job_end", status="failed", error=f"{type(exc).__name__}: {exc}"
        )
        raise
    finally:
        # Per-job teardown: keep a long-lived worker memory-bounded
        # even when the failure happened outside the engine's own
        # teardown (library build, netlist emission, verification).
        reset_activity_caches()
        _reset_energy_memos()
