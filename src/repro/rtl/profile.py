"""Module profiles: expected input/output timing of RTL modules.

Section 2 defines the **profile** of an RTL module as "an ordered set
consisting of the expected input arrival times and output arrival
times", defined for any module irrespective of whether it is placed in
a circuit.  Profiles are stored in *nanoseconds at the 5 V reference*
so one characterization serves every (clock period, Vdd) operating
point; conversion to cycles applies the CMOS delay scaling and the
ceiling to whole clock ticks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..library.voltage import delay_scale

__all__ = ["Profile", "CycleProfile"]


@dataclass(frozen=True)
class CycleProfile:
    """A profile quantized to clock cycles at one operating point."""

    input_offsets: tuple[int, ...]
    output_latencies: tuple[int, ...]

    @property
    def busy_cycles(self) -> int:
        """Cycles the module occupies its instance (non-pipelined)."""
        return max(self.output_latencies) if self.output_latencies else 1


@dataclass(frozen=True)
class Profile:
    """Timing profile in reference nanoseconds.

    ``input_offsets_ns[i]`` — when input *i* is expected relative to
    module start; ``output_latencies_ns[j]`` — when output *j* is
    produced after start, both at 5 V.
    """

    input_offsets_ns: tuple[float, ...]
    output_latencies_ns: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.output_latencies_ns:
            raise ValueError("a profile needs at least one output latency")
        if any(x < 0 for x in self.input_offsets_ns):
            raise ValueError("input offsets must be non-negative")
        if any(x <= 0 for x in self.output_latencies_ns):
            raise ValueError("output latencies must be positive")

    @property
    def latency_ns(self) -> float:
        """Overall start-to-last-output latency at 5 V."""
        return max(self.output_latencies_ns)

    def at(self, clk_ns: float, vdd: float) -> CycleProfile:
        """Quantize to whole cycles at the given operating point.

        Input offsets are *floored* (an input expected at 2.3 cycles must
        be there by cycle 2 — assuming later would be optimistic) while
        output latencies are *ceiled* (an output ready within 2.3 cycles
        is usable from cycle 3) so quantization never fabricates slack.
        """
        if clk_ns <= 0:
            raise ValueError("clock period must be positive")
        scale = delay_scale(vdd)
        offsets = tuple(
            int(math.floor(o * scale / clk_ns + 1e-9)) for o in self.input_offsets_ns
        )
        latencies = tuple(
            max(1, int(math.ceil(l * scale / clk_ns - 1e-9)))
            for l in self.output_latencies_ns
        )
        return CycleProfile(offsets, latencies)

    @staticmethod
    def from_cycles(
        input_offsets: tuple[int, ...],
        output_latencies: tuple[int, ...],
        clk_ns: float,
        vdd: float = 5.0,
    ) -> "Profile":
        """Build a reference profile from a schedule measured in cycles.

        Used when a complex module is characterized from a synthesized
        sub-solution running at ``(clk_ns, vdd)``: cycle counts are
        converted back to 5 V nanoseconds.
        """
        scale = delay_scale(vdd)
        return Profile(
            tuple(o * clk_ns / scale for o in input_offsets),
            tuple(max(l, 1) * clk_ns / scale for l in output_latencies),
        )
