"""Cycle-accurate interpreter for synthesized RTL architectures.

The synthesis deliverable is "a datapath netlist, and a finite-state
machine description of the controller" (Section 5) — yet nothing in the
flow ever *executes* that pair.  This module closes the loop: it steps a
:class:`~repro.rtl.controller.FSMController` over a
:class:`~repro.rtl.components.DatapathNetlist` one clock cycle at a
time, driving register load-enables, functional-unit starts and
multiplexer selects exactly as the control words dictate, and models
multicycle, chained and pipelined units faithfully.  The differential
oracle in :mod:`repro.verify` compares its outputs against the
behavioral DFG simulation sample by sample.

Timing convention
-----------------
The model follows the conventions of the scheduler and cost model:

* A functional unit started in state *s* reads each external operand
  port at ``s + offset`` (offsets are non-zero only for complex-module
  profiles) and presents output *j* on its output port from cycle
  ``s + latency_j`` onward.
* A register load asserted in state *c* captures the source value at
  the clock edge *ending* cycle *c*; reads during cycle *c* therefore
  still see the previously stored value.  A consumer scheduled to read
  a value in the very cycle it is produced takes the in-flight value
  through the transparent-capture path (``bypass`` on its
  :class:`ReadSpec`) — the register-file write-through that makes
  back-to-back schedules work in the cost model's lifetime convention.
* The linear controller clamps loads of end-of-schedule results into
  its last state; such captures commit on the closing clock edge, the
  same edge the environment samples the primary outputs on.

Value laziness
--------------
Complex-module profiles are *contracts*, not operational recipes: the
slack-derived input offsets may schedule an operand read **after** an
early output's promised latency (the paper's Example 1 semantics are
stream-level, not causality-level).  The interpreter therefore keeps
timing strict but values lazy — an activation's outputs appear on the
unit's ports at their contract times as thunks over the activation's
operand record, and are forced to concrete integers at observation
points (register-load logging and primary-output sampling).  Every
structural check (mux selects, X reads, start-queue order, load
placement) still happens at the exact cycle the control words dictate.

Semantic table
--------------
The netlist does not know *what* a functional unit computes, only how
it is wired; the controller knows *when* things happen.  The missing
piece — per-activation operand ports, latencies and the bit-true
compute function — is supplied by an :class:`ExecPlan` (built from the
bound solution by :mod:`repro.verify.plan`).  The interpreter treats
the plan as the datasheet of the datapath components; everything
sequencing-related (which state starts what, which mux select is
asserted when, which register captures which wire) is taken from the
FSM and netlist alone, so corrupted bindings and controllers diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ReproError
from .components import ComponentKind, DatapathNetlist
from .controller import ControllerState, FSMController

__all__ = [
    "ReadSpec",
    "OutputSpec",
    "ExecSemantics",
    "ExecPlan",
    "SampleOutcome",
    "InterpreterFault",
    "RTLInterpreter",
]

#: Extra idle cycles the interpreter is willing to run past the FSM's
#: last state to drain in-flight completions before declaring a fault.
_DRAIN_MARGIN = 64


class InterpreterFault(ReproError):
    """Structural divergence while executing the RTL (an X in hardware).

    Raised when the control words and the datapath disagree: a read of
    a never-written register, a multi-source port without a mux select,
    conflicting loads of one register in one cycle, or a unit start
    with no matching activation left in the plan.
    """

    def __init__(self, message: str, cycle: int):
        super().__init__(message)
        self.cycle = cycle


@dataclass(frozen=True)
class ReadSpec:
    """One external operand read of an activation."""

    port: int
    offset: int
    #: The operand is produced in the very cycle it is read: take the
    #: value in flight into the source register (write-through) instead
    #: of the stored value.
    bypass: bool = False


@dataclass(frozen=True)
class OutputSpec:
    """One output port of an activation; the result appears on ``port``
    exactly ``latency`` cycles after the start state."""

    port: int
    latency: int


@dataclass(frozen=True)
class ExecSemantics:
    """Datasheet of one activation of one unit.

    ``compute(port, operands)`` returns the bit-true value of one
    output port from the activation's operand values; the plan builds
    it from the DFG operations (cells, chains) or from the behavior's
    reference DFG (complex modules).
    """

    unit: str
    op_label: str
    reads: tuple[ReadSpec, ...]
    outputs: tuple[OutputSpec, ...]
    compute: Callable[[int, dict[int, int]], int]


@dataclass
class ExecPlan:
    """Semantic tables for one architecture.

    Attributes
    ----------
    unit_execs:
        Per unit, its activations in serialization order (the order the
        controller issues starts in).
    const_values:
        Value of each constant PORT component (``k_*``).
    deferred_loads:
        ``(register, src, src_port)`` → number of *clamped* loads of
        that triple in the controller's final state.  A result that
        becomes available exactly at the end of the schedule has its
        load clamped into the last state; in hardware it is captured at
        the closing clock edge, so the interpreter performs it after
        the sample's last completion has drained.
    output_bypass:
        Primary-output PORT ids whose feeding signal becomes available
        exactly at the schedule boundary: the environment samples them
        from the in-flight deferred capture (write-through), while every
        other register-fed output is sampled *before* the closing edge
        commits — the register may legally be overwritten at that very
        edge by a later-born value.
    """

    unit_execs: dict[str, list[ExecSemantics]]
    const_values: dict[str, int]
    deferred_loads: dict[tuple[str, str, int], int] = field(default_factory=dict)
    output_bypass: set[str] = field(default_factory=set)


@dataclass
class SampleOutcome:
    """Everything observed while interpreting one input sample."""

    outputs: list[int]
    #: ``(cycle, register, value)`` for every applied register capture.
    loads: list[tuple[int, str, int]]
    n_cycles: int


class _Lazy:
    """A unit-output value promised at a cycle, forced on observation."""

    __slots__ = ("sem", "port", "operands", "avail", "value", "resolving")

    def __init__(
        self, sem: ExecSemantics, port: int, operands: dict[int, object], avail: int
    ):
        self.sem = sem
        self.port = port
        self.operands = operands
        self.avail = avail
        self.value: int | None = None
        self.resolving = False


def _force(value: object) -> int:
    """Resolve a (possibly lazy) datapath value to a concrete integer."""
    if not isinstance(value, _Lazy):
        assert isinstance(value, int)
        return value
    if value.value is not None:
        return value.value
    if value.resolving:
        raise InterpreterFault(
            f"causal loop: output {value.port} of {value.sem.unit!r} "
            "transitively depends on itself",
            value.avail,
        )
    value.resolving = True
    try:
        operands = {p: _force(v) for p, v in value.operands.items()}
        result = value.sem.compute(value.port, operands)
    except KeyError as exc:
        raise InterpreterFault(
            f"output {value.port} of {value.sem.unit!r} depends on operand "
            f"{exc} that was never read",
            value.avail,
        ) from None
    finally:
        value.resolving = False
    value.value = result
    return result


@dataclass
class _Activation:
    """An in-flight unit activation."""

    sem: ExecSemantics
    start: int
    operands: dict[int, object] = field(default_factory=dict)


class RTLInterpreter:
    """Execute a datapath netlist under its FSM controller."""

    def __init__(
        self,
        netlist: DatapathNetlist,
        controller: FSMController,
        plan: ExecPlan,
    ):
        self.netlist = netlist
        self.controller = controller
        self.plan = plan
        self._registers = [
            c.comp_id for c in netlist.components(ComponentKind.REGISTER)
        ]
        self._input_ports: dict[str, int] = {}
        self._output_ports: list[str] = []
        for comp in netlist.components(ComponentKind.PORT):
            if comp.cell == "in":
                self._input_ports[comp.comp_id] = int(comp.comp_id[2:])
            elif comp.cell == "out":
                self._output_ports.append(comp.comp_id)
        self._output_ports.sort(key=lambda cid: int(cid[3:]))

    # ------------------------------------------------------------------
    def run(self, input_samples: list[list[int]]) -> list[SampleOutcome]:
        """Interpret every sample (each restarts the FSM from state 0)."""
        return [self.run_sample(sample) for sample in input_samples]

    def run_sample(self, inputs: list[int]) -> SampleOutcome:
        """Run the FSM once over one vector of primary-input values.

        Registers start undefined (X): a read that precedes any capture
        faults instead of silently reusing a stale value, which is what
        pins divergences to the exact cycle they originate in.
        """
        n_states = self.controller.n_states
        # While in-flight results drain past the last state, the linear
        # FSM holds its final control word: its mux selects stay
        # asserted (the controller clamps end-of-schedule selects into
        # the last state), but no further loads or starts fire.
        drain_state = ControllerState(
            cycle=-1,
            selects=list(self.controller.state(n_states - 1).selects)
            if n_states
            else [],
        )
        regs: dict[str, object | None] = {r: None for r in self._registers}
        out_values: dict[tuple[str, int], object] = {}
        #: Most recent promise per unit output port, for reads at or
        #: past the final state that race a deferred closing-edge
        #: capture (see :meth:`_boundary_value`).
        promises: dict[tuple[str, int], object] = {}
        completions: dict[int, list[tuple[str, int, object]]] = {}
        scheduled_reads: dict[int, list[tuple[_Activation, ReadSpec]]] = {}
        queues = {
            unit: iter(execs) for unit, execs in self.plan.unit_execs.items()
        }
        deferred: list[tuple[int, str, str, int]] = []
        load_log: list[tuple[int, str, object]] = []

        def port_value(comp_id: str, port: int, cycle: int) -> object:
            comp = self.netlist.component(comp_id)
            if comp.kind == ComponentKind.PORT:
                if comp.cell == "const":
                    return self.plan.const_values[comp_id]
                if comp.cell == "in":
                    return inputs[self._input_ports[comp_id]]
                raise InterpreterFault(
                    f"read from output port {comp_id!r}", cycle
                )
            value = out_values.get((comp_id, port))
            if value is None:
                raise InterpreterFault(
                    f"capture from {comp_id!r}.{port} before any result "
                    "was produced there",
                    cycle,
                )
            return value

        horizon = n_states + _DRAIN_MARGIN
        cycle = 0
        pending_events = True
        while cycle < n_states or pending_events:
            if cycle > horizon:
                raise InterpreterFault(
                    f"datapath still busy {cycle - n_states} cycles past "
                    f"the controller's {n_states} states",
                    cycle,
                )
            state = (
                self.controller.state(cycle) if cycle < n_states else drain_state
            )

            # 1. Results whose latency elapses this cycle become visible.
            for unit, port, value in completions.pop(cycle, ()):
                out_values[(unit, port)] = value

            # 2. Resolve this state's register captures (sources are unit
            #    outputs or input ports, never registers, so capture values
            #    are independent of the register file).  In the final state,
            #    end-of-schedule loads the controller clamped into it are
            #    deferred past the drain instead of capturing a stale value.
            occurrences: dict[tuple[str, str, int], int] = {}
            for load in state.loads:
                key = (load.register, load.src, load.src_port)
                occurrences[key] = occurrences.get(key, 0) + 1
            captures: dict[str, tuple[object, str, int]] = {}
            for key, n_loads in occurrences.items():
                register, src, src_port = key
                clamped = (
                    self.plan.deferred_loads.get(key, 0)
                    if cycle == n_states - 1
                    else 0
                )
                if clamped:
                    deferred.append((cycle, register, src, src_port))
                if n_loads <= clamped:
                    continue
                value = port_value(src, src_port, cycle)
                prev = captures.get(register)
                if prev is not None:
                    raise InterpreterFault(
                        f"register {register!r} loaded from both "
                        f"{prev[1]!r}.{prev[2]} and {src!r}.{src_port} in "
                        "one cycle",
                        cycle,
                    )
                captures[register] = (value, src, src_port)

            # 3a. Unit starts: bring the unit's next planned activation
            #     in flight, schedule its operand reads, and promise its
            #     outputs at their contract latencies.
            for start_cmd in state.starts:
                sem = next(queues.get(start_cmd.unit, iter(())), None)
                if sem is None:
                    raise InterpreterFault(
                        f"controller starts {start_cmd.unit!r} but the "
                        "binding has no activation left for it",
                        cycle,
                    )
                if sem.op_label != start_cmd.operation:
                    raise InterpreterFault(
                        f"controller starts {start_cmd.operation!r} on "
                        f"{start_cmd.unit!r} but the binding expects "
                        f"{sem.op_label!r}",
                        cycle,
                    )
                act = _Activation(sem, cycle, {})
                for spec in sem.outputs:
                    avail = cycle + spec.latency
                    lazy = _Lazy(sem, spec.port, act.operands, avail)
                    completions.setdefault(avail, []).append(
                        (sem.unit, spec.port, lazy)
                    )
                    promises[(sem.unit, spec.port)] = lazy
                for read in sem.reads:
                    scheduled_reads.setdefault(cycle + read.offset, []).append(
                        (act, read)
                    )

            # 3b. Operand reads due this cycle observe the pre-capture
            #     register file (captures land on the ending clock edge);
            #     bypass reads take the in-flight capture instead.
            for act, read in scheduled_reads.pop(cycle, ()):
                act.operands[read.port] = self._read_port(
                    act.sem.unit,
                    read,
                    state,
                    captures,
                    regs,
                    port_value,
                    cycle,
                    promises if cycle >= n_states - 1 else None,
                )

            # 4. Captures commit at the end of the cycle.
            for register, (value, _src, _port) in captures.items():
                regs[register] = value
                load_log.append((cycle, register, value))

            cycle += 1
            pending_events = bool(completions or scheduled_reads)

        # End-of-schedule clamp: loads deferred past the last state
        # resolve once every completion has drained, but they commit at
        # the same closing edge the environment samples the outputs on —
        # so outputs observe the register file *before* these captures,
        # unless they are themselves fed by a boundary value
        # (``output_bypass``: the write-through path at the final edge).
        deferred_values: dict[str, object] = {}
        for state_cycle, register, src, src_port in deferred:
            value = port_value(src, src_port, state_cycle)
            deferred_values[register] = value
            load_log.append((state_cycle, register, value))

        outputs: list[int] = []
        for out_id in self._output_ports:
            sources = self.netlist.sources_of(out_id, 0)
            if len(sources) != 1:
                raise InterpreterFault(
                    f"primary output {out_id!r} driven by {len(sources)} "
                    "sources",
                    cycle,
                )
            src, src_port = sources[0]
            comp = self.netlist.component(src)
            if comp.kind == ComponentKind.REGISTER:
                if out_id in self.plan.output_bypass:
                    if src not in deferred_values:
                        raise InterpreterFault(
                            f"primary output {out_id!r} expects a value "
                            f"captured into {src!r} at the closing edge, but "
                            "none was deferred",
                            cycle,
                        )
                    value = deferred_values[src]
                else:
                    value = regs[src]
                if value is None:
                    raise InterpreterFault(
                        f"primary output {out_id!r} reads register {src!r} "
                        "that was never written",
                        cycle,
                    )
            else:
                value = port_value(src, src_port, cycle)
            outputs.append(_force(value))
        for register, value in deferred_values.items():
            regs[register] = value
        return SampleOutcome(
            outputs=outputs,
            loads=[(c, r, _force(v)) for c, r, v in load_log],
            n_cycles=cycle,
        )

    # ------------------------------------------------------------------
    def _read_port(
        self,
        unit: str,
        read: ReadSpec,
        state: ControllerState,
        captures: dict[str, tuple[object, str, int]],
        regs: dict[str, object | None],
        port_value,
        cycle: int,
        promises: dict[tuple[str, int], object] | None = None,
    ) -> object:
        """Value on input port ``read.port`` of *unit* during *cycle*.

        *promises* is non-None only for reads at or past the final
        state, where the boundary fallback applies (see
        :meth:`_boundary_value`); earlier reads stay strict.
        """
        sources = self.netlist.sources_of(unit, read.port)
        if not sources:
            raise InterpreterFault(
                f"input port {read.port} of {unit!r} is unconnected", cycle
            )
        if len(sources) == 1:
            src, src_port = sources[0]
        else:
            selected = [
                (s.src, s.src_port)
                for s in state.selects
                if s.dst == unit and s.dst_port == read.port
            ]
            distinct = sorted(set(selected))
            if not distinct:
                raise InterpreterFault(
                    f"multi-source port {read.port} of {unit!r} read with "
                    "no mux select asserted",
                    cycle,
                )
            if len(distinct) > 1:
                raise InterpreterFault(
                    f"conflicting mux selects on port {read.port} of "
                    f"{unit!r}: {distinct}",
                    cycle,
                )
            src, src_port = distinct[0]
            if (src, src_port) not in sources:
                raise InterpreterFault(
                    f"mux select on {unit!r}.{read.port} names "
                    f"{src!r}.{src_port}, which does not drive that port",
                    cycle,
                )
        comp = self.netlist.component(src)
        if comp.kind != ComponentKind.REGISTER:
            return port_value(src, src_port, cycle)
        if read.bypass:
            capture = captures.get(src)
            if capture is not None:
                return capture[0]
            if promises is not None:
                fallback = self._boundary_value(src, promises)
                if fallback is not None:
                    return fallback
            raise InterpreterFault(
                f"{unit!r}.{read.port} expects the value captured into "
                f"{src!r} this cycle, but no load is asserted",
                cycle,
            )
        stored = regs[src]
        if stored is None and promises is not None:
            capture = captures.get(src)
            if capture is not None:
                return capture[0]
            stored = self._boundary_value(src, promises)
        if stored is None:
            raise InterpreterFault(
                f"{unit!r}.{read.port} reads register {src!r} before any "
                "value was stored in it",
                cycle,
            )
        return stored

    def _boundary_value(
        self, register: str, promises: dict[tuple[str, int], object]
    ) -> object | None:
        """Value *register* will hold once its deferred capture commits.

        While in-flight results drain past the last state, the linear
        FSM holds its final control word — including the load enables
        of end-of-schedule captures, which this model defers to the
        closing edge so primary outputs sample the pre-edge register
        file.  An operand read at or past the final state (slack-derived
        module profiles may read later than they produce) races that
        capture; in hardware the held load enable keeps the register
        following its source, so the read sees the promised value of
        the register's single pending deferred load.  Returns None when
        no unambiguous deferred load exists, in which case the caller
        faults.
        """
        keys = [k for k in self.plan.deferred_loads if k[0] == register]
        if len(keys) != 1:
            return None
        _register, src, src_port = keys[0]
        return promises.get((src, src_port))
