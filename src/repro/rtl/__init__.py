"""RTL circuit substrate: netlists, modules, profiles, embedding, FSMs.

This package models the *output* side of high-level synthesis — the
structural RTL circuit — plus the paper's RTL-embedding technique that
lets two anisomorphic DFGs share one module (Section 3, Example 3).
"""

from .components import (
    Component,
    ComponentKind,
    Connection,
    DatapathNetlist,
    WIRE_AREA_PER_CONNECTION,
)
from .controller import (
    ControllerState,
    FSMController,
    MuxSelect,
    RegisterLoad,
    UnitStart,
)
from .embedding import EmbeddingResult, embed_netlists, naive_union
from .emit import emit_controller, emit_netlist
from .interpreter import (
    ExecPlan,
    ExecSemantics,
    InterpreterFault,
    OutputSpec,
    ReadSpec,
    RTLInterpreter,
    SampleOutcome,
)
from .module import BehaviorImpl, RTLModule
from .profile import CycleProfile, Profile

__all__ = [
    "BehaviorImpl",
    "Component",
    "ComponentKind",
    "Connection",
    "ControllerState",
    "CycleProfile",
    "DatapathNetlist",
    "EmbeddingResult",
    "ExecPlan",
    "ExecSemantics",
    "FSMController",
    "InterpreterFault",
    "MuxSelect",
    "OutputSpec",
    "Profile",
    "RTLInterpreter",
    "RTLModule",
    "ReadSpec",
    "RegisterLoad",
    "SampleOutcome",
    "UnitStart",
    "WIRE_AREA_PER_CONNECTION",
    "embed_netlists",
    "emit_controller",
    "emit_netlist",
    "naive_union",
]
