"""Datapath netlist model: components, connections, mux inference.

An RTL module is "an interconnection of RTL modules, functional units,
multiplexers and registers" (Section 2).  We represent the multiplexers
implicitly: whenever several distinct sources drive the same input port
of a component, a mux tree with ``n_sources - 1`` two-to-one legs is
inferred.  This keeps move evaluation cheap (adding/removing a
connection automatically adjusts mux cost) and matches how the paper's
embedding procedure accounts for "a measure of interconnect".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, NamedTuple

from ..errors import DFGError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..library.library import ModuleLibrary

__all__ = [
    "ComponentKind",
    "Component",
    "Connection",
    "DatapathNetlist",
    "WIRE_AREA_PER_CONNECTION",
]

#: Routing-area estimate per point-to-point connection, in the same
#: normalized units as cell areas.  Stands in for the paper's placed-and-
#: routed interconnect measure; OCTTOOLS-era standard-cell layouts spend
#: a large fraction of their area on routing channels, which is what
#: keeps heavily multiplexed "share everything" datapaths from being
#: free.
WIRE_AREA_PER_CONNECTION = 2.0

#: id(library) → (library, {cell name: area}) — see DatapathNetlist.area.
_CELL_AREAS: dict = {}


class ComponentKind(enum.Enum):
    """Structural class of a datapath component."""

    FUNCTIONAL = "fu"
    REGISTER = "reg"
    MODULE = "module"  # an embedded complex RTL module instance
    PORT = "port"      # module boundary pin (primary input/output)


#: Bit width the library cells are characterized at.
REFERENCE_WIDTH = 16


class Component(NamedTuple):
    """One datapath component instance.

    ``cell`` names the library cell (for FUNCTIONAL/REGISTER) or the
    complex RTL module type (for MODULE); PORT components have cell
    ``"in"`` or ``"out"``.  ``width`` is the datapath bit width of this
    instance; cell characterization is at :data:`REFERENCE_WIDTH`, and
    area scales linearly with width (ripple structures; multipliers are
    conservatively linear too since their operand registers and wiring
    dominate at these widths).  A named tuple for the same hot-path
    reason as :class:`Connection`.
    """

    comp_id: str
    kind: ComponentKind
    cell: str
    width: int = REFERENCE_WIDTH

    @property
    def width_factor(self) -> float:
        return self.width / REFERENCE_WIDTH


class Connection(NamedTuple):
    """A point-to-point wire between two component ports.

    A named tuple rather than a dataclass: netlists are rebuilt per
    candidate move, and constructing/hashing tens of thousands of these
    per pricing step is measurably cheaper at C speed.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int


class DatapathNetlist:
    """A set of components plus the wires between them."""

    def __init__(self, name: str):
        self.name = name
        self._components: dict[str, Component] = {}
        self._connections: set[Connection] = set()
        #: Memoized fan-in map and per-library area, cleared by the two
        #: mutators below.  Cost evaluation asks for both several times
        #: per netlist (glitch counting, mux inference, area, controller
        #: sizing), and module netlists are re-priced on every move.
        self._fanin_cache: dict[tuple[str, int], int] | None = None
        #: id(library) → (library, area).  The library reference is kept
        #: in the value to pin its id (same idiom as the stream-activity
        #: cache in repro.power.activity).
        self._area_cache: dict[int, tuple[object, float]] = {}
        self._sorted_conns: list[Connection] | None = None

    def _invalidate(self) -> None:
        self._fanin_cache = None
        self._area_cache.clear()
        self._sorted_conns = None

    # ------------------------------------------------------------------
    def add_component(
        self,
        comp_id: str,
        kind: ComponentKind,
        cell: str,
        width: int = REFERENCE_WIDTH,
    ) -> Component:
        if comp_id in self._components:
            raise DFGError(f"duplicate component {comp_id!r} in netlist {self.name!r}")
        comp = Component(comp_id, kind, cell, width=width)
        self._components[comp_id] = comp
        self._invalidate()
        return comp

    def connect(self, src: str, src_port: int, dst: str, dst_port: int) -> Connection:
        for comp_id in (src, dst):
            if comp_id not in self._components:
                raise DFGError(f"unknown component {comp_id!r} in netlist {self.name!r}")
        conn = Connection(src, src_port, dst, dst_port)
        self._connections.add(conn)
        self._invalidate()
        return conn

    # ------------------------------------------------------------------
    def component(self, comp_id: str) -> Component:
        try:
            return self._components[comp_id]
        except KeyError:
            raise DFGError(
                f"unknown component {comp_id!r} in netlist {self.name!r}"
            ) from None

    def has_component(self, comp_id: str) -> bool:
        return comp_id in self._components

    def components(self, kind: ComponentKind | None = None) -> list[Component]:
        if kind is None:
            return list(self._components.values())
        return [c for c in self._components.values() if c.kind == kind]

    def connections(self) -> list[Connection]:
        """All connections, deterministically ordered (read-only list)."""
        if self._sorted_conns is None:
            self._sorted_conns = sorted(
                self._connections,
                key=lambda c: (c.dst, c.dst_port, c.src, c.src_port),
            )
        return self._sorted_conns

    def sources_of(self, dst: str, dst_port: int) -> list[tuple[str, int]]:
        """Distinct sources driving one input port (mux fan-in)."""
        return sorted(
            {(c.src, c.src_port) for c in self._connections
             if c.dst == dst and c.dst_port == dst_port}
        )

    def fanin_ports(self) -> dict[tuple[str, int], int]:
        """Map (component, input port) → number of distinct sources."""
        if self._fanin_cache is not None:
            return self._fanin_cache
        fanin: dict[tuple[str, int], int] = {}
        for conn in self._connections:
            key = (conn.dst, conn.dst_port)
            fanin[key] = fanin.get(key, 0) + 1
        # Count distinct sources, not raw connections (sets dedupe already).
        self._fanin_cache = fanin
        return fanin

    def mux_legs(self) -> int:
        """Total 2-to-1 multiplexer legs implied by multi-source ports."""
        return sum(max(0, n - 1) for n in self.fanin_ports().values())

    def n_connections(self) -> int:
        return len(self._connections)

    # ------------------------------------------------------------------
    def area(self, library: "ModuleLibrary") -> float:
        """Netlist area: cells + inferred muxes + interconnect measure."""
        cached = self._area_cache.get(id(library))
        if cached is not None and cached[0] is library:
            return cached[1]
        # Cell areas resolved once per library, not once per component
        # per netlist (thousands of netlists per pricing step share one
        # library).  The library is pinned in the memo value, same idiom
        # as the activity caches.
        entry = _CELL_AREAS.get(id(library))
        if entry is None or entry[0] is not library:
            if len(_CELL_AREAS) >= 8:
                _CELL_AREAS.clear()
            entry = (library, {})
            _CELL_AREAS[id(library)] = entry
        areas = entry[1]
        skip = (ComponentKind.PORT, ComponentKind.MODULE)
        total = 0.0
        for comp in self._components.values():
            if comp.kind in skip:
                # Ports are free; nested module instances are priced by the
                # owner (it knows the RTLModule object) — see
                # repro.synthesis.costs.area_of.
                continue
            cell_area = areas.get(comp.cell)
            if cell_area is None:
                cell_area = library.cell(comp.cell).area
                areas[comp.cell] = cell_area
            total += cell_area * (comp.width / REFERENCE_WIDTH)
        mux_area = library.mux_cell.area
        components = self._components
        for (dst, _port), fanin in self.fanin_ports().items():
            if fanin > 1:
                width_factor = components[dst].width_factor
                total += (fanin - 1) * mux_area * width_factor
        total += self.n_connections() * WIRE_AREA_PER_CONNECTION
        self._area_cache[id(library)] = (library, total)
        return total

    @classmethod
    def _from_parts(
        cls,
        name: str,
        components: dict[str, Component],
        connections: set[Connection],
    ) -> "DatapathNetlist":
        """Adopt pre-built parts without per-call validation.

        Fast path for bulk builders (``build_netlist`` constructs tens
        of thousands of netlists per synthesis run) that guarantee
        unique component ids and endpoints-exist by construction; the
        dict and set are adopted, not copied.
        """
        netlist = cls(name)
        netlist._components = components
        netlist._connections = connections
        return netlist

    def copy(self, name: str | None = None) -> "DatapathNetlist":
        clone = DatapathNetlist(name or self.name)
        clone._components = dict(self._components)
        clone._connections = set(self._connections)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatapathNetlist({self.name!r}, {len(self._components)} components, "
            f"{len(self._connections)} connections, {self.mux_legs()} mux legs)"
        )
