"""Finite-state-machine controller model.

H-SYN's output is "a datapath netlist, and a finite-state machine
description of the controller" (Section 5).  The controller steps
through one state per clock cycle of the schedule; in each state it
asserts register load-enables, functional-unit start/operation selects
and multiplexer selects.  The synthesis layer builds the state table
from a scheduled, bound solution (:mod:`repro.synthesis.backend`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MuxSelect", "RegisterLoad", "UnitStart", "ControllerState", "FSMController"]


@dataclass(frozen=True)
class MuxSelect:
    """Drive the mux at (component, input port) to pass *source*."""

    dst: str
    dst_port: int
    src: str
    src_port: int


@dataclass(frozen=True)
class RegisterLoad:
    """Assert the load-enable of *register*, capturing *src*'s output."""

    register: str
    src: str
    src_port: int


@dataclass(frozen=True)
class UnitStart:
    """Start an operation on a functional unit / complex module."""

    unit: str
    operation: str


@dataclass
class ControllerState:
    """Control signals asserted during one cycle."""

    cycle: int
    loads: list[RegisterLoad] = field(default_factory=list)
    starts: list[UnitStart] = field(default_factory=list)
    selects: list[MuxSelect] = field(default_factory=list)

    def is_idle(self) -> bool:
        return not (self.loads or self.starts or self.selects)


@dataclass
class FSMController:
    """A linear (per-sample) controller: states 0..n-1 then wrap."""

    name: str
    states: list[ControllerState]

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state(self, cycle: int) -> ControllerState:
        return self.states[cycle]

    def n_control_signals(self) -> int:
        """Total distinct control assertions (a controller-size metric)."""
        signals: set = set()
        for state in self.states:
            signals.update(state.loads)
            signals.update(state.starts)
            signals.update(state.selects)
        return len(signals)
