"""Structural netlist / FSM emission.

Renders a datapath netlist as a structural Verilog-flavoured module and
a controller as a readable state table.  This stands in for the paper's
hand-off to SIS/OCTTOOLS: downstream consumers get a complete textual
RTL description of the synthesized circuit.
"""

from __future__ import annotations

from .components import ComponentKind, DatapathNetlist
from .controller import FSMController

__all__ = ["emit_netlist", "emit_controller"]


def _wire_name(src: str, src_port: int) -> str:
    return f"w_{src}_{src_port}".replace("~", "_").replace("/", "_").replace(".", "_")


def emit_netlist(netlist: DatapathNetlist, width: int = 16) -> str:
    """Render the netlist as a structural Verilog-like module."""
    lines: list[str] = []
    in_ports = [c for c in netlist.components(ComponentKind.PORT) if c.cell == "in"]
    out_ports = [c for c in netlist.components(ComponentKind.PORT) if c.cell == "out"]
    port_names = [c.comp_id for c in in_ports + out_ports]
    lines.append(f"module {netlist.name} (clk, {', '.join(port_names)});")
    lines.append("  input clk;")
    for comp in in_ports:
        lines.append(f"  input  [{comp.width - 1}:0] {comp.comp_id};")
    for comp in out_ports:
        lines.append(f"  output [{comp.width - 1}:0] {comp.comp_id};")
    lines.append("")

    # One wire per driven source port.
    sources = sorted({(c.src, c.src_port) for c in netlist.connections()})
    for src, src_port in sources:
        src_comp = netlist.component(src)
        if src_comp.kind == ComponentKind.PORT:
            continue
        lines.append(
            f"  wire [{src_comp.width - 1}:0] {_wire_name(src, src_port)};"
        )
    lines.append("")

    for comp in netlist.components():
        if comp.kind == ComponentKind.PORT:
            continue
        conns = [c for c in netlist.connections() if c.dst == comp.comp_id]
        by_port: dict[int, list] = {}
        for conn in conns:
            by_port.setdefault(conn.dst_port, []).append(conn)
        args = [".clk(clk)"] if comp.kind == ComponentKind.REGISTER else []
        for port in sorted(by_port):
            port_conns = by_port[port]
            if len(port_conns) == 1:
                conn = port_conns[0]
                src_comp = netlist.component(conn.src)
                src = (
                    conn.src
                    if src_comp.kind == ComponentKind.PORT
                    else _wire_name(conn.src, conn.src_port)
                )
            else:
                # Multi-source port: rendered as a mux bundle reference.
                src = f"mux_{comp.comp_id}_{port}"
            args.append(f".in{port}({src})")
        args.append(f".out0({_wire_name(comp.comp_id, 0)})")
        lines.append(f"  {comp.cell} {comp.comp_id} ({', '.join(args)});")

    # Mux instances for multi-source ports.
    lines.append("")
    for (dst, dst_port), fanin in sorted(netlist.fanin_ports().items()):
        if fanin < 2:
            continue
        srcs = netlist.sources_of(dst, dst_port)
        feeds = ", ".join(
            f".in{i}({_wire_name(s, p) if netlist.component(s).kind != ComponentKind.PORT else s})"
            for i, (s, p) in enumerate(srcs)
        )
        lines.append(
            f"  mux{len(srcs)} mux_{dst}_{dst_port} ({feeds}, "
            f".sel(ctl_{dst}_{dst_port}), .out0(mux_{dst}_{dst_port}_o));"
        )

    for comp in out_ports:
        srcs = netlist.sources_of(comp.comp_id, 0)
        if srcs:
            src, src_port = srcs[0]
            lines.append(f"  assign {comp.comp_id} = {_wire_name(src, src_port)};")
    lines.append("endmodule")
    return "\n".join(lines)


def emit_controller(controller: FSMController) -> str:
    """Render the controller as a readable state table."""
    lines = [
        f"controller {controller.name}",
        f"states {controller.n_states}",
    ]
    for state in controller.states:
        lines.append(f"state {state.cycle}:")
        for start in state.starts:
            lines.append(f"  start {start.unit} op={start.operation}")
        for select in state.selects:
            lines.append(
                f"  select {select.dst}.in{select.dst_port} <- "
                f"{select.src}.out{select.src_port}"
            )
        for load in state.loads:
            lines.append(
                f"  load {load.register} <- {load.src}.out{load.src_port}"
            )
        if state.is_idle():
            lines.append("  nop")
    return "\n".join(lines)
