"""RTL embedding: executing two behaviors on one RTL module (Example 3).

The paper's technique for merging complex modules "simply constructs a
new RTL module in which the original RTL modules can be embedded.  The
goal ... is to find the minimum area embedding (including a measure of
interconnect) which satisfies clock cycle constraints".  The schedule
and binding of each constituent behavior are left untouched; the merged
module cannot run the behaviors in parallel.

Formulation
-----------
Components of the two netlists may be overlaid only within a
*compatibility class* (identical library cell for functional units, the
register class for registers; module boundary ports overlay
positionally).  Because matched components are cycle-identical, each
behavior's original schedule runs unchanged on the merged module, which
is how clock-cycle constraints are honored by construction — the only
additions are multiplexers on ports that end up with several sources.

Finding the overlay that maximizes shared interconnect is a quadratic
assignment problem, which is NP-hard; like the paper we need the
procedure to be *fast* because the iterative engine evaluates many
merge candidates.  We use per-class weighted bipartite matching
(``scipy.optimize.linear_sum_assignment``) on a neighborhood-similarity
score, refined by a few rounds in which the score is the *exact* number
of connections shared given the rest of the current mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..errors import EmbeddingError
from .components import Component, ComponentKind, Connection, DatapathNetlist

__all__ = ["EmbeddingResult", "embed_netlists", "naive_union"]


@dataclass
class EmbeddingResult:
    """Outcome of overlaying netlist B onto netlist A.

    ``map_a``/``map_b`` send original component ids to merged ids (map_a
    is the identity — A's ids are kept).  ``shared_components`` and
    ``shared_connections`` quantify how much hardware the behaviors
    reuse; Table 2 of the paper is exactly ``map_a``/``map_b`` rendered
    as a correspondence table.
    """

    netlist: DatapathNetlist
    map_a: dict[str, str]
    map_b: dict[str, str]
    shared_components: int
    shared_connections: int


def _compat_class(comp: Component) -> tuple:
    """Components may only be overlaid within the same class.

    Width is part of the class: a 16-bit adder cannot impersonate a
    24-bit one (overlaying onto the wider unit would be possible but is
    conservatively not attempted).
    """
    if comp.kind == ComponentKind.REGISTER:
        return (ComponentKind.REGISTER, "reg", comp.width)
    if comp.kind == ComponentKind.PORT:
        # Ports overlay positionally, never via matching.
        return (ComponentKind.PORT, comp.comp_id)
    return (comp.kind, comp.cell, comp.width)


def _neighborhood(netlist: DatapathNetlist, comp_id: str) -> set[tuple]:
    """Port-accurate neighborhood fingerprint of a component.

    Two components whose fingerprints overlap a lot will share wires
    when overlaid, so fingerprint intersection is the first-round
    matching score.
    """
    finger: set[tuple] = set()
    for conn in netlist.connections():
        if conn.src == comp_id:
            partner = netlist.component(conn.dst)
            finger.add(("out", conn.src_port, _compat_class(partner), conn.dst_port))
        if conn.dst == comp_id:
            partner = netlist.component(conn.src)
            finger.add(("in", conn.dst_port, _compat_class(partner), conn.src_port))
    return finger


def _exact_shared(
    net_a: DatapathNetlist,
    net_b: DatapathNetlist,
    map_b: dict[str, str],
    b_comp: str,
    a_comp: str,
) -> int:
    """Connections of B incident to *b_comp* that land on existing A wires
    if *b_comp* is overlaid onto *a_comp* with the rest of ``map_b`` fixed."""
    conns_a = set(net_a.connections())
    shared = 0
    for conn in net_b.connections():
        if conn.src != b_comp and conn.dst != b_comp:
            continue
        src = a_comp if conn.src == b_comp else map_b.get(conn.src)
        dst = a_comp if conn.dst == b_comp else map_b.get(conn.dst)
        if src is None or dst is None:
            continue
        if Connection(src, conn.src_port, dst, conn.dst_port) in conns_a:
            shared += 1
    return shared


def _match_class(
    comps_a: list[str],
    comps_b: list[str],
    score: "np.ndarray",
) -> dict[str, str]:
    """Maximum-weight bipartite matching B→A for one compatibility class."""
    if not comps_a or not comps_b:
        return {}
    rows, cols = linear_sum_assignment(-score)
    mapping: dict[str, str] = {}
    for r, c in zip(rows, cols):
        mapping[comps_b[c]] = comps_a[r]
    return mapping


def embed_netlists(
    net_a: DatapathNetlist,
    net_b: DatapathNetlist,
    name: str,
    refine_rounds: int = 2,
) -> EmbeddingResult:
    """Overlay *net_b* onto *net_a*, producing the merged netlist.

    Every component of A appears in the result under its own id;
    components of B are either overlaid onto a compatible A component or
    added fresh (with a ``~b`` suffix on id collisions).  Module
    boundary PORT components overlay by identical id; if B has ports A
    lacks, they are added.
    """
    by_class_a: dict[tuple, list[str]] = {}
    by_class_b: dict[tuple, list[str]] = {}
    for comp in net_a.components():
        if comp.kind != ComponentKind.PORT:
            by_class_a.setdefault(_compat_class(comp), []).append(comp.comp_id)
    for comp in net_b.components():
        if comp.kind != ComponentKind.PORT:
            by_class_b.setdefault(_compat_class(comp), []).append(comp.comp_id)

    # Ports overlay by id (positional by construction of the builders).
    map_b: dict[str, str] = {}
    for comp in net_b.components(ComponentKind.PORT):
        map_b[comp.comp_id] = comp.comp_id

    # Round 0: neighborhood-similarity matching per class.
    fingers_a = {c.comp_id: _neighborhood(net_a, c.comp_id) for c in net_a.components()}
    fingers_b = {c.comp_id: _neighborhood(net_b, c.comp_id) for c in net_b.components()}
    for cls, comps_b in by_class_b.items():
        comps_a = by_class_a.get(cls, [])
        if not comps_a:
            continue
        score = np.zeros((len(comps_a), len(comps_b)))
        for i, ca in enumerate(comps_a):
            for j, cb in enumerate(comps_b):
                score[i, j] = len(fingers_a[ca] & fingers_b[cb]) + 0.01
        map_b.update(_match_class(comps_a, comps_b, score))

    # Refinement: re-match each class with exact shared-wire counts under
    # the current global mapping.
    for _ in range(refine_rounds):
        for cls, comps_b in by_class_b.items():
            comps_a = by_class_a.get(cls, [])
            if not comps_a:
                continue
            score = np.zeros((len(comps_a), len(comps_b)))
            trial_map = dict(map_b)
            for cb in comps_b:
                trial_map.pop(cb, None)
            for i, ca in enumerate(comps_a):
                for j, cb in enumerate(comps_b):
                    score[i, j] = _exact_shared(net_a, net_b, trial_map, cb, ca) + 0.01
            map_b.update(_match_class(comps_a, comps_b, score))

    return _build_merged(net_a, net_b, map_b, name)


def _build_merged(
    net_a: DatapathNetlist,
    net_b: DatapathNetlist,
    map_b: dict[str, str],
    name: str,
) -> EmbeddingResult:
    merged = DatapathNetlist(name)
    map_a: dict[str, str] = {}
    for comp in net_a.components():
        merged.add_component(comp.comp_id, comp.kind, comp.cell, width=comp.width)
        map_a[comp.comp_id] = comp.comp_id

    shared_components = 0
    for comp in net_b.components():
        target = map_b.get(comp.comp_id)
        if target is not None and merged.has_component(target):
            existing = merged.component(target)
            if _compat_class(existing) != _compat_class(comp):
                raise EmbeddingError(
                    f"mapping of {comp.comp_id!r} onto {target!r} crosses "
                    "compatibility classes"
                )
            if comp.kind != ComponentKind.PORT:
                shared_components += 1
            continue
        fresh = comp.comp_id
        if merged.has_component(fresh):
            fresh = f"{fresh}~b"
            suffix = 2
            while merged.has_component(fresh):
                fresh = f"{comp.comp_id}~b{suffix}"
                suffix += 1
        merged.add_component(fresh, comp.kind, comp.cell, width=comp.width)
        map_b[comp.comp_id] = fresh

    for conn in net_a.connections():
        merged.connect(conn.src, conn.src_port, conn.dst, conn.dst_port)
    before = merged.n_connections()
    for conn in net_b.connections():
        merged.connect(
            map_b[conn.src], conn.src_port, map_b[conn.dst], conn.dst_port
        )
    shared_connections = before + len(net_b.connections()) - merged.n_connections()

    return EmbeddingResult(
        netlist=merged,
        map_a=map_a,
        map_b=map_b,
        shared_components=shared_components,
        shared_connections=shared_connections,
    )


def naive_union(
    net_a: DatapathNetlist, net_b: DatapathNetlist, name: str
) -> EmbeddingResult:
    """Disjoint union (no component sharing) — the ablation baseline.

    Models what a hierarchical system *without* RTL embedding pays for a
    module that must support both behaviors: the hardware of both, side
    by side (only boundary ports are shared).
    """
    map_b = {
        comp.comp_id: comp.comp_id for comp in net_b.components(ComponentKind.PORT)
    }
    return _build_merged(net_a, net_b, map_b, name)
