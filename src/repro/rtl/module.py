"""Complex RTL modules.

An RTL module implements one or more *behaviors* (after RTL embedding,
"multiple hierarchical nodes can map to the same RTL module", and the
merged module supports several anisomorphic DFGs).  Each supported
behavior carries:

* a :class:`~repro.rtl.profile.Profile` — the module's timing contract
  for that behavior, and
* an effective internal switched capacitance ``cap_internal`` — total
  capacitance the module switches per execution, normalized so that the
  energy of one execution is ``cap_internal * (IDLE_FRACTION + a) *
  Vdd²`` where *a* is the activity of the module's *input* streams.
  Characterization (in :mod:`repro.synthesis.characterize_module`)
  measures internal activities under a reference stimulus and folds
  them into this single coefficient; at use time, sharing the module
  among several hierarchical nodes raises the input activity (stream
  interleaving) and therefore the estimated energy — the same
  first-order effect the paper's trace-driven estimator captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import LibraryError
from ..library.cells import IDLE_FRACTION
from ..library.voltage import energy_scale
from .components import DatapathNetlist
from .profile import Profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..library.library import ModuleLibrary

__all__ = ["BehaviorImpl", "RTLModule"]


@dataclass(frozen=True)
class BehaviorImpl:
    """How one behavior runs on a module: timing plus energy coefficient."""

    profile: Profile
    cap_internal: float


class RTLModule:
    """A complex RTL module (library element or synthesis product).

    Parameters
    ----------
    name:
        Module type name (instances reference this).
    behavior:
        Primary behavior implemented.
    profile / cap_internal:
        Timing and energy characterization for the primary behavior.
    netlist:
        Structural content (functional units, registers, wires); used
        for area evaluation and RTL embedding.
    resynthesizable:
        Whether move B may descend into this module.  Library modules
        "whose internal descriptions are not available or cannot be
        altered are not resynthesized" (Section 1).
    internal:
        Opaque handle to the synthesis-side record (sub-solution) that
        produced the module; present iff resynthesizable.
    """

    def __init__(
        self,
        name: str,
        behavior: str,
        profile: Profile,
        cap_internal: float,
        netlist: DatapathNetlist,
        resynthesizable: bool = False,
        internal: object | None = None,
    ):
        self.name = name
        self.behavior = behavior
        self.netlist = netlist
        self.resynthesizable = resynthesizable
        self.internal = internal
        self._impls: dict[str, BehaviorImpl] = {
            behavior: BehaviorImpl(profile, cap_internal)
        }

    # ------------------------------------------------------------------
    def add_behavior(self, behavior: str, profile: Profile, cap_internal: float) -> None:
        """Register an additional behavior (result of RTL embedding)."""
        self._impls[behavior] = BehaviorImpl(profile, cap_internal)

    def supports(self, behavior: str) -> bool:
        return behavior in self._impls

    def behaviors(self) -> list[str]:
        return list(self._impls)

    def impl(self, behavior: str) -> BehaviorImpl:
        try:
            return self._impls[behavior]
        except KeyError:
            raise LibraryError(
                f"module {self.name!r} does not implement behavior {behavior!r}"
            ) from None

    def profile(self, behavior: str | None = None) -> Profile:
        return self.impl(behavior or self.behavior).profile

    def cap_internal(self, behavior: str | None = None) -> float:
        return self.impl(behavior or self.behavior).cap_internal

    # ------------------------------------------------------------------
    def area(self, library: "ModuleLibrary") -> float:
        """Module area from its structural netlist."""
        return self.netlist.area(library)

    def energy_per_exec(
        self, vdd: float, input_activity: float, behavior: str | None = None
    ) -> float:
        """Energy of one execution of *behavior* at the given activity."""
        activity = min(max(input_activity, 0.0), 1.0)
        cap = self.cap_internal(behavior)
        return cap * (IDLE_FRACTION + activity) * energy_scale(vdd) * 25.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RTLModule({self.name!r}, behaviors={self.behaviors()}, "
            f"{len(self.netlist.components())} components)"
        )
