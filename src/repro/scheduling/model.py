"""Scheduling task model.

The scheduler does not work on raw DFG nodes but on **tasks**: one task
is one activation of one resource instance.  Usually a task executes a
single operation, but

* a *chain task* executes a whole dependency chain of same-type
  operations on a chained cell (``chained_add2``/``chained_add3``,
  Table 1) in one activation, and
* a *hierarchical task* executes a hierarchical node on a complex RTL
  module, with the module's **profile** (Section 2, Example 1) giving
  per-input expected-arrival offsets and per-output latencies.

Profile semantics, following Example 1 of the paper: a task with input
offsets :math:`o_i` whose inputs arrive at :math:`a_i` can start at
:math:`s = \\max_i(a_i - o_i, 0)`; output :math:`j` with latency
:math:`l_j` is available at :math:`s + l_j`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfg.graph import DFG, Signal

__all__ = ["TaskSpec", "ScheduleResult"]


@dataclass
class TaskSpec:
    """One resource activation covering one or more DFG nodes.

    Attributes
    ----------
    task_id:
        Unique task identifier.
    nodes:
        DFG node ids executed by this activation, in dependency order
        (singleton for plain operations).
    instance:
        Identifier of the resource instance the task runs on; tasks on
        the same instance are serialized.
    duration:
        Number of cycles from start until the task's results are done.
    initiation_interval:
        Cycles until the instance can accept the *next* task; equals
        ``duration`` for ordinary units, 1 for fully pipelined ones.
        ``None`` defaults to ``duration``.
    input_offsets:
        Expected-arrival offset (cycles) per external input ``(node,
        dst_port)``.  Missing entries default to 0.
    output_latency:
        Availability time after task start per produced signal.
        Missing entries default to ``duration``.
    """

    task_id: str
    nodes: tuple[str, ...]
    instance: str
    duration: int
    input_offsets: dict[tuple[str, int], int] = field(default_factory=dict)
    output_latency: dict[Signal, int] = field(default_factory=dict)
    initiation_interval: int | None = None

    @property
    def busy_cycles(self) -> int:
        """Cycles the instance is occupied before the next issue."""
        if self.initiation_interval is not None:
            return self.initiation_interval
        return self.duration

    def offset_of(self, node: str, port: int) -> int:
        return self.input_offsets.get((node, port), 0)

    def latency_of(self, signal: Signal) -> int:
        return self.output_latency.get(signal, self.duration)

    def external_in_edges(self, dfg: DFG):
        """Edges entering the task from outside it."""
        inside = set(self.nodes)
        for node in self.nodes:
            for edge in dfg.in_edges(node):
                if edge.src not in inside:
                    yield edge


@dataclass
class ScheduleResult:
    """Outcome of scheduling one DFG level.

    ``start``/``finish`` are per *task*; ``avail`` gives each signal's
    availability time; ``length`` is the number of cycles until the last
    primary output is produced (the schedule's makespan);
    ``instance_order`` records the serialization order per resource
    instance — the order the controller sequences and the order power
    estimation interleaves operand streams in.
    """

    start: dict[str, int]
    finish: dict[str, int]
    avail: dict[Signal, int]
    length: int
    instance_order: dict[str, list[str]]
    task_of_node: dict[str, str]
    #: Per-signal lifetime memo, filled lazily by
    #: :meth:`repro.synthesis.solution.Solution.signal_lifetime`.  A
    #: lifetime is a pure function of (DFG, tasks, schedule), and one
    #: ScheduleResult is shared across every candidate whose task set is
    #: unchanged — so the memo rides on the schedule it is valid for.
    lifetime_memo: dict = field(default_factory=dict, compare=False, repr=False)
    #: Per-instance execution order memo (instance id → tuple of node
    #: groups in serialization order), filled lazily during candidate
    #: pricing.  Valid for every solution sharing this schedule: sharing
    #: requires an equal task signature, which pins each task's nodes
    #: and instance, and ``instance_order`` lives on the schedule
    #: itself.
    exec_groups_memo: dict = field(default_factory=dict, compare=False, repr=False)

    def start_of_node(self, node_id: str) -> int:
        return self.start[self.task_of_node[node_id]]

    def finish_of_node(self, node_id: str) -> int:
        return self.finish[self.task_of_node[node_id]]
