"""Slack and environment analysis for constraint derivation.

Moves A and B start by "ascertaining the earliest input arrival times
and the latest output arrival times whose satisfaction by the selected
modules would ensure the schedulability of the implementation"
(Section 3, Example 2).  Given a scheduled solution and its cycle
budget, this module computes per task:

* **slack** — how many cycles later the task could start with every
  other task's serialization kept fixed;
* the **environment constraint** for resynthesis — the input arrival
  times the module will actually see, and the latest times by which
  each of its outputs must be produced.

The backward pass honors both data dependences and the per-instance
serialization order, so relaxed constraints always preserve
schedulability (the paper's requirement on constraint derivation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.graph import DFG, NodeKind, Signal
from .model import ScheduleResult, TaskSpec

__all__ = ["EnvironmentConstraint", "latest_start_times", "task_slacks",
           "environment_of"]

_INF = 10**9


@dataclass(frozen=True)
class EnvironmentConstraint:
    """Relaxed synthesis constraint for one module (paper's environment).

    ``input_arrivals[i]`` is when input *i* arrives (cycles, relative to
    iteration start); ``output_deadlines[j]`` is the latest cycle by
    which output *j* must be available.  A replacement implementation is
    admissible iff, started per profile semantics with these arrivals,
    every output meets its deadline.
    """

    input_arrivals: tuple[int, ...]
    output_deadlines: tuple[int, ...]

    def admits(self, input_offsets: tuple[int, ...], output_latencies: tuple[int, ...]) -> bool:
        """Check a candidate profile against this environment."""
        if len(input_offsets) != len(self.input_arrivals):
            return False
        if len(output_latencies) != len(self.output_deadlines):
            return False
        start = max(
            [a - o for a, o in zip(self.input_arrivals, input_offsets)] + [0]
        )
        return all(
            start + lat <= deadline
            for lat, deadline in zip(output_latencies, self.output_deadlines)
        )


def latest_start_times(
    dfg: DFG,
    tasks: list[TaskSpec],
    result: ScheduleResult,
    deadline: int,
) -> dict[str, int]:
    """Latest feasible start time per task under the given deadline.

    Keeps the current serialization order on every instance fixed and
    propagates required times backward through data edges and
    instance-order edges.
    """
    latest, _required = backward_pass(dfg, tasks, result, deadline)
    return latest


def required_signal_times(
    dfg: DFG,
    tasks: list[TaskSpec],
    result: ScheduleResult,
    deadline: int,
) -> dict[Signal, int]:
    """Latest availability each signal may have without breaking *deadline*.

    For primary-input signals this is the module's tolerance for late
    inputs — exactly the paper's *profile* input offsets when a
    synthesized sub-solution is characterized as a complex RTL module.
    """
    _latest, required = backward_pass(dfg, tasks, result, deadline)
    return required


def backward_pass(
    dfg: DFG,
    tasks: list[TaskSpec],
    result: ScheduleResult,
    deadline: int,
) -> tuple[dict[str, int], dict[Signal, int]]:
    """Backward requirement propagation over data and serialization edges."""
    # Latest availability each signal may have.
    required: dict[Signal, int] = {}

    def tighten(signal: Signal, bound: int) -> None:
        required[signal] = min(required.get(signal, _INF), bound)

    for out_id in dfg.outputs:
        (edge,) = dfg.in_edges(out_id)
        tighten(edge.signal, deadline)

    # Instance-order successor of each task.
    next_on_instance: dict[str, str] = {}
    for order in result.instance_order.values():
        for earlier, later in zip(order, order[1:]):
            next_on_instance[earlier] = later

    latest: dict[str, int] = {}
    # Process tasks in decreasing start time; both data consumers and the
    # instance successor always start at or after this task, so their
    # latest values are already final.  Ties are resolved by processing
    # consumers first via a stable sort on (-start, task_id) and a
    # visited check inside _latest.
    order = sorted(tasks, key=lambda t: (-result.start[t.task_id], t.task_id))

    def data_bound(task: TaskSpec) -> int:
        bound = _INF
        for node in task.nodes:
            for port in range(dfg.node(node).n_outputs):
                signal = (node, port)
                req = required.get(signal, _INF)
                if req < _INF:
                    bound = min(bound, req - task.latency_of(signal))
        return bound

    for task in order:
        bound = data_bound(task)
        succ = next_on_instance.get(task.task_id)
        if succ is not None:
            bound = min(bound, latest[succ] - task.busy_cycles)
        # A task never needs to start later than... it may be unbounded if
        # nothing consumes it (dead outputs); clamp to its own start.
        if bound >= _INF:
            bound = result.start[task.task_id]
        latest[task.task_id] = bound
        # Propagate requirements to the task's external inputs.
        for edge in task.external_in_edges(dfg):
            tighten(edge.signal, bound + task.offset_of(edge.dst, edge.dst_port))

    # Signals consumed by nothing scheduled (e.g. an input feeding only
    # primary outputs) keep their explicit requirement or the deadline.
    return latest, required


def task_slacks(
    dfg: DFG,
    tasks: list[TaskSpec],
    result: ScheduleResult,
    deadline: int,
) -> dict[str, int]:
    """Slack (latest start − actual start) per task; negative = infeasible."""
    latest = latest_start_times(dfg, tasks, result, deadline)
    return {tid: latest[tid] - result.start[tid] for tid in latest}


def environment_of(
    dfg: DFG,
    task: TaskSpec,
    tasks: list[TaskSpec],
    result: ScheduleResult,
    deadline: int,
) -> EnvironmentConstraint:
    """Relaxed environment constraint for resynthesizing *task*'s module.

    Input arrivals are the *actual* availability times of the signals
    feeding the task in the current schedule (they cannot be assumed
    earlier without moving other modules); output deadlines come from
    the backward pass over all other tasks.

    The task must cover a single node (hierarchical nodes are never
    chained), whose ports define the ordering of the returned tuples.
    """
    (node_id,) = task.nodes
    node = dfg.node(node_id)

    arrivals: list[int] = []
    in_edges = {e.dst_port: e for e in dfg.in_edges(node_id)}
    for port in range(node.n_inputs):
        edge = in_edges[port]
        arrivals.append(result.avail[edge.signal])

    latest = latest_start_times(dfg, tasks, result, deadline)
    # The deadline for each output is what consumers require; recompute
    # the per-signal requirement from the backward pass by re-deriving it
    # for this task's outputs.
    required: dict[Signal, int] = {}
    for out_id in dfg.outputs:
        (edge,) = dfg.in_edges(out_id)
        if edge.src == node_id:
            required[edge.signal] = min(required.get(edge.signal, _INF), deadline)
    by_id = {t.task_id: t for t in tasks}
    for other in tasks:
        if other.task_id == task.task_id:
            continue
        for edge in other.external_in_edges(dfg):
            if edge.src == node_id:
                bound = latest[other.task_id] + other.offset_of(edge.dst, edge.dst_port)
                signal = edge.signal
                required[signal] = min(required.get(signal, _INF), bound)

    deadlines: list[int] = []
    for port in range(node.n_outputs):
        signal = (node_id, port)
        deadlines.append(min(required.get(signal, deadline), _INF))

    # The instance-order successor also constrains when the module must
    # be done (it occupies its instance for `duration` cycles).
    return EnvironmentConstraint(tuple(arrivals), tuple(deadlines))
