"""Resource-constrained list scheduler with profile-aware tasks.

The paper derives an execution ordering for operations sharing a
resource and then computes start times as longest paths (Section 4,
"Scheduling of DFGs is a well-studied problem [12]").  We implement the
equivalent classic formulation: time-stepped **list scheduling** with
ALAP-based priorities.  The ordering it induces per instance *is* the
serialization ordering of the paper; start times equal the longest-path
times under that ordering.

Hierarchical tasks use profile semantics (Example 1): a task may start
*before* all its inputs have arrived if the module expects late inputs
(non-zero input offsets).
"""

from __future__ import annotations

from ..dfg.graph import DFG, NodeKind, Signal
from ..errors import ScheduleError
from .model import ScheduleResult, TaskSpec

__all__ = ["schedule_tasks", "task_dependencies"]


def task_dependencies(dfg: DFG, tasks: list[TaskSpec]) -> dict[str, set[str]]:
    """Map each task id to the set of task ids it depends on for data."""
    producer: dict[str, str] = {}
    for task in tasks:
        for node in task.nodes:
            if node in producer:
                raise ScheduleError(f"node {node!r} covered by two tasks")
            producer[node] = task.task_id

    deps: dict[str, set[str]] = {t.task_id: set() for t in tasks}
    for task in tasks:
        for edge in task.external_in_edges(dfg):
            src_kind = dfg.node(edge.src).kind
            if src_kind in (NodeKind.INPUT, NodeKind.CONST):
                continue
            if edge.src not in producer:
                raise ScheduleError(
                    f"operation {edge.src!r} is not covered by any task"
                )
            deps[task.task_id].add(producer[edge.src])
    return deps


def _check_coverage(dfg: DFG, tasks: list[TaskSpec]) -> None:
    covered = {node for task in tasks for node in task.nodes}
    for node in dfg.operation_nodes():
        if node.node_id not in covered:
            raise ScheduleError(f"operation {node.node_id!r} has no task")
    for node_id in covered:
        if not dfg.node(node_id).is_operation:
            raise ScheduleError(f"task covers non-operation node {node_id!r}")


def _alap_priorities(
    dfg: DFG, tasks: list[TaskSpec], deps: dict[str, set[str]]
) -> dict[str, int]:
    """Longest path from each task to any primary output (criticality).

    Higher value = more critical = scheduled first on contention.
    """
    by_id = {t.task_id: t for t in tasks}
    producer: dict[str, str] = {}
    for task in tasks:
        for node in task.nodes:
            producer[node] = task.task_id

    # Reverse-topological order via depth-first search on the task DAG.
    succs: dict[str, set[str]] = {t.task_id: set() for t in tasks}
    for tid, dep_ids in deps.items():
        for dep in dep_ids:
            succs[dep].add(tid)

    order: list[str] = []
    state: dict[str, int] = {}

    def visit(tid: str) -> None:
        stack = [(tid, iter(succs[tid]))]
        state[tid] = 1
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if state.get(nxt, 0) == 0:
                    state[nxt] = 1
                    stack.append((nxt, iter(succs[nxt])))
                    advanced = True
                    break
                if state.get(nxt) == 1:
                    raise ScheduleError("cycle in task dependence graph")
            if not advanced:
                state[current] = 2
                order.append(current)
                stack.pop()

    for task in tasks:
        if state.get(task.task_id, 0) == 0:
            visit(task.task_id)

    # order is reverse-topological (all successors of t appear before t).
    criticality: dict[str, int] = {}
    for tid in order:
        task = by_id[tid]
        tail = 0
        for succ_id in succs[tid]:
            tail = max(tail, criticality[succ_id])
        criticality[tid] = task.duration + tail
    return criticality


def schedule_tasks(
    dfg: DFG,
    tasks: list[TaskSpec],
    max_cycles: int | None = None,
) -> ScheduleResult:
    """List-schedule *tasks* over *dfg*; returns start times and makespan.

    Raises :class:`~repro.errors.ScheduleError` on structural problems
    (uncovered operations, dependence cycles).  Deadline violations are
    *not* an error here: the caller compares ``result.length`` against
    its cycle budget, because the iterative-improvement engine needs the
    actual makespan to compute gains of infeasible candidates.
    """
    _check_coverage(dfg, tasks)
    deps = task_dependencies(dfg, tasks)
    criticality = _alap_priorities(dfg, tasks, deps)
    by_id = {t.task_id: t for t in tasks}
    producer_task: dict[str, str] = {}
    for task in tasks:
        for node in task.nodes:
            producer_task[node] = task.task_id

    # Signals from inputs/constants are available at time zero.
    avail: dict[Signal, int] = {}
    for node in dfg.nodes():
        if node.kind in (NodeKind.INPUT, NodeKind.CONST):
            avail[(node.node_id, 0)] = 0

    unscheduled = {t.task_id for t in tasks}
    n_deps_left = {tid: len(dep_ids) for tid, dep_ids in deps.items()}
    succs: dict[str, set[str]] = {t.task_id: set() for t in tasks}
    for tid, dep_ids in deps.items():
        for dep in dep_ids:
            succs[dep].add(tid)

    ready = {tid for tid in unscheduled if n_deps_left[tid] == 0}
    instance_free: dict[str, int] = {}
    instance_order: dict[str, list[str]] = {}
    start: dict[str, int] = {}
    finish: dict[str, int] = {}

    def data_start(task: TaskSpec) -> int:
        earliest = 0
        for edge in task.external_in_edges(dfg):
            signal = edge.signal
            if signal not in avail:
                raise ScheduleError(
                    f"task {task.task_id!r} became ready before signal "
                    f"{signal!r} was produced"
                )
            earliest = max(earliest, avail[signal] - task.offset_of(edge.dst, edge.dst_port))
        return earliest

    horizon = max_cycles
    if horizon is None:
        horizon = sum(t.duration for t in tasks) + len(tasks) + 64

    t = 0
    while unscheduled:
        if t > horizon:
            raise ScheduleError(
                f"scheduler exceeded horizon of {horizon} cycles "
                f"({len(unscheduled)} tasks left)"
            )
        progressed = True
        while progressed:
            progressed = False
            # Candidates whose data is available now, grouped by instance.
            candidates: dict[str, list[str]] = {}
            for tid in ready:
                task = by_id[tid]
                if instance_free.get(task.instance, 0) > t:
                    continue
                if data_start(task) <= t:
                    candidates.setdefault(task.instance, []).append(tid)
            for instance, tids in candidates.items():
                # Most critical first; task id breaks ties deterministically.
                tid = min(tids, key=lambda x: (-criticality[x], x))
                task = by_id[tid]
                start[tid] = t
                finish[tid] = t + task.duration
                # Pipelined units free up after their initiation interval,
                # not after the full latency.
                instance_free[instance] = t + task.busy_cycles
                instance_order.setdefault(instance, []).append(tid)
                for node in task.nodes:
                    for port in range(dfg.node(node).n_outputs):
                        signal = (node, port)
                        avail[signal] = t + task.latency_of(signal)
                ready.discard(tid)
                unscheduled.discard(tid)
                for succ_id in succs[tid]:
                    n_deps_left[succ_id] -= 1
                    if n_deps_left[succ_id] == 0 and succ_id in unscheduled:
                        ready.add(succ_id)
                progressed = True
        t += 1

    length = 0
    for out_id in dfg.outputs:
        (edge,) = dfg.in_edges(out_id)
        length = max(length, avail[edge.signal])

    task_of_node = dict(producer_task)
    return ScheduleResult(
        start=start,
        finish=finish,
        avail=avail,
        length=length,
        instance_order=instance_order,
        task_of_node=task_of_node,
    )
