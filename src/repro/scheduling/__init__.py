"""Scheduling substrate: profile-aware list scheduling and slack analysis.

The synthesis engine calls :func:`schedule_tasks` after every tentative
move "to make sure that the throughput constraints are still met"
(Figure 4), and :mod:`repro.scheduling.slack` when deriving relaxed
constraints for moves A and B (Figure 5).
"""

from .model import ScheduleResult, TaskSpec
from .scheduler import schedule_tasks, task_dependencies
from .slack import (
    EnvironmentConstraint,
    backward_pass,
    environment_of,
    latest_start_times,
    required_signal_times,
    task_slacks,
)

__all__ = [
    "EnvironmentConstraint",
    "ScheduleResult",
    "TaskSpec",
    "backward_pass",
    "environment_of",
    "latest_start_times",
    "required_signal_times",
    "schedule_tasks",
    "task_dependencies",
    "task_slacks",
]
