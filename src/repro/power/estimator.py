"""Switched-capacitance power accounting for RTL architectures.

The estimator consumes *usage records* — which cell is activated how
often with which value streams — and produces a per-category energy
breakdown.  It deliberately knows nothing about DFGs, schedules or
bindings; the synthesis layer (:mod:`repro.synthesis.costs`) assembles
the usage records from a solution, and library characterization of
complex modules reuses the same accounting.

Units: energies are in (capacitance-unit × volt²); power is energy per
sampling period divided by the period in ns.  Only ratios of these
numbers are ever reported, matching the paper's normalized tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..library.cells import LibraryCell
from ..library.voltage import energy_scale
from .activity import operand_activity, stream_activity

__all__ = [
    "FUUsage",
    "RegisterUsage",
    "MuxUsage",
    "InterconnectUsage",
    "PowerReport",
    "estimate_power",
    "WIRE_CAP_PER_CONNECTION",
]

#: Effective switched capacitance of one point-to-point datapath
#: connection per value transported (the paper folds "a measure of
#: interconnect" into its cost; this is ours).
WIRE_CAP_PER_CONNECTION = 0.18


#: Fraction of a full-activity evaluation burned when a shared unit's
#: input multiplexer switches between unrelated operands mid-iteration
#: (spurious combinational evaluation).  Glitching in muxed datapaths is
#: a large, well-documented cost of resource sharing — the reason the
#: paper's power optimization "often requires that operations be bound
#: to different functional unit instances" (Section 3, ref. [9]).
GLITCH_FRACTION = 0.35


@dataclass
class FUUsage:
    """A functional unit plus the operand streams of its bound operations.

    ``operand_streams_per_op`` follows the serialization order on the
    unit; sharing several weakly-correlated operations shows up as a
    high interleaved activity (see :mod:`repro.power.activity`).
    ``activations_per_sample`` defaults to one per bound operation.
    ``glitch_evaluations`` counts the spurious evaluations caused by
    input-mux switching on shared units (0 for dedicated units).
    """

    cell: LibraryCell
    operand_streams_per_op: list[list[np.ndarray]]
    width: int
    activations_per_sample: int | None = None
    glitch_evaluations: int = 0

    def energy_per_sample(self, vdd: float, activity: float | None = None) -> float:
        """Energy per sample; *activity* overrides the stream-derived
        operand activity (used by incremental evaluation to reuse an
        already-computed activity — the arithmetic below is identical
        either way, so the result is bit-identical)."""
        activations = (
            self.activations_per_sample
            if self.activations_per_sample is not None
            else len(self.operand_streams_per_op)
        )
        if activations == 0:
            return 0.0
        if activity is None:
            activity = operand_activity(self.operand_streams_per_op, self.width)
        useful = activations * self.cell.energy_per_op(vdd, activity)
        glitch = (
            self.glitch_evaluations
            * GLITCH_FRACTION
            * self.cell.energy_per_op(vdd, 0.5)
        )
        # Cells are characterized at 16 bits; capacitance scales with
        # the instantiated datapath width.
        return (useful + glitch) * (self.width / 16.0)


#: Fraction of a register's write energy burned per *idle* clock cycle
#: (clock-pin and clock-tree load).  This is what physically couples area
#: to power: a sprawling fully parallel architecture clocks many more
#: flip-flops per sample than a compact shared one.
REGISTER_CLOCK_FRACTION = 0.25


@dataclass
class RegisterUsage:
    """A register plus the value streams written into it, in write order.

    ``clocked_cycles`` is the schedule length: the register's clock pin
    toggles every cycle whether or not a load is enabled.
    """

    cell: LibraryCell
    value_streams: list[np.ndarray]
    width: int
    clocked_cycles: int = 0
    writes_per_sample: int | None = None

    def energy_per_sample(self, vdd: float, activity: float | None = None) -> float:
        """Energy per sample; *activity* (with ``writes_per_sample``)
        lets incremental evaluation reuse an already-computed write
        activity without re-supplying the value streams — the
        arithmetic is identical, so the result is bit-identical."""
        writes = (
            self.writes_per_sample
            if self.writes_per_sample is not None
            else len(self.value_streams)
        )
        if writes == 0:
            # A register nobody writes still clocks every cycle; the
            # clock-tree term below is exactly the area→power coupling
            # REGISTER_CLOCK_FRACTION exists to model, so it must not be
            # skipped just because the write count is zero.
            write_energy = 0.0
        else:
            if activity is None:
                if len(self.value_streams) == 1:
                    activity = stream_activity(self.value_streams[0], self.width)
                else:
                    from .activity import interleaved_activity

                    activity = interleaved_activity(self.value_streams, self.width)
            write_energy = writes * self.cell.energy_per_op(vdd, activity)
        clock_energy = (
            REGISTER_CLOCK_FRACTION
            * self.clocked_cycles
            * self.cell.energy_per_op(vdd, 0.0)
        )
        return (write_energy + clock_energy) * (self.width / 16.0)


@dataclass
class MuxUsage:
    """A multiplexer tree on one input port: ``n_inputs``-to-1.

    Each access steers one value through the tree; only the legs along
    that one root-to-leaf path switch, so the energy per access grows
    like ``log2(n_inputs)``, not like the leg count.
    """

    cell: LibraryCell
    n_inputs: int
    accesses_per_sample: int
    activity: float = 0.5

    @property
    def n_legs(self) -> int:
        """Number of 2-to-1 legs in the tree (its area cost)."""
        return max(0, self.n_inputs - 1)

    @property
    def switched_legs_per_access(self) -> int:
        """Legs on one select path (its energy cost per access)."""
        if self.n_inputs <= 1:
            return 0
        return math.ceil(math.log2(self.n_inputs))

    def energy_per_sample(self, vdd: float) -> float:
        return (
            self.switched_legs_per_access
            * self.accesses_per_sample
            * self.cell.energy_per_op(vdd, self.activity)
        )


@dataclass
class InterconnectUsage:
    """Aggregate wiring: connection count, activity, and wire length.

    ``length_factor`` models the physical fact that average wire length
    (and hence capacitance per connection) grows with the square root
    of circuit area: bigger, more parallel architectures pay more per
    value moved.  This is the area→power coupling that keeps
    power-optimized circuits from sprawling without bound, replacing
    the paper's placed-and-routed interconnect capacitance.
    """

    n_connections: int
    activity: float = 0.4
    length_factor: float = 1.0

    def energy_per_sample(self, vdd: float) -> float:
        return (
            self.n_connections
            * WIRE_CAP_PER_CONNECTION
            * self.length_factor
            * self.activity
            * energy_scale(vdd)
            * 25.0
        )


@dataclass
class ControllerUsage:
    """FSM controller: state register + decode logic switching per cycle.

    The paper's controller is merged with the datapath and synthesized
    by SIS; we estimate it from its two size drivers — the state count
    (state register width and next-state logic) and the number of
    distinct control signals decoded (load enables, unit starts, mux
    selects).
    """

    n_states: int
    n_control_signals: int

    #: Switched capacitance per state-register/decode transition, per
    #: control signal.
    CAP_PER_SIGNAL = 0.02
    #: Switched capacitance of the state register + next-state logic
    #: per cycle.
    CAP_PER_CYCLE = 0.15

    def energy_per_sample(self, vdd: float) -> float:
        switching = (
            self.n_states * self.CAP_PER_CYCLE
            + self.n_control_signals * self.CAP_PER_SIGNAL * self.n_states * 0.1
        )
        return switching * energy_scale(vdd) * 25.0

    #: Area per decoded control signal and per state, in cell-area units.
    AREA_PER_SIGNAL = 1.2
    AREA_PER_STATE = 0.6

    def area(self) -> float:
        return (
            self.n_control_signals * self.AREA_PER_SIGNAL
            + self.n_states * self.AREA_PER_STATE
        )


@dataclass
class PowerReport:
    """Per-category energy breakdown for one sampling period."""

    fu_energy: float
    register_energy: float
    mux_energy: float
    wire_energy: float
    extra_energy: float
    sampling_period_ns: float
    vdd: float
    controller_energy: float = 0.0

    @property
    def total_energy(self) -> float:
        return (
            self.fu_energy
            + self.register_energy
            + self.mux_energy
            + self.wire_energy
            + self.extra_energy
            + self.controller_energy
        )

    @property
    def power(self) -> float:
        """Average power (energy per sampling period over period length)."""
        if self.sampling_period_ns <= 0:
            raise ValueError("sampling period must be positive")
        return self.total_energy / self.sampling_period_ns


def estimate_power(
    fus: list[FUUsage],
    registers: list[RegisterUsage],
    muxes: list[MuxUsage],
    interconnect: InterconnectUsage,
    vdd: float,
    sampling_period_ns: float,
    extra_energy: float = 0.0,
    controller: ControllerUsage | None = None,
) -> PowerReport:
    """Aggregate a full RTL power report.

    ``extra_energy`` carries pre-characterized contributions (library
    complex modules whose internals are not re-estimated per move).
    """
    return PowerReport(
        fu_energy=sum(u.energy_per_sample(vdd) for u in fus),
        register_energy=sum(u.energy_per_sample(vdd) for u in registers),
        mux_energy=sum(u.energy_per_sample(vdd) for u in muxes),
        wire_energy=interconnect.energy_per_sample(vdd),
        extra_energy=extra_energy,
        sampling_period_ns=sampling_period_ns,
        vdd=vdd,
        controller_energy=(
            controller.energy_per_sample(vdd) if controller is not None else 0.0
        ),
    )
