"""Switching-activity extraction from simulated value streams.

Power in static CMOS is dominated by ``C_eff * alpha * Vdd^2 * f`` where
*alpha* is the toggling fraction.  The paper's key power argument
(Section 3, with a pointer to ref. [9]) is that **resource sharing can
raise alpha**: when two weakly-correlated computations share a
functional unit, the unit's inputs jump between unrelated values each
cycle, so more bits toggle than if each computation had a dedicated
unit fed by its own well-correlated stream.

This module turns value streams into activity factors, including the
*interleaved* activity a shared resource sees.  The hot entry point is
:func:`batch_activities`, which resolves a whole set of
``(streams, width)`` requests in one array pass: all cache misses are
wrapped, interleaved, diffed and popcounted over a single concatenated
matrix instead of one resource at a time.  The scalar functions
(:func:`stream_activity`, :func:`interleaved_activity`,
:func:`operand_activity`) are thin wrappers over the same kernel, so
batched and per-call results are bit-identical by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dfg.ops import wrap_to_width

__all__ = [
    "hamming_distance",
    "stream_activity",
    "interleaved_activity",
    "operand_activity",
    "batch_activities",
    "reset_activity_caches",
    "activity_cache_sizes",
]


#: Byte-wise popcount lookup, built once (this sits on the hottest path
#: of cost evaluation).
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def hamming_distance(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Per-sample count of differing bits between two streams."""
    mask = (1 << width) - 1
    diff = (np.asarray(a, dtype=np.int64) ^ np.asarray(b, dtype=np.int64)) & mask
    counts = np.zeros(diff.shape, dtype=np.int64)
    work = diff
    for _ in range((width + 7) // 8):
        counts += _POPCOUNT_TABLE[work & 0xFF]
        work = work >> 8
    return counts


#: Memo for per-stream activities keyed by array identity.  Simulated
#: streams are created once per synthesis run and never mutated, so
#: identity-keyed caching is sound; the array reference is kept in the
#: value to pin its id.
_STREAM_ACTIVITY_CACHE: dict[tuple[int, int], tuple[np.ndarray, float]] = {}

#: Memo for interleaved activities keyed by the identities of the
#: component streams (which are the long-lived simulated arrays); the
#: stream references are kept in the value to pin their ids.
_INTERLEAVED_ACTIVITY_CACHE: dict[tuple, tuple[tuple, float]] = {}

#: Entry bound before a cache is wholesale-cleared (cheap, and by the
#: time a cache is this large the working set has clearly moved on).
_CACHE_BOUND = 100_000


def reset_activity_caches() -> None:
    """Drop both activity memos (and the stream arrays they pin).

    Wired into per-point cache teardown and end-of-run cleanup so a
    long-lived process does not retain simulated streams from finished
    runs; within a run the caches repopulate from the same long-lived
    arrays, so results are unaffected.
    """
    _STREAM_ACTIVITY_CACHE.clear()
    _INTERLEAVED_ACTIVITY_CACHE.clear()


def activity_cache_sizes() -> tuple[int, int]:
    """(stream-cache entries, interleaved-cache entries) — for tests."""
    return (len(_STREAM_ACTIVITY_CACHE), len(_INTERLEAVED_ACTIVITY_CACHE))


def _cached_activity(streams: Sequence[np.ndarray], width: int) -> float | None:
    """Cache probe for one request; ``None`` means miss (0.0 is a hit)."""
    if not streams:
        return 0.0
    if len(streams) == 1:
        stream = streams[0]
        cached = _STREAM_ACTIVITY_CACHE.get((id(stream), width))
        if cached is not None and cached[0] is stream:
            return cached[1]
        return None
    cached = _INTERLEAVED_ACTIVITY_CACHE.get(
        (tuple(id(s) for s in streams), width)
    )
    if cached is not None and all(
        kept is live for kept, live in zip(cached[0], streams)
    ):
        return cached[1]
    return None


def _cache_activity(streams: Sequence[np.ndarray], width: int, result: float) -> None:
    """Insert one resolved request into the matching memo.

    Single-stream requests go to the per-stream cache; interleavings go
    to the interleaved cache *only* — the interleaved array itself is a
    per-call temporary and must never be pinned under its (dead) id in
    the per-stream cache.
    """
    if len(streams) == 1:
        stream = streams[0]
        if isinstance(stream, np.ndarray):
            if len(_STREAM_ACTIVITY_CACHE) > _CACHE_BOUND:
                _STREAM_ACTIVITY_CACHE.clear()
            _STREAM_ACTIVITY_CACHE[(id(stream), width)] = (stream, result)
    elif all(isinstance(s, np.ndarray) for s in streams):
        if len(_INTERLEAVED_ACTIVITY_CACHE) > _CACHE_BOUND:
            _INTERLEAVED_ACTIVITY_CACHE.clear()
        _INTERLEAVED_ACTIVITY_CACHE[
            (tuple(id(s) for s in streams), width)
        ] = (tuple(streams), result)


def _compute_activities(
    misses: list[tuple[Sequence[np.ndarray], int]]
) -> list[float]:
    """Batched activity kernel over cache-missed requests.

    All requests' interleaved streams are wrapped, consecutive-sample
    diffs taken, and the diffs concatenated into one flat ``int64``
    vector that is popcounted with a single byte-table gather per byte
    lane; per-request toggle totals come from one ``np.add.reduceat``.
    Toggle counts are exact integers well below 2**53, so the final
    ``total / n / width`` float arithmetic is bit-identical to the
    scalar path's ``float(np.mean(toggles)) / width``.
    """
    results = [0.0] * len(misses)
    diffs: list[np.ndarray] = []
    segment_meta: list[tuple[int, int, int]] = []  # (slot, n_samples, width)
    wrap_memo: dict[tuple[int, int], np.ndarray] = {}
    for slot, (streams, width) in enumerate(misses):
        wrapped = []
        for s in streams:
            memo_key = (id(s), width)
            w = wrap_memo.get(memo_key)
            if w is None:
                w = wrap_to_width(np.asarray(s, dtype=np.int64), width)
                wrap_memo[memo_key] = w
            wrapped.append(w)
        if len(wrapped) == 1:
            flat = wrapped[0]
        else:
            # t-major interleave: s0[0], s1[0], ..., s0[1], s1[1], ...
            flat = np.stack(wrapped).T.reshape(-1)
        n = flat.shape[0]
        if n < 2:
            continue  # activity of a <2-sample stream is defined as 0.0
        mask = (1 << width) - 1
        diffs.append((flat[:-1] ^ flat[1:]) & mask)
        segment_meta.append((slot, n - 1, width))
    if not diffs:
        return results
    flat_diffs = diffs[0] if len(diffs) == 1 else np.concatenate(diffs)
    counts = _POPCOUNT_TABLE[flat_diffs & 0xFF]
    work = flat_diffs >> 8
    max_width = max(width for _slot, _n, width in segment_meta)
    for _ in range((max_width + 7) // 8 - 1):
        # Diffs are masked to their own width, so the extra byte lanes of
        # narrower requests contribute exactly zero — per-request counts
        # match a per-width loop bit for bit.
        counts += _POPCOUNT_TABLE[work & 0xFF]
        work = work >> 8
    offsets = np.zeros(len(segment_meta), dtype=np.intp)
    if len(segment_meta) > 1:
        np.cumsum([n for _slot, n, _w in segment_meta[:-1]], out=offsets[1:])
    totals = np.add.reduceat(counts, offsets)
    for (slot, n, width), total in zip(segment_meta, totals):
        results[slot] = (float(total) / n) / width
    return results


def batch_activities(
    requests: Sequence[tuple[Sequence[np.ndarray], int]]
) -> list[float]:
    """Resolve many ``(streams, width)`` activity requests in one pass.

    Cache hits are answered from the scalar functions' memos; all
    misses are priced together through :func:`_compute_activities` and
    inserted back into the same memos, so interleaving batched and
    scalar calls in any order yields identical values.
    """
    results: list[float | None] = [None] * len(requests)
    misses: list[tuple[Sequence[np.ndarray], int]] = []
    miss_of: list[tuple[int, int]] = []  # (request slot, miss slot)
    seen: dict[tuple, int] = {}
    for i, (streams, width) in enumerate(requests):
        hit = _cached_activity(streams, width)
        if hit is not None:
            results[i] = hit
            continue
        key = (tuple(id(s) for s in streams), width)
        miss_slot = seen.get(key)
        if miss_slot is None:
            miss_slot = len(misses)
            seen[key] = miss_slot
            misses.append((streams, width))
        miss_of.append((i, miss_slot))
    if misses:
        computed = _compute_activities(misses)
        for i, miss_slot in miss_of:
            results[i] = computed[miss_slot]
        for (streams, width), value in zip(misses, computed):
            _cache_activity(streams, width, value)
    return results  # type: ignore[return-value]


def stream_activity(stream: np.ndarray, width: int) -> float:
    """Average toggle fraction between consecutive samples of one stream.

    This is the activity a resource sees when it is *dedicated* to one
    value sequence.  Returns 0 for streams shorter than two samples.
    """
    cached = _STREAM_ACTIVITY_CACHE.get((id(stream), width))
    if cached is not None and cached[0] is stream:
        return cached[1]
    result = _compute_activities([((stream,), width)])[0]
    _cache_activity((stream,), width, result)
    return result


def interleaved_activity(streams: list[np.ndarray], width: int) -> float:
    """Activity seen by a resource shared among several value sequences.

    Per iteration the resource processes ``streams[0][t], streams[1][t],
    ..., streams[k-1][t]`` back to back, then moves to iteration
    ``t + 1``.  The toggling is measured along that interleaved order —
    exactly what the operand bus of a shared unit experiences.
    """
    if not streams:
        return 0.0
    if len(streams) == 1:
        return stream_activity(streams[0], width)
    # Same identity-keyed memo idiom as _STREAM_ACTIVITY_CACHE, one
    # level up: candidate evaluation re-derives the same interleavings
    # of the same simulated streams over and over (a full re-evaluation
    # recomputes every instance, but most instances' operand streams are
    # unchanged).  The interleaved array itself stays a kernel-local
    # temporary — it is deliberately *not* pushed through
    # stream_activity, whose id-keyed cache would pin one dead array
    # per miss.
    cached = _cached_activity(streams, width)
    if cached is not None:
        return cached
    result = _compute_activities([(streams, width)])[0]
    _cache_activity(streams, width, result)
    return result


def operand_activity(
    operand_streams_per_op: list[list[np.ndarray]], width: int
) -> float:
    """Activity of a functional unit executing several bound operations.

    ``operand_streams_per_op[i]`` lists the operand streams of the
    ``i``-th operation bound to the unit, in the serialization order the
    scheduler chose.  Each operand *port* of the unit sees the
    interleaving of the corresponding operand across all bound
    operations; the unit's activity is the mean over its ports.  All
    ports are priced through one batched kernel call.
    """
    if not operand_streams_per_op:
        return 0.0
    n_ports = max(len(ops) for ops in operand_streams_per_op)
    if n_ports == 0:
        return 0.0
    requests = []
    for port in range(n_ports):
        port_streams = [
            ops[port] for ops in operand_streams_per_op if port < len(ops)
        ]
        requests.append((port_streams, width))
    port_activities = batch_activities(requests)
    return float(np.mean(port_activities))
