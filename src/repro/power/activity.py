"""Switching-activity extraction from simulated value streams.

Power in static CMOS is dominated by ``C_eff * alpha * Vdd^2 * f`` where
*alpha* is the toggling fraction.  The paper's key power argument
(Section 3, with a pointer to ref. [9]) is that **resource sharing can
raise alpha**: when two weakly-correlated computations share a
functional unit, the unit's inputs jump between unrelated values each
cycle, so more bits toggle than if each computation had a dedicated
unit fed by its own well-correlated stream.

This module turns value streams into activity factors, including the
*interleaved* activity a shared resource sees.
"""

from __future__ import annotations

import numpy as np

from ..dfg.ops import wrap_to_width

__all__ = [
    "hamming_distance",
    "stream_activity",
    "interleaved_activity",
    "operand_activity",
]


#: Byte-wise popcount lookup, built once (this sits on the hottest path
#: of cost evaluation).
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def hamming_distance(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Per-sample count of differing bits between two streams."""
    mask = (1 << width) - 1
    diff = (np.asarray(a, dtype=np.int64) ^ np.asarray(b, dtype=np.int64)) & mask
    counts = np.zeros(diff.shape, dtype=np.int64)
    work = diff
    for _ in range((width + 7) // 8):
        counts += _POPCOUNT_TABLE[work & 0xFF]
        work = work >> 8
    return counts


#: Memo for per-stream activities keyed by array identity.  Simulated
#: streams are created once per synthesis run and never mutated, so
#: identity-keyed caching is sound; the array reference is kept in the
#: value to pin its id.
_STREAM_ACTIVITY_CACHE: dict[tuple[int, int], tuple[np.ndarray, float]] = {}

#: Memo for interleaved activities keyed by the identities of the
#: component streams (which are the long-lived simulated arrays); the
#: stream references are kept in the value to pin their ids.
_INTERLEAVED_ACTIVITY_CACHE: dict[tuple, tuple[tuple, float]] = {}


def stream_activity(stream: np.ndarray, width: int) -> float:
    """Average toggle fraction between consecutive samples of one stream.

    This is the activity a resource sees when it is *dedicated* to one
    value sequence.  Returns 0 for streams shorter than two samples.
    """
    key = (id(stream), width)
    cached = _STREAM_ACTIVITY_CACHE.get(key)
    if cached is not None and cached[0] is stream:
        return cached[1]
    wrapped = wrap_to_width(np.asarray(stream, dtype=np.int64), width)
    if wrapped.shape[0] < 2:
        result = 0.0
    else:
        toggles = hamming_distance(wrapped[:-1], wrapped[1:], width)
        result = float(np.mean(toggles)) / width
    if isinstance(stream, np.ndarray):
        if len(_STREAM_ACTIVITY_CACHE) > 100_000:
            _STREAM_ACTIVITY_CACHE.clear()
        _STREAM_ACTIVITY_CACHE[key] = (stream, result)
    return result


def interleaved_activity(streams: list[np.ndarray], width: int) -> float:
    """Activity seen by a resource shared among several value sequences.

    Per iteration the resource processes ``streams[0][t], streams[1][t],
    ..., streams[k-1][t]`` back to back, then moves to iteration
    ``t + 1``.  The toggling is measured along that interleaved order —
    exactly what the operand bus of a shared unit experiences.
    """
    if not streams:
        return 0.0
    if len(streams) == 1:
        return stream_activity(streams[0], width)
    # Same identity-keyed memo idiom as _STREAM_ACTIVITY_CACHE, one
    # level up: candidate evaluation re-derives the same interleavings
    # of the same simulated streams over and over (a full re-evaluation
    # recomputes every instance, but most instances' operand streams are
    # unchanged), and the interleaved array is built fresh each time so
    # the per-stream cache below never sees it twice.
    key = (tuple(id(s) for s in streams), width)
    cached = _INTERLEAVED_ACTIVITY_CACHE.get(key)
    if cached is not None and all(
        kept is live for kept, live in zip(cached[0], streams)
    ):
        return cached[1]
    matrix = np.stack(
        [wrap_to_width(np.asarray(s, dtype=np.int64), width) for s in streams]
    )
    interleaved = matrix.T.reshape(-1)  # t-major: s0[0], s1[0], ..., s0[1], ...
    result = stream_activity(interleaved, width)
    if all(isinstance(s, np.ndarray) for s in streams):
        if len(_INTERLEAVED_ACTIVITY_CACHE) > 100_000:
            _INTERLEAVED_ACTIVITY_CACHE.clear()
        _INTERLEAVED_ACTIVITY_CACHE[key] = (tuple(streams), result)
    return result


def operand_activity(
    operand_streams_per_op: list[list[np.ndarray]], width: int
) -> float:
    """Activity of a functional unit executing several bound operations.

    ``operand_streams_per_op[i]`` lists the operand streams of the
    ``i``-th operation bound to the unit, in the serialization order the
    scheduler chose.  Each operand *port* of the unit sees the
    interleaving of the corresponding operand across all bound
    operations; the unit's activity is the mean over its ports.
    """
    if not operand_streams_per_op:
        return 0.0
    n_ports = max(len(ops) for ops in operand_streams_per_op)
    if n_ports == 0:
        return 0.0
    port_activities = []
    for port in range(n_ports):
        port_streams = [
            ops[port] for ops in operand_streams_per_op if port < len(ops)
        ]
        port_activities.append(interleaved_activity(port_streams, width))
    return float(np.mean(port_activities))
