"""Bit-true functional simulation of hierarchical DFGs.

The trace-driven power estimator needs the value stream on every signal
of the design — including signals *inside* the sub-DFGs instantiated by
hierarchical nodes, because complex RTL modules are characterized from
the streams their internal resources see.

A simulation result is keyed by ``(path, signal)`` where *path* is the
tuple of hierarchical-node ids descended through (``()`` is the top
level) and *signal* is a ``(node_id, output_port)`` pair in the DFG at
that path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..dfg.graph import DFG, NodeKind, Signal
from ..dfg.hierarchy import Design
from ..dfg.ops import apply_operation, wrap_to_width
from ..errors import DFGError
from .traces import TraceSet

__all__ = ["SimTrace", "simulate_design", "simulate_dfg", "simulate_subgraph"]

Path = tuple[str, ...]


class SimTrace:
    """Value streams for every signal at every hierarchy level."""

    def __init__(self, n_samples: int):
        self.n_samples = n_samples
        self._values: dict[tuple[Path, Signal], np.ndarray] = {}

    def put(self, path: Path, signal: Signal, stream: np.ndarray) -> None:
        self._values[(path, signal)] = stream

    def stream(self, path: Path, signal: Signal) -> np.ndarray:
        """The value stream of *signal* in the DFG instance at *path*."""
        try:
            return self._values[(path, signal)]
        except KeyError:
            raise DFGError(
                f"no simulated stream for signal {signal!r} at path {path!r}"
            ) from None

    def has(self, path: Path, signal: Signal) -> bool:
        return (path, signal) in self._values

    def items_at(self, path: Path) -> list[tuple[Signal, np.ndarray]]:
        """All ``(signal, stream)`` pairs at one level, sorted by signal."""
        return sorted(
            (
                (signal, stream)
                for (p, signal), stream in self._values.items()
                if p == path
            ),
            key=lambda item: item[0],
        )

    def __len__(self) -> int:
        return len(self._values)


def simulate_design(
    design: Design,
    traces: TraceSet,
    choose: Callable[[str], DFG] | None = None,
) -> SimTrace:
    """Simulate *design* on *traces*, descending the full hierarchy.

    ``choose`` selects the DFG variant expanded for each behavior
    (default: the design's first registered variant).  Note that all
    variants of one behavior are functionally equivalent, so the choice
    does not change top-level streams — only which internal signals
    exist.
    """
    if choose is None:
        choose = design.default_variant
    top = design.top
    n = _check_traces(top, traces)
    result = SimTrace(n)
    input_streams = [np.asarray(traces[name], dtype=np.int64) for name in top.inputs]
    _simulate_into(result, (), top, input_streams, choose)
    return result


def simulate_dfg(dfg: DFG, traces: TraceSet) -> SimTrace:
    """Simulate a flat DFG (no hierarchical nodes) on *traces*."""
    if dfg.hier_nodes():
        raise DFGError(
            f"simulate_dfg requires a flat DFG; {dfg.name!r} has hierarchical "
            "nodes (use simulate_design)"
        )
    n = _check_traces(dfg, traces)
    result = SimTrace(n)
    input_streams = [np.asarray(traces[name], dtype=np.int64) for name in dfg.inputs]
    _simulate_into(result, (), dfg, input_streams, choose=None)
    return result


def simulate_subgraph(
    design: Design,
    dfg: DFG,
    input_streams: list[np.ndarray],
    choose: Callable[[str], DFG] | None = None,
) -> SimTrace:
    """Simulate one DFG (any hierarchy level) fed by explicit input streams.

    Used when synthesizing a sub-behavior: the streams a hierarchical
    node receives in its parent become the stimulus for the sub-DFG, so
    module characterization sees representative data.  The returned
    trace is rooted at path ``()`` for *dfg* itself.
    """
    if choose is None:
        choose = design.default_variant
    if len(input_streams) != len(dfg.inputs):
        raise DFGError(
            f"{dfg.name!r} has {len(dfg.inputs)} inputs, got "
            f"{len(input_streams)} streams"
        )
    # Coerce before touching .shape so plain Python lists work as streams.
    streams = [np.asarray(s, dtype=np.int64) for s in input_streams]
    n = streams[0].shape[0] if streams else 0
    result = SimTrace(n)
    _simulate_into(result, (), dfg, streams, choose)
    return result


def _check_traces(dfg: DFG, traces: TraceSet) -> int:
    lengths = set()
    for name in dfg.inputs:
        if name not in traces:
            raise DFGError(f"no trace supplied for primary input {name!r}")
        lengths.add(len(traces[name]))
    if not lengths:
        return 0
    if len(lengths) != 1:
        raise DFGError(f"trace lengths differ: {sorted(lengths)}")
    return lengths.pop()


def _simulate_into(
    result: SimTrace,
    path: Path,
    dfg: DFG,
    input_streams: list[np.ndarray],
    choose: Callable[[str], DFG] | None,
) -> list[np.ndarray]:
    """Simulate one DFG instance; returns its primary-output streams."""
    n = input_streams[0].shape[0] if input_streams else result.n_samples

    for port, name in enumerate(dfg.inputs):
        node = dfg.node(name)
        stream = wrap_to_width(input_streams[port], node.width)
        result.put(path, (name, 0), stream)

    for nid in dfg.topo_order():
        node = dfg.node(nid)
        if node.kind == NodeKind.INPUT or node.kind == NodeKind.OUTPUT:
            continue
        if node.kind == NodeKind.CONST:
            assert node.value is not None
            stream = np.full(n, node.value, dtype=np.int64)
            result.put(path, (nid, 0), wrap_to_width(stream, node.width))
        elif node.kind == NodeKind.OP:
            assert node.op is not None
            operands = [
                result.stream(path, e.signal) for e in dfg.in_edges(nid)
            ]
            result.put(path, (nid, 0), apply_operation(node.op, operands, node.width))
        elif node.kind == NodeKind.HIER:
            if choose is None:  # pragma: no cover - guarded by simulate_dfg
                raise DFGError("hierarchical node in flat simulation")
            assert node.behavior is not None
            sub = choose(node.behavior)
            sub_inputs = [result.stream(path, e.signal) for e in dfg.in_edges(nid)]
            outputs = _simulate_into(result, path + (nid,), sub, sub_inputs, choose)
            for port, stream in enumerate(outputs):
                result.put(path, (nid, port), stream)
        else:  # pragma: no cover
            raise DFGError(f"unknown node kind {node.kind}")

    output_streams: list[np.ndarray] = []
    for name in dfg.outputs:
        (edge,) = dfg.in_edges(name)
        output_streams.append(result.stream(path, edge.signal))
    return output_streams
