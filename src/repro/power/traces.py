"""Synthetic input-trace generators.

The paper feeds "typical input traces to aid power estimation".  We have
no production DSP traces, so this module synthesizes the three stimulus
families the DSP/image benchmarks would see (see DESIGN.md for the
substitution rationale):

* **white** — uncorrelated uniform samples (worst-case activity);
* **speech-like** — AR(1)-correlated samples, the standard surrogate for
  audio/speech signals (high sample-to-sample correlation, which is what
  makes resource *non*-sharing pay off in power);
* **image-like** — slowly ramping scanlines with additive noise.

All generators are deterministic given their seed.
"""

from __future__ import annotations

import numpy as np

from ..dfg.graph import DFG

__all__ = [
    "TraceSet",
    "white_traces",
    "speech_traces",
    "image_traces",
    "default_traces",
    "DEFAULT_TRACE_LENGTH",
]

#: Samples per primary input used by default during synthesis.  Long
#: enough for stable activity averages, short enough to keep the
#: estimator out of the profile hot path.
DEFAULT_TRACE_LENGTH = 64

#: Mapping from primary-input name to its sample stream.
TraceSet = dict[str, np.ndarray]


def _amplitude(width: int) -> int:
    """Usable amplitude: three quarters of full scale, leaving headroom."""
    return (1 << (width - 1)) * 3 // 4


def white_traces(dfg: DFG, n: int = DEFAULT_TRACE_LENGTH, seed: int = 0) -> TraceSet:
    """Uncorrelated uniform samples for every primary input."""
    rng = np.random.default_rng(seed)
    traces: TraceSet = {}
    for name in dfg.inputs:
        amp = _amplitude(dfg.node(name).width)
        traces[name] = rng.integers(-amp, amp, size=n, dtype=np.int64)
    return traces


def speech_traces(
    dfg: DFG,
    n: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    rho: float = 0.998,
) -> TraceSet:
    """AR(1)-correlated samples: ``x[t] = rho * x[t-1] + noise``.

    ``rho`` close to 1 yields the strong temporal correlation of sampled
    audio (an audio signal sampled well above its bandwidth moves a
    small fraction of full scale per sample), the regime in which
    dedicating resources to one stream keeps switched capacitance low.
    """
    rng = np.random.default_rng(seed)
    traces: TraceSet = {}
    for idx, name in enumerate(dfg.inputs):
        amp = _amplitude(dfg.node(name).width)
        noise = rng.normal(0.0, 1.0, size=n)
        samples = np.empty(n)
        state = 0.0
        for t in range(n):
            state = rho * state + noise[t]
            samples[t] = state
        # Normalize to the amplitude range; AR(1) stationary std is
        # 1/sqrt(1 - rho^2).
        scale = amp * np.sqrt(1.0 - rho**2) * 0.8
        traces[name] = np.clip(samples * scale, -amp, amp).astype(np.int64)
    return traces


def image_traces(dfg: DFG, n: int = DEFAULT_TRACE_LENGTH, seed: int = 0) -> TraceSet:
    """Slowly ramping scanline-like samples with small additive noise."""
    rng = np.random.default_rng(seed)
    traces: TraceSet = {}
    for idx, name in enumerate(dfg.inputs):
        amp = _amplitude(dfg.node(name).width)
        period = 16 + 4 * (idx % 5)
        t = np.arange(n)
        ramp = ((t % period) / period * 2.0 - 1.0) * amp * 0.7
        noise = rng.integers(-amp // 16, amp // 16 + 1, size=n)
        traces[name] = np.clip(ramp.astype(np.int64) + noise, -amp, amp)
    return traces


def default_traces(dfg: DFG, n: int = DEFAULT_TRACE_LENGTH, seed: int = 0) -> TraceSet:
    """The trace family used when the caller does not supply one."""
    return speech_traces(dfg, n=n, seed=seed)
