"""Trace-driven power-estimation substrate.

Pipeline: :mod:`traces` generate stimuli → :mod:`simulate` produces
bit-true value streams for every signal at every hierarchy level →
:mod:`activity` turns streams (and resource-sharing interleavings) into
toggle factors → :mod:`estimator` aggregates switched-capacitance
energies into a power report.
"""

from .activity import (
    activity_cache_sizes,
    batch_activities,
    hamming_distance,
    interleaved_activity,
    operand_activity,
    reset_activity_caches,
    stream_activity,
)
from .estimator import (
    ControllerUsage,
    FUUsage,
    InterconnectUsage,
    MuxUsage,
    PowerReport,
    RegisterUsage,
    WIRE_CAP_PER_CONNECTION,
    estimate_power,
)
from .simulate import SimTrace, simulate_design, simulate_dfg, simulate_subgraph
from .traces import (
    DEFAULT_TRACE_LENGTH,
    TraceSet,
    default_traces,
    image_traces,
    speech_traces,
    white_traces,
)

__all__ = [
    "DEFAULT_TRACE_LENGTH",
    "ControllerUsage",
    "FUUsage",
    "InterconnectUsage",
    "MuxUsage",
    "PowerReport",
    "RegisterUsage",
    "SimTrace",
    "TraceSet",
    "WIRE_CAP_PER_CONNECTION",
    "activity_cache_sizes",
    "batch_activities",
    "default_traces",
    "estimate_power",
    "hamming_distance",
    "image_traces",
    "interleaved_activity",
    "operand_activity",
    "reset_activity_caches",
    "simulate_design",
    "simulate_dfg",
    "simulate_subgraph",
    "speech_traces",
    "stream_activity",
    "white_traces",
]
