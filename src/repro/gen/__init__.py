"""Seeded random hierarchical-design generation.

Every benchmark the engine ships is hand-constructed; this package
*searches* the design space instead.  :func:`generate_design` turns a
``(seed, config)`` pair into a valid hierarchical design — deterministic
down to the byte in the textual format — plus the paired stimulus
streams power estimation needs.  :mod:`repro.gen.corpus` materializes
whole corpora (designs + manifest) for fuzzing, load tests and
transfer-learning experiments, and :mod:`repro.gen.shrink` reduces a
failing design to a minimal reproducer.

The differential-fuzzing harness built on top lives in
``benchmarks/fuzz_designs.py``; the CLI entry point is ``repro gen``.
"""

from .corpus import CorpusEntry, build_corpus, load_manifest, write_corpus
from .generator import (
    DEFAULT_OP_WEIGHTS,
    GenConfig,
    GeneratedDesign,
    generate_batch,
    generate_design,
)
from .shrink import shrink_design

__all__ = [
    "CorpusEntry",
    "DEFAULT_OP_WEIGHTS",
    "GenConfig",
    "GeneratedDesign",
    "build_corpus",
    "generate_batch",
    "generate_design",
    "load_manifest",
    "shrink_design",
    "write_corpus",
]
