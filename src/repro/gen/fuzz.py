"""Generative differential fuzzing: one seed, one end-to-end round.

:func:`check_seed` is the oracle shared by the CI smoke/gate tests
(``tests/integration/test_gen_fuzz.py``) and the standalone driver
(``benchmarks/fuzz_designs.py``).  A round is a **pure function of its
seed** (plus the generator config), so any failure replays exactly::

    PYTHONPATH=src python benchmarks/fuzz_designs.py --replay SEED

One round:

1. generate the design + paired stimulus from the seed;
2. synthesize end-to-end (complex-module library build included) under
   a seed-derived objective;
3. differentially verify the winning RTL against the behavioral
   simulation (:meth:`SynthesisResult.verify`);
4. re-synthesize with the batched activity kernel disabled and demand a
   **bit-identical** outcome (metrics and structural solution
   signature);
5. optionally run cold-then-warm against one persistent synthesis
   store and demand cold = warm = uncached, all bit-identical.

Failures are shrunk (:func:`repro.gen.shrink.shrink_design`) under a
predicate that re-runs the *whole* failing check, so the reduced design
is a genuine reproducer, not just a smaller design.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field

from ..dfg.hierarchy import Design
from ..library import default_library
from ..power.traces import TraceSet, image_traces, speech_traces, white_traces
from ..reporting import quick_config
from ..synthesis import synthesize
from ..synthesis.api import SynthesisResult
from ..synthesis.library_gen import build_complex_library
from ..synthesis.store import solution_signature
from .generator import GenConfig, generate_design
from .shrink import shrink_design

__all__ = ["FuzzOutcome", "check_design", "check_seed", "shrink_failing_seed"]

_STIMULUS = {
    "white": white_traces,
    "speech": speech_traces,
    "image": image_traces,
}

#: Default laxity factor: loose enough that generated designs are
#: routinely feasible, tight enough that scheduling/binding is exercised.
DEFAULT_LAXITY = 2.0


@dataclass
class FuzzOutcome:
    """Result of one differential round."""

    seed: int
    design_name: str
    objective: str
    #: Differential checks executed (verify + cross-checks).
    checks: int = 0
    #: Human-readable failure reports; empty = round passed.
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _objective_for(seed: int) -> str:
    return random.Random(f"repro.gen.fuzz:{seed}").choice(("area", "power"))


def _metrics_key(result: SynthesisResult) -> tuple:
    """Everything a bit-identity cross-check compares, floats exact."""
    m = result.metrics
    return (
        result.vdd,
        result.clk_ns,
        result.sampling_ns,
        m.area,
        m.energy_per_sample,
        m.power,
        m.schedule_length,
        m.feasible,
    )


def _synthesize(
    design: Design,
    traces: TraceSet,
    objective: str,
    laxity: float,
    n_samples: int,
    *,
    batch_activity: bool = True,
    cache_dir: str | None = None,
) -> SynthesisResult:
    config = quick_config()
    config.batch_activity = batch_activity
    config.cache_dir = cache_dir
    library = default_library()
    if any(dfg.hier_nodes() for dfg in design.dfgs()):
        library = build_complex_library(design, library, config=config)
    return synthesize(
        design,
        library,
        laxity_factor=laxity,
        objective=objective,
        traces=traces,
        config=config,
        n_samples=n_samples,
    )


def check_design(
    design: Design,
    traces: TraceSet,
    objective: str,
    *,
    seed: int = -1,
    laxity: float = DEFAULT_LAXITY,
    n_samples: int = 16,
    store_check: bool = False,
) -> FuzzOutcome:
    """Run the full differential round on an explicit design.

    Split out from :func:`check_seed` so the shrinker can re-run the
    identical check on reduced designs.
    """
    outcome = FuzzOutcome(seed=seed, design_name=design.name,
                          objective=objective)

    base = _synthesize(design, traces, objective, laxity, n_samples)
    outcome.checks += 1
    verdict = base.verify()
    if not verdict.ok:
        assert verdict.counterexample is not None
        outcome.failures.append(
            f"differential verification: {verdict.counterexample.describe()}"
        )
        return outcome  # later cross-checks would re-hit the same bug

    scalar = _synthesize(
        design, traces, objective, laxity, n_samples, batch_activity=False
    )
    outcome.checks += 1
    if _metrics_key(base) != _metrics_key(scalar):
        outcome.failures.append(
            "scalar-vs-batched activity pricing diverged: "
            f"batched={_metrics_key(base)} scalar={_metrics_key(scalar)}"
        )
    elif solution_signature(base.solution, design) != solution_signature(
        scalar.solution, design
    ):
        outcome.failures.append(
            "scalar-vs-batched runs chose structurally different solutions"
        )

    if store_check:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-store-") as tmp:
            cold = _synthesize(
                design, traces, objective, laxity, n_samples, cache_dir=tmp
            )
            warm = _synthesize(
                design, traces, objective, laxity, n_samples, cache_dir=tmp
            )
        outcome.checks += 2
        for label, run in (("cold", cold), ("warm", warm)):
            if _metrics_key(run) != _metrics_key(base):
                outcome.failures.append(
                    f"{label}-store run diverged from uncached: "
                    f"{label}={_metrics_key(run)} uncached={_metrics_key(base)}"
                )
            elif solution_signature(run.solution, design) != (
                solution_signature(base.solution, design)
            ):
                outcome.failures.append(
                    f"{label}-store run chose a structurally different solution"
                )
    return outcome


def check_seed(
    seed: int,
    config: GenConfig | None = None,
    *,
    laxity: float = DEFAULT_LAXITY,
    store_check: bool = False,
) -> FuzzOutcome:
    """One differential round, a pure function of ``(seed, config)``."""
    config = config or GenConfig()
    gen = generate_design(seed, config)
    return check_design(
        gen.design,
        gen.traces,
        _objective_for(seed),
        seed=seed,
        laxity=laxity,
        n_samples=config.n_samples,
        store_check=store_check,
    )


def shrink_failing_seed(
    seed: int,
    config: GenConfig | None = None,
    *,
    laxity: float = DEFAULT_LAXITY,
    store_check: bool = False,
    max_checks: int = 40,
) -> Design:
    """Minimize the design behind a failing seed.

    The predicate re-runs the complete differential round on each
    candidate with freshly derived stimulus (trace arrays are keyed to
    the *original* top level's inputs, which reductions may drop), so
    every kept reduction still exhibits a genuine failure.
    """
    config = config or GenConfig()
    gen = generate_design(seed, config)
    objective = _objective_for(seed)
    stimulus = _STIMULUS[config.stimulus]
    trace_seed = seed & 0x7FFFFFFF

    def still_failing(candidate: Design) -> bool:
        traces = stimulus(
            candidate.top, n=config.n_samples, seed=trace_seed
        )
        outcome = check_design(
            candidate,
            traces,
            objective,
            seed=seed,
            laxity=laxity,
            n_samples=config.n_samples,
            store_check=store_check,
        )
        return not outcome.ok

    return shrink_design(gen.design, still_failing, max_checks=max_checks)
