"""Seeded, deterministic random generator of hierarchical designs.

One ``(seed, config)`` pair maps to exactly one design: the same pair
produces the same :class:`~repro.dfg.hierarchy.Design`, the same
byte-identical textual description (:func:`repro.dfg.writer.
write_design`) and the same paired stimulus streams, in any process on
any platform.  All randomness flows from one :class:`random.Random`
seeded from the pair; nothing reads wall clocks, hash seeds or set
iteration order.

The generated space covers the paper's input domain knobs:

* **op mix** — weighted choice over the full operation alphabet;
* **DFG shape** — operation count, input/output counts, constant
  operands;
* **hierarchy** — sub-behaviors called through ``hier`` nodes, nested up
  to a configured depth, with shared-behavior *reuse* (several call
  sites of one behavior);
* **anisomorphic variants** — each behavior may carry extra DFG variants
  derived by bit-true rewrites (commuted operands, ``a-b`` as
  ``a+neg(b)``, pass-through stages), exercising move A's
  functionally-equivalent-module choices;
* **stimulus** — a paired trace set from the white/speech/image
  families, seeded from the same pair.

Every emitted design passes :func:`~repro.dfg.validate.validate_design`
before it leaves this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from ..dfg.graph import DEFAULT_WIDTH, DFG, NodeKind, Signal
from ..dfg.hierarchy import Design
from ..dfg.ops import OP_INFO, Operation
from ..dfg.validate import validate_design
from ..dfg.writer import write_design
from ..power.traces import TraceSet, image_traces, speech_traces, white_traces

__all__ = [
    "DEFAULT_OP_WEIGHTS",
    "GenConfig",
    "GeneratedDesign",
    "generate_batch",
    "generate_design",
]

_STIMULUS = {
    "white": white_traces,
    "speech": speech_traces,
    "image": image_traces,
}

#: Default operation mix: adder/multiplier-dominated like the DSP
#: benchmarks, with the rest of the alphabet present at low weight so
#: ALU/comparator/shifter binding paths stay exercised.
DEFAULT_OP_WEIGHTS: tuple[tuple[str, int], ...] = (
    ("add", 6),
    ("sub", 3),
    ("mult", 4),
    ("min", 1),
    ("max", 1),
    ("lt", 1),
    ("gt", 1),
    ("lshift", 1),
    ("rshift", 1),
    ("neg", 1),
    ("pass", 1),
)


@dataclass(frozen=True)
class GenConfig:
    """Shape knobs of the generated-design distribution.

    Ranges are inclusive ``(lo, hi)`` pairs sampled uniformly per
    design.  The config is frozen and built from scalars/tuples only,
    so :meth:`content` is a stable cross-process signature.
    """

    #: Number of distinct sub-behaviors (0 = flat designs).
    n_behaviors: tuple[int, int] = (1, 2)
    #: DFG variants registered per behavior (>1 = anisomorphic modules).
    variants_per_behavior: tuple[int, int] = (1, 2)
    #: Maximum hierarchy depth (1 = flat top level, paper's Figure 1
    #: nesting beyond that).
    hierarchy_depth: int = 2
    #: Simple-operation count per generated DFG body.
    ops_per_dfg: tuple[int, int] = (3, 7)
    #: Primary-input count per generated DFG.
    inputs_per_dfg: tuple[int, int] = (2, 3)
    #: Primary-output count per generated DFG.
    outputs_per_dfg: tuple[int, int] = (1, 2)
    #: Probability that a grown node is a hierarchical call (when any
    #: callable behavior is in scope).
    p_hier: float = 0.35
    #: Probability that an operand is a fresh constant node.
    p_const: float = 0.12
    #: Constant value range (inclusive).
    const_range: tuple[int, int] = (-64, 64)
    #: Bit width of every node in the design.
    width: int = DEFAULT_WIDTH
    #: Weighted operation mix, ``(op name, weight)`` pairs.
    op_weights: tuple[tuple[str, int], ...] = DEFAULT_OP_WEIGHTS
    #: Stimulus family for the paired traces (white/speech/image).
    stimulus: str = "speech"
    #: Samples per primary input in the paired trace set.
    n_samples: int = 16

    def content(self) -> tuple:
        """Stable content tuple (for signatures and manifests)."""
        return tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )


@dataclass
class GeneratedDesign:
    """One generated design plus everything needed to replay it."""

    seed: int
    config: GenConfig
    design: Design
    #: Paired stimulus streams for the top level's primary inputs.
    traces: TraceSet
    #: Byte-exact textual form (``parse_design(text)`` round-trips).
    text: str


@dataclass
class _BehaviorSpec:
    """Callable-behavior summary used while growing DFG bodies."""

    name: str
    n_inputs: int
    n_outputs: int
    #: Hierarchy depth of the behavior's own DFG (1 = leaf).
    depth: int


class _Grower:
    """Grows one DFG body under a shared id counter and RNG."""

    def __init__(self, rng: random.Random, cfg: GenConfig):
        self.rng = rng
        self.cfg = cfg
        self._ops = [Operation.from_name(name) for name, _w in cfg.op_weights]
        self._weights = [w for _name, w in cfg.op_weights]
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _operand(self, dfg: DFG, wires: list[Signal]) -> Signal:
        """A random operand: an existing wire, or a fresh constant."""
        if self.rng.random() < self.cfg.p_const:
            nid = self._fresh("c")
            lo, hi = self.cfg.const_range
            dfg.add_const(nid, self.rng.randint(lo, hi), width=self.cfg.width)
            return (nid, 0)
        return self.rng.choice(wires)

    def grow(
        self,
        dfg: DFG,
        input_ids: list[str],
        n_ops: int,
        n_outputs: int,
        callables: list[_BehaviorSpec],
    ) -> None:
        """Grow a random body over *input_ids* ending in *n_outputs* outputs.

        Every primary input seeds at least one operation; dangling
        results are folded with adders (or duplicated through pass
        stages) until exactly *n_outputs* sinks remain.
        """
        rng, cfg = self.rng, self.cfg
        wires: list[Signal] = [(i, 0) for i in input_ids]
        used: set[Signal] = set()
        sinks: list[Signal] = []
        n_ops = max(n_ops, len(input_ids))
        for k in range(n_ops):
            # Operand 0 of the k-th grown node is pinned to the k-th
            # primary input (when one remains unseeded), *before* random
            # operands are drawn — overriding afterwards would orphan
            # freshly minted constant nodes.
            pinned = (input_ids[k], 0) if k < len(input_ids) else None
            if callables and rng.random() < cfg.p_hier:
                spec = rng.choice(callables)
                operands = [
                    pinned if port == 0 and pinned is not None
                    else self._operand(dfg, wires)
                    for port in range(spec.n_inputs)
                ]
                nid = self._fresh("h")
                dfg.add_hier(
                    nid,
                    spec.name,
                    n_inputs=spec.n_inputs,
                    n_outputs=spec.n_outputs,
                    width=cfg.width,
                )
                results: list[Signal] = [(nid, p) for p in range(spec.n_outputs)]
            else:
                op = rng.choices(self._ops, weights=self._weights, k=1)[0]
                arity = OP_INFO[op].arity
                operands = [
                    pinned if port == 0 and pinned is not None
                    else self._operand(dfg, wires)
                    for port in range(arity)
                ]
                nid = self._fresh("n")
                dfg.add_op(nid, op, width=cfg.width)
                results = [(nid, 0)]
            for port, (src, src_port) in enumerate(operands):
                dfg.connect(src, src_port, nid, port)
            used.update(operands)
            wires.extend(results)
            sinks.extend(results)

        sinks = [w for w in sinks if w not in used]
        if not sinks:
            sinks = [wires[-1]]
        while len(sinks) > n_outputs:
            lhs = sinks.pop(rng.randrange(len(sinks)))
            rhs = sinks.pop()
            nid = self._fresh("n")
            dfg.add_op(nid, Operation.ADD, width=cfg.width)
            dfg.connect(lhs[0], lhs[1], nid, 0)
            dfg.connect(rhs[0], rhs[1], nid, 1)
            sinks.append((nid, 0))
        while len(sinks) < n_outputs:
            src, src_port = rng.choice(wires)
            nid = self._fresh("n")
            dfg.add_op(nid, Operation.PASS, width=cfg.width)
            dfg.connect(src, src_port, nid, 0)
            sinks.append((nid, 0))
        for o_idx, (src, src_port) in enumerate(sinks):
            out = f"o{o_idx}"
            dfg.add_output(out, width=cfg.width)
            dfg.connect(src, src_port, out, 0)


def _derive_variant(base: DFG, name: str, rng: random.Random, width: int) -> DFG:
    """A functionally equivalent but anisomorphic variant of *base*.

    Applies bit-true rewrites while rebuilding the body: commutative
    operand swaps, ``a-b`` → ``a+neg(b)`` (exact under two's-complement
    wrapping), and pass-through stages before outputs.  Primary
    input/output ids and port orders are preserved, so the variant is a
    drop-in implementation of the same behavior.
    """
    dfg = DFG(name, behavior=base.behavior)
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"v{prefix}{counter}"

    sig_map: dict[Signal, Signal] = {}
    for nid in base.topo_order():
        node = base.node(nid)
        if node.kind == NodeKind.INPUT:
            dfg.add_input(nid, width=node.width)
            sig_map[(nid, 0)] = (nid, 0)
        elif node.kind == NodeKind.CONST:
            new = fresh("c")
            dfg.add_const(new, node.value, width=node.width)
            sig_map[(nid, 0)] = (new, 0)
        elif node.kind == NodeKind.OP:
            assert node.op is not None
            operands = [sig_map[e.signal] for e in base.in_edges(nid)]
            if OP_INFO[node.op].commutative and rng.random() < 0.5:
                operands = operands[::-1]
            if node.op == Operation.SUB and rng.random() < 0.5:
                neg = fresh("n")
                dfg.add_op(neg, Operation.NEG, width=node.width)
                dfg.connect(operands[1][0], operands[1][1], neg, 0)
                new = fresh("n")
                dfg.add_op(new, Operation.ADD, width=node.width)
                dfg.connect(operands[0][0], operands[0][1], new, 0)
                dfg.connect(neg, 0, new, 1)
            else:
                new = fresh("n")
                dfg.add_op(new, node.op, width=node.width)
                for port, (src, src_port) in enumerate(operands):
                    dfg.connect(src, src_port, new, port)
            sig_map[(nid, 0)] = (new, 0)
        elif node.kind == NodeKind.HIER:
            assert node.behavior is not None
            new = fresh("h")
            dfg.add_hier(
                new,
                node.behavior,
                n_inputs=node.n_inputs,
                n_outputs=node.n_outputs,
                width=node.width,
            )
            for port, edge in enumerate(base.in_edges(nid)):
                src, src_port = sig_map[edge.signal]
                dfg.connect(src, src_port, new, port)
            for p in range(node.n_outputs):
                sig_map[(nid, p)] = (new, p)
        elif node.kind == NodeKind.OUTPUT:
            (edge,) = base.in_edges(nid)
            src, src_port = sig_map[edge.signal]
            if rng.random() < 0.4:
                stage = fresh("n")
                dfg.add_op(stage, Operation.PASS, width=node.width)
                dfg.connect(src, src_port, stage, 0)
                src, src_port = stage, 0
            dfg.add_output(nid, width=node.width)
            dfg.connect(src, src_port, nid, 0)
    dfg.inputs = list(base.inputs)
    dfg.outputs = list(base.outputs)
    return dfg


def generate_design(seed: int, config: GenConfig | None = None) -> GeneratedDesign:
    """Generate one valid hierarchical design from ``(seed, config)``.

    Deterministic: the same pair yields the same design object graph,
    byte-identical :attr:`GeneratedDesign.text` and identical stimulus
    streams across processes and platforms.
    """
    cfg = config or GenConfig()
    if cfg.stimulus not in _STIMULUS:
        raise ValueError(f"unknown stimulus family {cfg.stimulus!r}")
    rng = random.Random(f"repro.gen:{seed}:{cfg.content()!r}")
    design = Design(f"gen_s{seed}")

    specs: list[_BehaviorSpec] = []
    n_behaviors = rng.randint(*cfg.n_behaviors) if cfg.hierarchy_depth > 1 else 0
    for b_idx in range(n_behaviors):
        name = f"beh{b_idx}"
        n_inputs = rng.randint(*cfg.inputs_per_dfg)
        n_outputs = rng.randint(*cfg.outputs_per_dfg)
        # Callees must leave room for this behavior plus the top level
        # within the configured depth.
        callables = [s for s in specs if s.depth <= cfg.hierarchy_depth - 2]
        grower = _Grower(rng, cfg)
        base = DFG(f"{name}_v0", behavior=name)
        input_ids = [f"i{k}" for k in range(n_inputs)]
        for iid in input_ids:
            base.add_input(iid, width=cfg.width)
        grower.grow(
            base, input_ids, rng.randint(*cfg.ops_per_dfg), n_outputs, callables
        )
        design.add_dfg(base)
        depth = 1 + max(
            (s.depth for s in callables
             for node in base.hier_nodes() if node.behavior == s.name),
            default=0,
        )
        specs.append(_BehaviorSpec(name, n_inputs, n_outputs, depth))
        for v_idx in range(1, rng.randint(*cfg.variants_per_behavior)):
            design.add_dfg(
                _derive_variant(base, f"{name}_v{v_idx}", rng, cfg.width)
            )

    top = DFG("main")
    grower = _Grower(rng, cfg)
    top_inputs = [f"x{k}" for k in range(rng.randint(*cfg.inputs_per_dfg))]
    for iid in top_inputs:
        top.add_input(iid, width=cfg.width)
    callables = [s for s in specs if s.depth <= cfg.hierarchy_depth - 1]
    grower.grow(
        top,
        top_inputs,
        rng.randint(*cfg.ops_per_dfg),
        rng.randint(*cfg.outputs_per_dfg),
        callables,
    )
    design.add_dfg(top, top=True)
    validate_design(design)

    traces = _STIMULUS[cfg.stimulus](
        top, n=cfg.n_samples, seed=seed & 0x7FFFFFFF
    )
    return GeneratedDesign(
        seed=seed,
        config=cfg,
        design=design,
        traces=traces,
        text=write_design(design) + "\n",
    )


def generate_batch(
    base_seed: int, count: int, config: GenConfig | None = None
) -> list[GeneratedDesign]:
    """Generate *count* designs with decorrelated per-design seeds.

    Per-design seeds are drawn from one seeder keyed by *base_seed* (the
    :mod:`benchmarks.fuzz_moves` convention), so any single design
    replays in isolation from the seed printed in a report.
    """
    seeder = random.Random(f"repro.gen.batch:{base_seed}")
    return [
        generate_design(seeder.randrange(1 << 30), config)
        for _ in range(count)
    ]
