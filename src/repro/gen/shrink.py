"""Design shrinking: reduce a failing design to a minimal reproducer.

Given a design and a *predicate* (``True`` = "still exhibits the
failure"), :func:`shrink_design` greedily applies structure-reducing
transformations and keeps every reduction the predicate accepts:

* **drop a variant** — remove a non-default DFG variant of a behavior;
* **bypass a node** — delete one operation/hierarchical node, rewiring
  each of its output ports to one of its own operand signals;
* **drop an output** — remove one primary output of a multi-output DFG.

After every reduction the affected DFG is garbage-collected (computing
nodes no longer reaching an output are removed, recursively) and
behaviors no longer reachable from the top level are dropped, so the
result always passes :func:`~repro.dfg.validate.validate_design`.
Reductions do **not** preserve semantics — the predicate re-runs the
whole failing check, which is what makes the shrunk design a genuine
reproducer.

The predicate is typically expensive (a full synthesis + verification
round), so the search is budgeted by ``max_checks``.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..dfg.graph import DFG, NodeKind, Signal
from ..dfg.hierarchy import Design
from ..dfg.validate import validate_design
from ..errors import ReproError

__all__ = ["shrink_design"]


def _resolve(remap: dict[Signal, Signal], signal: Signal) -> Signal:
    """Follow a substitution chain to its live producing signal."""
    while signal in remap:
        signal = remap[signal]
    return signal


def _rebuild(
    dfg: DFG,
    drop: set[str] = frozenset(),
    remap: dict[Signal, Signal] | None = None,
    drop_outputs: set[str] = frozenset(),
) -> DFG:
    """Copy *dfg* without *drop*/*drop_outputs* nodes, applying *remap*."""
    remap = remap or {}
    clone = DFG(dfg.name, behavior=dfg.behavior)
    for nid in dfg.topo_order():
        if nid in drop or nid in drop_outputs:
            continue
        node = dfg.node(nid)
        if node.kind == NodeKind.INPUT:
            clone.add_input(nid, width=node.width)
            continue
        if node.kind == NodeKind.CONST:
            assert node.value is not None
            clone.add_const(nid, node.value, width=node.width)
            continue
        if node.kind == NodeKind.OP:
            assert node.op is not None
            clone.add_op(nid, node.op, width=node.width)
        elif node.kind == NodeKind.HIER:
            assert node.behavior is not None
            clone.add_hier(
                nid,
                node.behavior,
                n_inputs=node.n_inputs,
                n_outputs=node.n_outputs,
                width=node.width,
            )
        else:
            clone.add_output(nid, width=node.width)
        for edge in dfg.in_edges(nid):
            src, src_port = _resolve(remap, edge.signal)
            clone.connect(src, src_port, nid, edge.dst_port)
    clone.inputs = [i for i in dfg.inputs if i not in drop]
    clone.outputs = [o for o in dfg.outputs if o not in drop_outputs]
    return clone


def _gc(dfg: DFG) -> DFG:
    """Drop computing/const nodes that reach no primary output."""
    live: set[str] = set(dfg.outputs)
    for nid in reversed(dfg.topo_order()):
        if nid in live:
            for edge in dfg.in_edges(nid):
                live.add(edge.src)
    dead = {
        node.node_id
        for node in dfg.nodes()
        if node.node_id not in live
        and node.kind in (NodeKind.OP, NodeKind.HIER, NodeKind.CONST)
    }
    if not dead:
        return dfg
    return _rebuild(dfg, drop=dead)


def _bypass_map(dfg: DFG, nid: str) -> dict[Signal, Signal]:
    """Remap each output port of *nid* onto one of its operand signals."""
    operands = [edge.signal for edge in dfg.in_edges(nid)]
    node = dfg.node(nid)
    return {
        (nid, p): operands[min(p, len(operands) - 1)]
        for p in range(node.n_outputs)
    }


def _with_dfg(design: Design, new_dfg: DFG) -> Design:
    """A new design with *new_dfg* replacing its namesake."""
    reduced = Design(design.name)
    for dfg in design.dfgs():
        reduced.add_dfg(new_dfg if dfg.name == new_dfg.name else dfg.copy())
    reduced.set_top(design.top_name)
    return _prune_behaviors(reduced)


def _without_dfg(design: Design, name: str) -> Design:
    """A new design with the DFG *name* removed."""
    reduced = Design(design.name)
    for dfg in design.dfgs():
        if dfg.name != name:
            reduced.add_dfg(dfg.copy())
    reduced.set_top(design.top_name)
    return _prune_behaviors(reduced)


def _prune_behaviors(design: Design) -> Design:
    """Drop behaviors no longer reachable from the top level."""
    reachable: set[str] = set()
    frontier = [design.top_name]
    keep = {design.top_name}
    while frontier:
        dfg = design.dfg(frontier.pop())
        for node in dfg.hier_nodes():
            assert node.behavior is not None
            if node.behavior in reachable:
                continue
            reachable.add(node.behavior)
            for variant in design.variants(node.behavior):
                keep.add(variant.name)
                frontier.append(variant.name)
    if keep == set(design.dfg_names()):
        return design
    pruned = Design(design.name)
    for dfg in design.dfgs():
        if dfg.name in keep:
            pruned.add_dfg(dfg.copy())
    pruned.set_top(design.top_name)
    return pruned


def _size(design: Design) -> int:
    return sum(len(dfg) for dfg in design.dfgs())


def _reductions(design: Design) -> Iterator[Design]:
    """Candidate reduced designs, cheapest-structural-cut first."""
    # Drop non-default behavior variants.
    for behavior in design.behaviors():
        variants = design.variants(behavior)
        if len(variants) > 1:
            for variant in variants[1:]:
                yield _without_dfg(design, variant.name)
    # Drop one primary output of a multi-output DFG.
    for dfg in design.dfgs():
        if len(dfg.outputs) > 1 and dfg.name == design.top_name:
            for out in dfg.outputs:
                yield _with_dfg(
                    design, _gc(_rebuild(dfg, drop_outputs={out}))
                )
    # Bypass one computing node.
    for dfg in design.dfgs():
        for node in dfg.operation_nodes():
            if not dfg.in_edges(node.node_id):
                continue
            reduced = _gc(
                _rebuild(
                    dfg,
                    drop={node.node_id},
                    remap=_bypass_map(dfg, node.node_id),
                )
            )
            yield _with_dfg(design, reduced)


def shrink_design(
    design: Design,
    predicate: Callable[[Design], bool],
    max_checks: int = 200,
) -> Design:
    """Greedily minimize *design* while *predicate* stays ``True``.

    Only structurally valid reductions are offered to the predicate;
    predicate exceptions count as "reduction rejected" (an unrelated
    crash must not masquerade as the original failure).  Stops at a
    fixpoint or after *max_checks* predicate calls, returning the
    smallest accepted design (possibly the input itself).
    """
    current = design
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _reductions(current):
            if checks >= max_checks:
                break
            if _size(candidate) >= _size(current):
                continue
            try:
                validate_design(candidate)
            except ReproError:
                continue
            checks += 1
            try:
                still_failing = predicate(candidate)
            except Exception:
                still_failing = False
            if still_failing:
                current = candidate
                improved = True
                break
    return current
