"""Corpus materialization: generated designs on disk plus a manifest.

A *corpus* is a directory of textual designs plus ``manifest.json``
describing how each was produced (seed + generator config) and what it
contains (canonical fingerprint, size metrics, stimulus spec).  The
manifest is the hand-off format for the synthesis-service load tests
and cross-design transfer-learning work: fingerprints key learned move
priors, seeds make every entry regenerable without shipping bytes.

Layout::

    corpus/
      manifest.json
      gen_s123.dfg
      gen_s456.dfg
      ...
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..dfg.canonical import design_fingerprint
from .generator import GenConfig, GeneratedDesign, generate_batch

__all__ = [
    "CorpusEntry",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "build_corpus",
    "load_manifest",
    "write_corpus",
]

MANIFEST_NAME = "manifest.json"

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """Manifest record of one generated design."""

    seed: int
    name: str
    #: Design file name, relative to the corpus directory.
    file: str
    #: Iso-invariant fingerprint of the top level, resolved through the
    #: design (:func:`repro.dfg.canonical.design_fingerprint`) — the key
    #: the synthesis store and transfer-learning priors address by.
    fingerprint: str
    #: Simple operations in the fully expanded top level.
    n_ops: int
    #: Hierarchy depth (1 = flat).
    depth: int
    n_dfgs: int
    n_behaviors: int
    #: Stimulus family and length paired with the design.
    stimulus: str
    n_samples: int


def corpus_entry(gen: GeneratedDesign, file: str) -> CorpusEntry:
    """Summarize one generated design as a manifest entry."""
    design = gen.design
    return CorpusEntry(
        seed=gen.seed,
        name=design.name,
        file=file,
        fingerprint=design_fingerprint(design, design.top),
        n_ops=design.total_operations(),
        depth=design.depth(),
        n_dfgs=len(design.dfg_names()),
        n_behaviors=len(design.behaviors()),
        stimulus=gen.config.stimulus,
        n_samples=gen.config.n_samples,
    )


def build_corpus(
    base_seed: int, count: int, config: GenConfig | None = None
) -> list[GeneratedDesign]:
    """Generate a corpus in memory (see :func:`generate_batch`)."""
    return generate_batch(base_seed, count, config)


def write_corpus(
    out_dir: Path | str, generated: list[GeneratedDesign]
) -> Path:
    """Write design files and ``manifest.json``; returns the manifest path.

    Every entry regenerates bit-identically from its recorded seed and
    the manifest's config, so a corpus can be shipped as the manifest
    alone.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    entries: list[CorpusEntry] = []
    config = generated[0].config if generated else GenConfig()
    for gen in generated:
        file = f"{gen.design.name}.dfg"
        (out / file).write_text(gen.text)
        entries.append(corpus_entry(gen, file))
    manifest = {
        "version": MANIFEST_VERSION,
        "config": dict(_config_items(config)),
        "entries": [asdict(entry) for entry in entries],
    }
    path = out / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def _config_items(config: GenConfig) -> list[tuple[str, object]]:
    """JSON-friendly ``(field, value)`` pairs of a generator config."""
    items: list[tuple[str, object]] = []
    for name, value in config.content():
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        items.append((name, value))
    return items


def load_manifest(corpus_dir: Path | str) -> dict:
    """Read and structurally check a corpus manifest."""
    path = Path(corpus_dir) / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported corpus manifest version {manifest.get('version')!r} "
            f"in {path}"
        )
    return manifest
