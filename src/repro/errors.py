"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DFGError(ReproError):
    """Structural problem in a data flow graph (bad port, cycle, arity)."""


class ParseError(ReproError):
    """Malformed textual DFG description.

    Carries the source file name and line number of the offending
    statement when known, rendered as ``file.dfg:4: ...`` (or
    ``line 4: ...`` when the text did not come from a file).
    """

    def __init__(
        self,
        message: str,
        line_no: int | None = None,
        source: str | None = None,
    ):
        self.line_no = line_no
        self.source = source
        if source is not None and line_no is not None:
            message = f"{source}:{line_no}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class LibraryError(ReproError):
    """Problem with the module library (unknown cell, no implementation)."""


class ScheduleError(ReproError):
    """The scheduler could not produce a feasible schedule."""


class SynthesisError(ReproError):
    """The synthesis engine could not produce a valid implementation."""


class EmbeddingError(ReproError):
    """RTL embedding failed (incompatible modules)."""


class VerificationError(ReproError):
    """Differential RTL verification found (or could not run) a check."""


class ServiceError(ReproError):
    """Synthesis-service failure (bad job request, unreachable server,
    job registry problem, or a job that finished in the failed state)."""
