"""repro — reproduction of Lakshminarayana & Jha, DAC 1998.

"Synthesis of Power-Optimized and Area-Optimized Circuits from
Hierarchical Behavioral Descriptions": a hierarchical high-level
synthesis system (the paper calls its implementation *H-SYN*) that maps
hierarchical data flow graphs onto RTL circuits optimized for power or
area under throughput constraints, via variable-depth iterative
improvement over module selection, resynthesis, resource sharing
(including RTL embedding) and resource splitting, with joint clock and
supply-voltage selection and trace-driven power estimation.

Quick start::

    from repro.bench_suite import get_benchmark
    from repro.synthesis import synthesize

    design = get_benchmark("dct")
    result = synthesize(design, laxity_factor=2.2, objective="power")
    print(result.area, result.power, result.vdd)

Package map: :mod:`repro.dfg` (hierarchical DFGs), :mod:`repro.library`
(cells + characterization), :mod:`repro.power` (traces, simulation,
activity, estimation), :mod:`repro.scheduling`, :mod:`repro.rtl`
(netlists, modules, embedding, FSM), :mod:`repro.synthesis` (the
algorithm), :mod:`repro.bench_suite` (Table 3 circuits),
:mod:`repro.reporting` (table regeneration).
"""

from .errors import (
    DFGError,
    EmbeddingError,
    LibraryError,
    ParseError,
    ReproError,
    ScheduleError,
    SynthesisError,
)

__version__ = "1.0.0"

__all__ = [
    "DFGError",
    "EmbeddingError",
    "LibraryError",
    "ParseError",
    "ReproError",
    "ScheduleError",
    "SynthesisError",
    "__version__",
]
