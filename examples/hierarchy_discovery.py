"""Recovering hierarchy from a flattened description (subproblem (i)).

The paper synthesizes *given* a hierarchy; its introduction notes that
deriving the hierarchy from a flattened behavioral description is the
complementary subproblem.  This example flattens the lattice filter,
throws the hierarchy away, rediscovers it with convex clustering +
isomorphism folding, and shows that synthesis from the rediscovered
hierarchy is again fast.

    python examples/hierarchy_discovery.py
"""

from repro.bench_suite import get_benchmark
from repro.dfg import flatten, hierarchize, validate_design
from repro.reporting import quick_config
from repro.synthesis import synthesize, synthesize_flat


def main() -> None:
    original = get_benchmark("lat")
    flat = flatten(original)
    print(
        f"original hierarchy: {len(original.top.hier_nodes())} nodes over "
        f"{len(set(n.behavior for n in original.top.hier_nodes()))} behaviors; "
        f"flattened: {len(flat.op_nodes())} operations"
    )

    derived = hierarchize(flat, max_cluster_size=4)
    validate_design(derived)
    hier_nodes = derived.top.hier_nodes()
    behaviors = {n.behavior for n in hier_nodes}
    print(
        f"rediscovered:      {len(hier_nodes)} nodes over "
        f"{len(behaviors)} behaviors "
        f"(isomorphic clusters folded onto shared behaviors)"
    )
    for behavior in sorted(behaviors):
        count = sum(1 for n in hier_nodes if n.behavior == behavior)
        size = len(derived.default_variant(behavior).op_nodes())
        print(f"  {behavior}: {count} instances, {size} operations each")

    config = quick_config()
    flat_run = synthesize_flat(
        original, laxity_factor=2.2, objective="area", config=config
    )
    derived_run = synthesize(
        derived, laxity_factor=2.2, objective="area", config=config
    )
    print(
        f"\nsynthesis from flat:       area={flat_run.area:7.1f} "
        f"in {flat_run.elapsed_s:.1f} s"
    )
    print(
        f"synthesis from rediscovered hierarchy: area={derived_run.area:7.1f} "
        f"in {derived_run.elapsed_s:.1f} s"
    )


if __name__ == "__main__":
    main()
