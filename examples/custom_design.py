"""Bringing your own behavior: builder API, textual format, synthesis.

Shows the full user workflow for a design that is not in the benchmark
suite: construct a hierarchical DFG with :class:`GraphBuilder` (a
complex-multiply block reused twice), register two functionally
equivalent variants of the block, round-trip the design through the
textual format, and synthesize it.

    python examples/custom_design.py
"""

from repro.dfg import Design, GraphBuilder, parse_design, write_design
from repro.synthesis import SynthesisConfig, synthesize


def complex_mult_4m() -> "GraphBuilder":
    """(a+jb)(c+jd) with the schoolbook 4-multiplication structure."""
    b = GraphBuilder("cmult_4m", behavior="cmult")
    ar, ai, br, bi = b.inputs("ar", "ai", "br", "bi")
    b.output("re", b.sub(b.mult(ar, br), b.mult(ai, bi)))
    b.output("im", b.add(b.mult(ar, bi), b.mult(ai, br)))
    return b.build()


def complex_mult_3m() -> "GraphBuilder":
    """The Karatsuba-style 3-multiplication variant (same behavior).

    re = ar*br - ai*bi;  im = (ar + ai)(br + bi) - ar*br - ai*bi.
    Fewer multipliers, more adders, longer critical path — exactly the
    kind of anisomorphic alternative move A likes to have around.
    """
    b = GraphBuilder("cmult_3m", behavior="cmult")
    ar, ai, br, bi = b.inputs("ar", "ai", "br", "bi")
    p1 = b.mult(ar, br, name="p1")
    p2 = b.mult(ai, bi, name="p2")
    p3 = b.mult(b.add(ar, ai), b.add(br, bi), name="p3")
    b.output("re", b.sub(p1, p2))
    b.output("im", b.sub(b.sub(p3, p1), p2))
    return b.build()


def main() -> None:
    design = Design("mixer")
    design.add_dfg(complex_mult_4m())
    design.add_dfg(complex_mult_3m())

    top = GraphBuilder("mixer_top")
    xr, xi, cr, ci, gain = top.inputs("xr", "xi", "cr", "ci", "gain")
    mixed = top.hier("cmult", xr, xi, cr, ci, n_outputs=2, name="mix")
    scaled_r = top.mult(mixed[0], gain, name="gr")
    scaled_i = top.mult(mixed[1], gain, name="gi")
    top.output("yr", scaled_r)
    top.output("yi", scaled_i)
    design.add_dfg(top.build(), top=True)

    # Round-trip through the textual format H-SYN-style tools read.
    text = write_design(design)
    print("textual description (excerpt):")
    print("\n".join(text.splitlines()[:14]))
    print("...\n")
    design = parse_design(text)

    config = SynthesisConfig(max_moves=8, max_passes=3)
    for objective in ("area", "power"):
        result = synthesize(
            design, laxity_factor=2.0, objective=objective, config=config
        )
        picked = {
            inst.type_name
            for inst in result.solution.instances.values()
            if inst.is_module
        }
        print(
            f"{objective:5s}-optimized: area={result.area:7.1f} "
            f"power={result.power:6.3f} Vdd={result.vdd} V  "
            f"complex modules used: {sorted(picked)}"
        )


if __name__ == "__main__":
    main()
