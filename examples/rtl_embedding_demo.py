"""RTL embedding walk-through (the paper's Example 3 / Table 2).

Maps two different DFGs onto RTL modules, overlays them with the
embedding procedure into one module that can execute both behaviors,
and prints the component-correspondence table plus the area story
(merged ≈ the larger constituent, far below the sum).

    python examples/rtl_embedding_demo.py
"""

from repro.bench_suite import example3_dfg1, example3_dfg2, table2_library
from repro.dfg import Design
from repro.power import simulate_subgraph, speech_traces
from repro.reporting import render_table
from repro.rtl import ComponentKind, embed_netlists, naive_union
from repro.synthesis import SynthesisEnv, build_netlist, initial_solution


def build_rtl(design: Design, dfg, library, name: str):
    """Synthesize one DFG into a datapath netlist (fastest binding)."""
    traces = speech_traces(dfg, n=24, seed=0)
    sim = simulate_subgraph(design, dfg, [traces[n] for n in dfg.inputs])
    env = SynthesisEnv(design, library, "area")
    solution = initial_solution(env, dfg, sim, 10.0, 5.0, 1000.0)
    return build_netlist(solution, name=name)


def main() -> None:
    library = table2_library()
    dfg1, dfg2 = example3_dfg1(), example3_dfg2()
    design = Design("ex3")
    design.add_dfg(dfg1, top=True)
    design.add_dfg(dfg2)

    rtl1 = build_rtl(design, dfg1, library, "RTL1")
    rtl2 = build_rtl(design, dfg2, library, "RTL2")
    merged = embed_netlists(rtl1, rtl2, "NewRTL")
    union = naive_union(rtl1, rtl2, "Union")

    print("Component correspondence (the paper's Table 2):\n")
    reverse_b = {v: k for k, v in merged.map_b.items()}
    rows = []
    for comp in merged.netlist.components():
        if comp.kind == ComponentKind.PORT:
            continue
        rows.append(
            [
                comp.comp_id,
                comp.comp_id if rtl1.has_component(comp.comp_id) else "-",
                reverse_b.get(comp.comp_id, "-"),
                comp.cell,
                library.cell(comp.cell).area,
            ]
        )
    rows.sort(key=lambda r: (r[3], r[0]))
    print(
        render_table(
            ["NewRTL", "RTL1", "RTL2", "Library", "Area"], rows, digits=0
        )
    )

    a1 = rtl1.area(library)
    a2 = rtl2.area(library)
    print(
        f"\nareas: RTL1 = {a1:.2f}, RTL2 = {a2:.2f}, "
        f"NewRTL = {merged.netlist.area(library):.2f} "
        f"(naive union would be {union.netlist.area(library):.2f})"
    )
    print(
        f"embedding shares {merged.shared_components} components and "
        f"{merged.shared_connections} wires between the two behaviors"
    )


if __name__ == "__main__":
    main()
