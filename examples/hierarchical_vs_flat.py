"""Hierarchical vs flattened synthesis on a large cascade filter.

The paper's central comparison: the same behavior synthesized from its
hierarchical description (with a pre-built complex-module library, the
paper's Figure 2 analogue) and from the fully flattened DFG.  The
hierarchical run should land close in quality at a fraction of the
synthesis time.

    python examples/hierarchical_vs_flat.py
"""

from repro.bench_suite import get_benchmark
from repro.dfg import flatten
from repro.library import default_library
from repro.reporting import quick_config, render_table
from repro.synthesis import synthesize, synthesize_flat
from repro.synthesis.library_gen import build_complex_library


def main() -> None:
    design = get_benchmark("avenhaus_cascade")
    flat = flatten(design)
    print(
        f"{design.name}: {len(design.top.hier_nodes())} hierarchical nodes, "
        f"{len(flat.op_nodes())} operations when flattened"
    )

    config = quick_config()
    print("building the complex-module library (offline step)...")
    hier_lib = build_complex_library(design, default_library(), config=config)
    print(f"  {hier_lib.n_complex_modules()} complex modules registered")

    rows = []
    for objective in ("area", "power"):
        flat_result = synthesize_flat(
            design,
            default_library(),
            laxity_factor=2.2,
            objective=objective,
            config=config,
        )
        hier_result = synthesize(
            design, hier_lib, laxity_factor=2.2, objective=objective,
            config=config,
        )
        rows.append(
            [
                objective,
                "flattened",
                flat_result.area,
                flat_result.power,
                flat_result.elapsed_s,
            ]
        )
        rows.append(
            [
                "",
                "hierarchical",
                hier_result.area,
                hier_result.power,
                hier_result.elapsed_s,
            ]
        )

    print()
    print(
        render_table(
            ["objective", "mode", "area", "power", "synthesis time (s)"],
            rows,
            title="Hierarchical vs flattened synthesis (L.F. = 2.2)",
        )
    )


if __name__ == "__main__":
    main()
