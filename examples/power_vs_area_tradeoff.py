"""The power/area/throughput trade-off on one DSP kernel.

Sweeps the laxity factor (the paper's throughput knob) on the IIR
cascade and prints the frontier: as slack grows, the power-optimized
circuit scales its supply down and its power collapses, while the
area-optimized circuit uses the slack for deeper resource sharing.

    python examples/power_vs_area_tradeoff.py
"""

from repro.bench_suite import get_benchmark
from repro.reporting import render_table
from repro.synthesis import SynthesisConfig, synthesize, voltage_scale

LAXITIES = (1.2, 1.7, 2.2, 3.2)


def main() -> None:
    design = get_benchmark("iir")
    config = SynthesisConfig(max_moves=8, max_passes=3, n_clocks=1)

    rows = []
    for laxity in LAXITIES:
        area_opt = synthesize(
            design, laxity_factor=laxity, objective="area", config=config
        )
        scaled = voltage_scale(area_opt, continuous=True)
        power_opt = synthesize(
            design, laxity_factor=laxity, objective="power", config=config
        )
        rows.append(
            [
                laxity,
                area_opt.area,
                area_opt.power,
                scaled.vdd,
                scaled.power,
                power_opt.area,
                power_opt.power,
                power_opt.vdd,
            ]
        )

    print(
        render_table(
            [
                "L.F.",
                "A-opt area",
                "A-opt power @5V",
                "scaled Vdd",
                "scaled power",
                "P-opt area",
                "P-opt power",
                "P-opt Vdd",
            ],
            rows,
            title=f"Power/area frontier of {design.name}",
        )
    )

    first, last = rows[0], rows[-1]
    print(
        f"\nfrom L.F. {first[0]} to {last[0]}: power-optimized power drops "
        f"{first[6] / last[6]:.1f}x while area-optimized area drops "
        f"{first[1] / last[1]:.2f}x"
    )


if __name__ == "__main__":
    main()
