"""Quickstart: synthesize a hierarchical DCT for power and for area.

Runs the paper's core flow on the 8-point DCT benchmark and prints the
synthesized architectures plus a taste of the emitted RTL.

    python examples/quickstart.py
"""

from repro.bench_suite import get_benchmark
from repro.rtl import emit_controller, emit_netlist
from repro.synthesis import SynthesisConfig, synthesize, voltage_scale


def main() -> None:
    design = get_benchmark("dct")
    print(
        f"design: {design.name}, hierarchy depth {design.depth()}, "
        f"{design.total_operations()} operations when flattened"
    )

    config = SynthesisConfig(max_moves=8, max_passes=3, n_clocks=1)

    # Area-optimized at 5 V (then voltage-scaled), and power-optimized.
    area_opt = synthesize(
        design, laxity_factor=2.2, objective="area", config=config
    )
    area_scaled = voltage_scale(area_opt, continuous=True)
    power_opt = synthesize(
        design, laxity_factor=2.2, objective="power", config=config
    )

    print("\n--- results ------------------------------------------------")
    for tag, result in [
        ("area-optimized @5V", area_opt),
        ("  ... voltage-scaled", area_scaled),
        ("power-optimized", power_opt),
    ]:
        print(
            f"{tag:24s} area={result.area:8.1f}  power={result.power:7.3f}  "
            f"Vdd={result.vdd:4.2f} V  clk={result.clk_ns:5.2f} ns  "
            f"schedule={result.solution.schedule().length} cycles  "
            f"synthesis={result.elapsed_s:.1f} s"
        )
    ratio = power_opt.power / area_opt.power
    print(
        f"\npower-optimized consumes {ratio:.2f}x the power of the 5 V "
        f"area-optimized circuit ({1 / ratio:.1f}x reduction)"
    )

    print("\n--- emitted RTL (first lines) -------------------------------")
    netlist_text = emit_netlist(power_opt.netlist())
    print("\n".join(netlist_text.splitlines()[:12]))
    print("...")
    fsm_text = emit_controller(power_opt.controller())
    print("\n".join(fsm_text.splitlines()[:8]))
    print("...")


if __name__ == "__main__":
    main()
