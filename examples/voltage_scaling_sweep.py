"""Joint Vdd selection: how supply voltage shapes the design space.

Synthesizes the lattice filter at each library supply voltage and shows
the energy/delay mechanics the paper's outer loop explores: lower
supplies slash energy quadratically but stretch every cell, so the
schedule must absorb the slowdown.  Also demonstrates post-synthesis
continuous voltage scaling of an area-optimized circuit ("to just meet
the sampling period", Table 4).

    python examples/voltage_scaling_sweep.py
"""

from repro.bench_suite import get_benchmark
from repro.library import SUPPLY_VOLTAGES, delay_scale, energy_scale
from repro.reporting import render_table
from repro.synthesis import SynthesisConfig, synthesize, voltage_scale


def main() -> None:
    print("first-order CMOS scaling relative to 5 V:")
    print(
        render_table(
            ["Vdd (V)", "delay x", "energy x"],
            [[v, delay_scale(v), energy_scale(v)] for v in SUPPLY_VOLTAGES],
        )
    )

    design = get_benchmark("lat")
    config = SynthesisConfig(max_moves=8, max_passes=3, n_clocks=1)

    print("\npower-optimized synthesis across laxity factors:")
    rows = []
    for laxity in (1.2, 2.2, 3.2, 4.5):
        result = synthesize(
            design, laxity_factor=laxity, objective="power", config=config
        )
        rows.append(
            [
                laxity,
                result.vdd,
                result.clk_ns,
                result.solution.schedule().length,
                result.area,
                result.power,
            ]
        )
    print(
        render_table(
            ["L.F.", "chosen Vdd", "clk (ns)", "cycles", "area", "power"],
            rows,
        )
    )
    print("-> more slack lets the optimizer buy power with voltage.")

    print("\npost-synthesis scaling of one area-optimized circuit:")
    area_opt = synthesize(
        design, laxity_factor=3.2, objective="area", config=config
    )
    discrete = voltage_scale(area_opt)
    continuous = voltage_scale(area_opt, continuous=True)
    print(
        render_table(
            ["variant", "Vdd (V)", "power"],
            [
                ["as synthesized (5 V)", area_opt.vdd, area_opt.power],
                ["discrete scaling", discrete.vdd, discrete.power],
                ["continuous (just meets period)", continuous.vdd,
                 continuous.power],
            ],
        )
    )


if __name__ == "__main__":
    main()
