#!/usr/bin/env python3
"""CI smoke test for the synthesis job server (``repro serve``).

Boots the real server as a subprocess (process-pool workers, ephemeral
port), pushes one small generated design through the documented flow —
submit with differential verification and search tracing, poll to
completion, fetch the result — and checks every step:

* the ready line announces the bound URL;
* the job completes ``done`` with a passing verification verdict;
* a resubmission is answered from the persistent store with
  byte-identical result JSON;
* the job's search-trace artifact exists and is valid JSONL.

Exits nonzero (with the server's stderr) on any failure.  The job
trace is left at ``<state-dir>/jobs/<job_id>.trace.jsonl`` for CI to
upload; its path is printed on the last line.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--state-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--state-dir", type=Path,
                        default=Path(".repro-service-smoke"),
                        help="service cache/registry directory")
    parser.add_argument("--gen-seed", type=int, default=5,
                        help="seeded generated design to synthesize")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for the job")
    args = parser.parse_args()

    from repro.service import ServiceClient

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(args.state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        ready = server.stdout.readline()
        match = re.search(r"http://\S+", ready)
        if not match:
            err = server.stderr.read() if server.poll() is not None else ""
            print(f"FAIL: no ready line from repro serve: {ready!r}\n{err}",
                  file=sys.stderr)
            return 1
        url = match.group(0)
        print(f"server ready at {url}")
        client = ServiceClient(url)

        request = {"gen_seed": args.gen_seed, "laxity_factor": 2.0,
                   "samples": 16, "verify": True, "trace": True}
        receipt = client.submit(request)
        print(f"submitted job {receipt['job_id']} ({receipt['state']})")
        final = client.wait(receipt["job_id"], timeout_s=args.timeout)
        if final["state"] != "done":
            print(f"FAIL: job ended {final['state']}: {final['error']}",
                  file=sys.stderr)
            return 1
        result = client.result(receipt["job_id"])["result"]
        verification = result.get("verification")
        if not (verification and verification.get("ok")):
            print(f"FAIL: verification verdict missing or failing: "
                  f"{verification}", file=sys.stderr)
            return 1
        print(f"job done: area {result['area']}, power {result['power']}, "
              f"verified over {verification['n_samples']} samples")

        repeat = client.submit(request)
        if not repeat["served_from_store"]:
            print("FAIL: resubmission was not served from the store",
                  file=sys.stderr)
            return 1
        repeat_result = client.result(repeat["job_id"])["result"]
        if json.dumps(result, sort_keys=True) != \
                json.dumps(repeat_result, sort_keys=True):
            print("FAIL: store-served repeat differs from original result",
                  file=sys.stderr)
            return 1
        print("store-served repeat is byte-identical")

        trace_path = (args.state_dir / "jobs"
                      / f"{receipt['job_id']}.trace.jsonl")
        if not trace_path.exists():
            print(f"FAIL: trace artifact missing at {trace_path}",
                  file=sys.stderr)
            return 1
        events = trace_path.read_text().splitlines()
        for line in events:
            json.loads(line)
        print(f"trace artifact OK ({len(events)} events)")

        stats = client.stats()["counters"]
        print(f"counters: {json.dumps(stats, sort_keys=True)}")
        if stats["synth_runs"] != 1 or stats["store_hits"] != 1:
            print("FAIL: expected exactly one synthesis run and one "
                  "store hit", file=sys.stderr)
            return 1

        print(f"TRACE_ARTIFACT={trace_path}")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
