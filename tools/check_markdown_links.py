#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked ``*.md`` file (repository root, ``docs/`` and other
top-level directories), extracts inline markdown links and validates
the relative ones against the filesystem.  External links (http/https/
mailto) are only syntax-checked — CI must stay hermetic.

Usage::

    python tools/check_markdown_links.py [root]

Exits nonzero listing every broken link.  The doc-sync test
(``tests/integration/test_doc_sync.py``) runs the same check in-process.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository and are not checked.
_EXTERNAL = ("http://", "https://", "mailto:")

#: Directories never scanned for markdown.
_SKIP_DIRS = {".git", ".venv", "__pycache__", "node_modules",
              ".pytest_cache", "results"}


def markdown_files(root: Path) -> list[Path]:
    """Every markdown file under *root*, skipping vendored/cache dirs."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            files.append(path)
    return files


def links_in(path: Path) -> list[str]:
    """All inline link targets in one markdown file."""
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain [x](y)-shaped non-links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return _LINK.findall(text)


def broken_links(root: Path) -> list[str]:
    """Human-readable ``file: target`` entries for every broken link."""
    problems: list[str] = []
    for md in markdown_files(root):
        for target in links_in(md):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (md.parent / relative).resolve()
            if not resolved.exists():
                problems.append(f"{md.relative_to(root)}: {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[1]
    problems = broken_links(root)
    n_files = len(markdown_files(root))
    if problems:
        print(f"broken markdown links ({len(problems)}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"markdown links OK ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
