"""Batched activity kernel: throughput vs. the pre-batching engine.

PR 6 turned per-request switching-activity extraction into a batched
kernel (``repro.power.activity.batch_activities``) and restructured
candidate pricing so every activity-key miss across a KL round's
candidate set is resolved through one kernel call
(``EvaluationContext.evaluate_batch``).  This bench measures what that
buys and pins that it changed nothing else:

* **kernel microbenchmark** — resolve one realistic request set through
  the batched kernel vs. one scalar call per request, cold caches both
  sides, asserting bit-identical floats.  This isolates the NumPy
  dispatch overhead the batch amortizes.
* **pricing race** — check the pre-batching parent revision out into a
  scratch git worktree and run the identical improvement workload
  (``benchmarks/_pricing_runner.py``) against both trees, interleaved,
  best-of-``_ROUNDS``.  Both engines walk the bit-identical search
  trajectory (asserted via final area/power and the dispositioned
  count), so the pricing-time ratio is the throughput ratio.  The gate
  requires ≥ ``_SPEEDUP_TARGET``x on every raced circuit.

Writes ``benchmarks/results/BENCH_6.json``; the CI perf-smoke job
uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.power import (
    batch_activities,
    interleaved_activity,
    reset_activity_caches,
)

from conftest import RESULTS_DIR, save_result

CIRCUITS = ("paulin", "test1")
_N_TRACES = 256  # stream length: enough that pricing dominates setup
_ROUNDS = 6  # best-of timing rounds per revision
_SPEEDUP_TARGET = 3.0  # required on every raced circuit

#: Kernel microbenchmark shape: a KL round's worth of activity misses.
_KERNEL_REQUESTS = 192
_KERNEL_STREAMS = 48
_KERNEL_SAMPLES = 256
_KERNEL_REPEATS = 5

#: The commit this PR stacks on: the last revision that resolved every
#: activity request with a scalar kernel call.  Pinned (not ``HEAD~1``)
#: so the baseline stays meaningful when later PRs stack on top.
_SEED_COMMIT = "56761849f197881f118f9c36c30a254a21190183"

_REPO_ROOT = Path(__file__).resolve().parent.parent
_RUNNER = Path(__file__).parent / "_pricing_runner.py"
_WORKTREE = _REPO_ROOT / ".bench_prebatch_worktree"


def _git(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *argv], cwd=_REPO_ROOT, capture_output=True, text=True
    )


def _make_seed_worktree() -> Path:
    if _WORKTREE.exists():
        _git("worktree", "remove", "--force", str(_WORKTREE))
    proc = _git("worktree", "add", "--detach", str(_WORKTREE), _SEED_COMMIT)
    if proc.returncode != 0:
        pytest.skip(
            f"cannot create pre-batching worktree at {_SEED_COMMIT[:12]}: "
            + proc.stderr.strip()
        )
    return _WORKTREE


def _drop_seed_worktree() -> None:
    _git("worktree", "remove", "--force", str(_WORKTREE))


def _kernel_micro() -> dict:
    """Batched vs scalar resolution of one synthetic request set."""
    rng = np.random.default_rng(6)
    streams = [
        rng.integers(-(1 << 15), 1 << 15, size=_KERNEL_SAMPLES)
        for _ in range(_KERNEL_STREAMS)
    ]
    requests = []
    for i in range(_KERNEL_REQUESTS):
        k = 1 + (i % 4)  # mix of dedicated and 2-4-way shared buses
        group = tuple(streams[(i * 7 + j) % _KERNEL_STREAMS] for j in range(k))
        requests.append((group, 16))

    batched_s = scalar_s = float("inf")
    batched = scalar = None
    for _ in range(_KERNEL_REPEATS):
        reset_activity_caches()
        t0 = time.perf_counter()
        batched = batch_activities(requests)
        batched_s = min(batched_s, time.perf_counter() - t0)
        reset_activity_caches()
        t0 = time.perf_counter()
        scalar = [
            interleaved_activity(list(group), width)
            for group, width in requests
        ]
        scalar_s = min(scalar_s, time.perf_counter() - t0)
    reset_activity_caches()
    assert batched == scalar, "batched kernel diverged from scalar path"
    return {
        "requests": _KERNEL_REQUESTS,
        "samples": _KERNEL_SAMPLES,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def _run_pricing(tree: Path, circuit: str) -> dict:
    proc = subprocess.run(
        [sys.executable, str(_RUNNER), circuit, str(_N_TRACES)],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(tree / "src")},
    )
    assert proc.returncode == 0, (
        f"pricing runner failed against {tree}:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


def _race(circuit: str, seed_tree: Path) -> dict:
    """Best-of-``_ROUNDS`` interleaved pricing race on one circuit."""
    current, seed = [], []
    for _ in range(_ROUNDS):
        new = _run_pricing(_REPO_ROOT, circuit)
        old = _run_pricing(seed_tree, circuit)
        # Bit-identical trajectory or the timing comparison is void.
        assert (new["area"], new["power"], new["dispositioned"]) == (
            old["area"], old["power"], old["dispositioned"]
        ), f"engines diverged on {circuit}: {new} vs {old}"
        current.append(new)
        seed.append(old)
    new_s = min(r["pricing_s"] for r in current)
    old_s = min(r["pricing_s"] for r in seed)
    n = current[0]["dispositioned"]
    return {
        "dispositioned": n,
        "evals": current[0]["evals"],
        "pruned": current[0]["pruned"],
        "prebatch_s": old_s,
        "prebatch_per_s": n / old_s,
        "batched_s": new_s,
        "batched_per_s": n / new_s,
        "speedup": old_s / new_s,
    }


def test_batched_activity_throughput():
    kernel = _kernel_micro()
    seed_tree = _make_seed_worktree()
    try:
        races = {circuit: _race(circuit, seed_tree) for circuit in CIRCUITS}
    finally:
        _drop_seed_worktree()

    snapshot = {
        "bench": "activity_batch",
        "pr": 6,
        "seed_commit": _SEED_COMMIT,
        "n_traces": _N_TRACES,
        "rounds": _ROUNDS,
        "kernel": kernel,
        "pricing": races,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_6.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "Batched activity kernel vs pre-batching engine",
        f"(baseline = {_SEED_COMMIT[:12]}, {_N_TRACES} trace samples, "
        f"best of {_ROUNDS})",
        "=================================================================",
        f"kernel:  {kernel['requests']} requests x "
        f"{kernel['samples']} samples: "
        f"{kernel['scalar_s'] * 1e3:.1f} ms scalar -> "
        f"{kernel['batched_s'] * 1e3:.1f} ms batched "
        f"({kernel['speedup']:.1f}x), results bit-identical",
    ]
    for circuit, m in races.items():
        lines.append(
            f"{circuit:8s} {m['dispositioned']:4d} candidates "
            f"({m['pruned']} pruned): "
            f"{m['prebatch_per_s']:.0f}/s pre-batching -> "
            f"{m['batched_per_s']:.0f}/s batched "
            f"({m['speedup']:.2f}x)"
        )
    save_result("activity_batch", "\n".join(lines))

    slow = {c: m["speedup"] for c, m in races.items()
            if m["speedup"] < _SPEEDUP_TARGET}
    assert not slow, (
        f"expected >= {_SPEEDUP_TARGET}x pricing throughput on every "
        "circuit, got "
        + ", ".join(f"{c}: {m['speedup']:.2f}x" for c, m in races.items())
    )
