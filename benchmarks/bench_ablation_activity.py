"""Ablation 3: trace-driven activity vs a constant-activity power model.

The paper's estimator is trace-driven because resource sharing changes
switching activity (Section 3 / ref. [9]).  A constant-activity model
assigns the same toggle rate to shared and dedicated units, hiding the
sharing penalty.  This bench quantifies what the constant model misses:
on correlated (speech-like) stimuli, the measured interleaved activity
of a shared multiplier exceeds the dedicated activity by a margin the
constant model reports as exactly zero.
"""

import numpy as np
import pytest

from repro.bench_suite import get_benchmark
from repro.power import (
    default_traces,
    interleaved_activity,
    simulate_subgraph,
    speech_traces,
    stream_activity,
    white_traces,
)
from repro.reporting import render_table

from conftest import save_result


@pytest.fixture(scope="module")
def mult_streams():
    """Operand streams of the six multiplications of flattened test1."""
    from repro.dfg import Operation, flatten

    design = get_benchmark("test1")
    flat = flatten(design)
    out = {}
    for gen, tag in ((speech_traces, "speech"), (white_traces, "white")):
        traces = gen(flat, n=96, seed=2)
        from repro.dfg import Design

        wrapper = Design("w")
        wrapper.add_dfg(flat, top=True)
        sim = simulate_subgraph(wrapper, flat, [traces[n] for n in flat.inputs])
        streams = []
        for node in flat.op_nodes():
            if node.op == Operation.MULT:
                streams.append(
                    [sim.stream((), e.signal) for e in flat.in_edges(node.node_id)]
                )
        out[tag] = streams
    return out


def _sharing_penalty(streams) -> float:
    """Interleaved minus mean dedicated activity over the first operand."""
    port0 = [s[0] for s in streams]
    dedicated = float(np.mean([stream_activity(s, 16) for s in port0]))
    shared = interleaved_activity(port0, 16)
    return shared - dedicated


def test_constant_model_hides_sharing_penalty(benchmark, mult_streams):
    speech_penalty = benchmark(_sharing_penalty, mult_streams["speech"])
    white_penalty = _sharing_penalty(mult_streams["white"])
    constant_model_penalty = 0.0  # by definition

    save_result(
        "ablation_activity",
        render_table(
            ["model / stimulus", "sharing activity penalty"],
            [
                ["trace-driven, speech-like", speech_penalty],
                ["trace-driven, white", white_penalty],
                ["constant-activity model", constant_model_penalty],
            ],
            title="Ablation: what a constant-activity power model misses",
            digits=3,
        ),
    )

    # The penalty is real under correlated stimuli...
    assert speech_penalty > 0.02
    # ...and the trace-driven model resolves stimulus differences the
    # constant model cannot (white data starts near saturation).
    assert speech_penalty != pytest.approx(constant_model_penalty, abs=1e-3)
