"""Candidate-pricing throughput: seed engine vs. incremental engine.

The KL inner loop spends most of its time pricing candidate moves.  PR 4
replaced the always-from-scratch evaluation with delta pricing against a
per-term breakdown of the current solution (see
``src/repro/synthesis/incremental.py``) plus dominance/feasibility
pruning before pricing, schedule memoization, and identity-keyed
activity caches.  This bench measures what all of that buys:

* **microbenchmark** — check the PR's parent commit out into a scratch
  git worktree and run the identical improvement workload
  (``benchmarks/_pricing_runner.py``) against both trees, interleaved,
  best-of-``_ROUNDS``.  Both engines walk the bit-identical search
  trajectory (asserted via final area/power and the number of
  dispositioned candidates), so the pricing-time ratio *is* the
  candidate-throughput ratio.  Comparing against the real parent
  revision — rather than this tree with ``--no-incremental`` — keeps
  the baseline honest: generic hot-path optimizations (netlist bulk
  build, activity memos) speed the flag-off mode up too and would
  otherwise hide in the ratio.
* **end-to-end** — full power-objective synthesis of ``test1`` with the
  incremental engine on vs. off; results must be bit-identical, and the
  incremental run must not be slower than 1.25x the non-incremental run
  (the CI perf-smoke gate).

Writes ``benchmarks/results/BENCH_4.json`` with the raw numbers; the CI
perf-smoke job uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.reporting import quick_config
from repro.synthesis import synthesize

from conftest import RESULTS_DIR, save_result

CIRCUITS = ("paulin", "dct", "test1")
_LAXITY = 2.2
_N_TRACES = 256  # stream length: enough that pricing dominates setup
_ROUNDS = 3  # best-of timing rounds per revision
_SPEEDUP_TARGET = 2.0  # required on >= _SPEEDUP_MIN_CIRCUITS circuits
_SPEEDUP_MIN_CIRCUITS = 2
_E2E_REGRESSION_LIMIT = 1.25  # incremental may cost at most 25% extra

#: The commit this PR stacks on: the last revision whose evaluator
#: priced every candidate from scratch.  Pinned (not ``HEAD~1``) so the
#: baseline stays meaningful when later PRs stack on top.
_SEED_COMMIT = "56761849f197881f118f9c36c30a254a21190183"

_REPO_ROOT = Path(__file__).resolve().parent.parent
_RUNNER = Path(__file__).parent / "_pricing_runner.py"
_WORKTREE = _REPO_ROOT / ".bench_seed_worktree"


def _git(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *argv], cwd=_REPO_ROOT, capture_output=True, text=True
    )


def _make_seed_worktree() -> Path:
    """Check the seed revision out into a scratch worktree (or skip)."""
    if _WORKTREE.exists():
        _git("worktree", "remove", "--force", str(_WORKTREE))
    proc = _git("worktree", "add", "--detach", str(_WORKTREE), _SEED_COMMIT)
    if proc.returncode != 0:
        # Shallow clone, missing object, or no git at all: the e2e
        # section still runs, but there is no honest seed to race.
        pytest.skip(
            f"cannot create seed worktree at {_SEED_COMMIT[:12]}: "
            + proc.stderr.strip()
        )
    return _WORKTREE


def _drop_seed_worktree() -> None:
    _git("worktree", "remove", "--force", str(_WORKTREE))


def _run_pricing(tree: Path, circuit: str) -> dict:
    """One improvement run of *circuit* against the engine in *tree*."""
    proc = subprocess.run(
        [sys.executable, str(_RUNNER), circuit, str(_N_TRACES)],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(tree / "src")},
    )
    assert proc.returncode == 0, (
        f"pricing runner failed against {tree}:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


def _micro(circuit: str, seed_tree: Path) -> dict:
    """Best-of-``_ROUNDS`` interleaved pricing race on one circuit."""
    current, seed = [], []
    for _ in range(_ROUNDS):
        new = _run_pricing(_REPO_ROOT, circuit)
        old = _run_pricing(seed_tree, circuit)
        # Bit-identical trajectory or the timing comparison is void.
        assert (new["area"], new["power"], new["dispositioned"]) == (
            old["area"], old["power"], old["dispositioned"]
        ), f"engines diverged on {circuit}: {new} vs {old}"
        current.append(new)
        seed.append(old)
    new_s = min(r["pricing_s"] for r in current)
    old_s = min(r["pricing_s"] for r in seed)
    n = current[0]["dispositioned"]
    return {
        "dispositioned": n,
        "evals": current[0]["evals"],
        "pruned": current[0]["pruned"],
        "seed_s": old_s,
        "seed_per_s": n / old_s,
        "incremental_s": new_s,
        "incremental_per_s": n / new_s,
        "speedup": old_s / new_s,
    }


def _end_to_end(circuit: str) -> dict:
    def run(incremental: bool):
        config = quick_config()
        config.incremental = incremental
        config.prune = incremental
        design = get_benchmark(circuit)
        traces = speech_traces(design.top, n=24, seed=3)
        t0 = time.perf_counter()
        result = synthesize(
            design,
            laxity_factor=_LAXITY,
            objective="power",
            traces=traces,
            config=config,
            n_samples=24,
        )
        return result, time.perf_counter() - t0

    seed_result, seed_s = run(incremental=False)
    incr_result, incr_s = run(incremental=True)
    assert (seed_result.area, seed_result.power, seed_result.vdd,
            seed_result.clk_ns) == (incr_result.area, incr_result.power,
                                    incr_result.vdd, incr_result.clk_ns), (
        "incremental engine changed the synthesis result"
    )
    tel = incr_result.telemetry
    return {
        "seed_s": seed_s,
        "incremental_s": incr_s,
        "ratio": incr_s / seed_s,
        "delta_hit_rate": tel.delta_hit_rate,
        "delta_hits": tel.delta_hits,
        "delta_fallbacks": tel.delta_fallbacks,
        "full_evals": tel.full_evals,
        "moves_pruned": sum(tel.moves_pruned.values()),
        "area": incr_result.area,
        "power": incr_result.power,
    }


def test_candidate_eval_throughput():
    seed_tree = _make_seed_worktree()
    try:
        micro = {circuit: _micro(circuit, seed_tree) for circuit in CIRCUITS}
    finally:
        _drop_seed_worktree()
    e2e = {"test1": _end_to_end("test1")}

    snapshot = {
        "bench": "candidate_eval",
        "pr": 4,
        "seed_commit": _SEED_COMMIT,
        "laxity": _LAXITY,
        "n_traces": _N_TRACES,
        "rounds": _ROUNDS,
        "micro": micro,
        "end_to_end": e2e,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_4.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "Candidate pricing: seed engine vs incremental (delta) evaluation",
        f"(seed = {_SEED_COMMIT[:12]}, {_N_TRACES} trace samples, "
        f"best of {_ROUNDS})",
        "=================================================================",
    ]
    for circuit, m in micro.items():
        lines.append(
            f"{circuit:8s} {m['dispositioned']:4d} candidates "
            f"({m['pruned']} pruned): "
            f"{m['seed_per_s']:.0f}/s seed -> "
            f"{m['incremental_per_s']:.0f}/s incremental "
            f"({m['speedup']:.2f}x)"
        )
    t1 = e2e["test1"]
    lines.append(
        f"end-to-end test1: {t1['seed_s']:.2f} s non-incremental -> "
        f"{t1['incremental_s']:.2f} s incremental "
        f"({t1['delta_hit_rate']:.1%} delta-hit rate, "
        f"{t1['moves_pruned']} moves pruned); results identical (asserted)"
    )
    save_result("candidate_eval", "\n".join(lines))

    fast_enough = [c for c, m in micro.items() if m["speedup"] >= _SPEEDUP_TARGET]
    assert len(fast_enough) >= _SPEEDUP_MIN_CIRCUITS, (
        f"expected >= {_SPEEDUP_TARGET}x pricing throughput on at least "
        f"{_SPEEDUP_MIN_CIRCUITS} circuits, got "
        + ", ".join(f"{c}: {m['speedup']:.2f}x" for c, m in micro.items())
    )
    assert t1["ratio"] <= _E2E_REGRESSION_LIMIT, (
        f"incremental end-to-end run is {t1['ratio']:.2f}x the seed-mode "
        f"wall clock (limit {_E2E_REGRESSION_LIMIT}x)"
    )
