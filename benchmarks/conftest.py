"""Shared infrastructure for the experiment benchmarks.

Every bench regenerates one table or figure of the paper, printing the
rendered table and writing it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.

Environment knobs:

* ``REPRO_FULL_TABLES=1`` — run the complete Table 3/4 sweep (all six
  circuits × three laxity factors).  The default is a representative
  subset sized for a few minutes of wall clock.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench_suite import TABLE3_BENCHMARKS
from repro.reporting import DEFAULT_LAXITY_FACTORS, quick_config, run_sweep

RESULTS_DIR = Path(__file__).parent / "results"


def full_tables() -> bool:
    return os.environ.get("REPRO_FULL_TABLES", "") == "1"


def sweep_circuits() -> tuple[str, ...]:
    if full_tables():
        return TABLE3_BENCHMARKS
    return ("lat", "test1")


def sweep_laxities() -> tuple[float, ...]:
    if full_tables():
        return DEFAULT_LAXITY_FACTORS
    return (1.2, 2.2)


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table; also echo it for the console log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return path


@pytest.fixture(scope="session")
def table_sweep():
    """The Table 3/4 synthesis sweep, run once per benchmark session."""
    return run_sweep(
        circuits=sweep_circuits(),
        laxity_factors=sweep_laxities(),
        config=quick_config(),
        verbose=True,
    )
