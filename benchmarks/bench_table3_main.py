"""Tables 3 and 4: the main normalized area/power/CPU-time results.

Runs the paper's full experiment matrix — per circuit and laxity
factor, flattened and hierarchical synthesis in area mode (5 V, then
voltage-scaled) and power mode — and renders both result tables in the
paper's layout.  Set ``REPRO_FULL_TABLES=1`` for all six circuits ×
three laxity factors (several minutes); the default subset keeps the
bench quick.

Shape assertions (not absolute numbers — see DESIGN.md):

* power-optimized circuits consume a fraction of the area-optimized
  5 V power, and the fraction shrinks with laxity;
* hierarchical synthesis is faster than flattened synthesis on the
  benchmarks whose flattened form is large;
* hierarchical area stays within a moderate factor of flattened area.
"""

import pytest

from repro.reporting import (
    quick_config,
    render_claims,
    render_table3,
    render_table4,
    run_cell,
    table4_rows,
)

from conftest import full_tables, save_result, sweep_circuits


def test_table3(benchmark, table_sweep):
    table = benchmark(render_table3, table_sweep)
    save_result("table3_main", table)

    for (circuit, laxity), cell in table_sweep.cells.items():
        fa_p, fp_p, ha_p, hp_p = cell.table3_row_p()
        # Power optimization must beat area optimization on power on the
        # flattened path at every laxity...
        assert fp_p < 1.0, (circuit, laxity)
        # ...and on the hierarchical path once slack allows voltage
        # scaling.  At L.F. 1.2 the hierarchical engine has no supply
        # headroom and only module-selection savings, so it may land
        # slightly above the scaled baseline (see EXPERIMENTS.md).
        if laxity >= 2.0:
            assert hp_p < 0.8, (circuit, laxity)
        else:
            assert hp_p < 1.4, (circuit, laxity)


def test_table4(benchmark, table_sweep):
    table = benchmark(render_table4, table_sweep)
    save_result("table4_summary", table)

    rows = table4_rows(table_sweep)
    assert rows
    for row in rows:
        # Power-optimized vs 5 V area-optimized: savings everywhere, and
        # large ones once the laxity leaves room for voltage scaling.
        assert row.power_5v_flat < 1.0
        assert row.power_5v_hier < 1.15
        if row.laxity >= 2.0:
            assert row.power_5v_flat < 0.6
            assert row.power_5v_hier < 0.75
    if len(rows) > 1:
        # Deeper laxity enables deeper voltage scaling: the power ratio
        # must not grow as the laxity factor rises.
        assert rows[-1].power_5v_flat <= rows[0].power_5v_flat + 0.1


def test_headline_claims(benchmark, table_sweep):
    """Section 5's prose claims, computed over this sweep."""
    table = benchmark(render_claims, table_sweep)
    save_result("headline_claims", table)
    from repro.reporting import compute_claims

    claims = compute_claims(table_sweep)
    # Power optimization achieves a multi-fold reduction somewhere.
    assert claims.max_power_reduction > 1.5
    # Hierarchical quality stays within a moderate band of flattened.
    assert claims.hier_vs_flat_area_opt < 1.6


def test_synthesis_time_advantage(benchmark, table_sweep):
    """Table 4's CPU-time story, evaluated on the big-flat circuits."""
    heavy = [
        cell
        for (circuit, _lf), cell in table_sweep.cells.items()
        if circuit in ("avenhaus_cascade", "dct", "hier_paulin", "iir", "lat")
    ]
    if not heavy:
        pytest.skip("no large circuits in this sweep subset")
    flat_total = benchmark(lambda: sum(c.flat_synth_time for c in heavy))
    hier_total = sum(c.hier_synth_time for c in heavy)
    assert hier_total < flat_total


def test_one_cell_synthesis_cost(benchmark):
    """Wall-clock of one full Table 3 cell (the paper's unit of work)."""
    circuit = sweep_circuits()[0]
    benchmark.pedantic(
        lambda: run_cell(circuit, 1.2, config=quick_config()),
        rounds=1,
        iterations=1,
    )
