"""Generative differential fuzzer: seeded designs through full synthesis.

Draws round seeds from a base seed, and for each one runs the
differential oracle in :mod:`repro.gen.fuzz`: generate a random
hierarchical design, synthesize it end-to-end, verify the winning RTL
against the behavioral simulation, re-synthesize with the batched
activity kernel disabled (must be bit-identical), and — on a stride of
rounds — run cold-then-warm against one persistent synthesis store
(also bit-identical).  Any divergence is a synthesis bug::

    PYTHONPATH=src python benchmarks/fuzz_designs.py --count 200 --seed 0

Each round is a pure function of its round seed, so a failure report's
``seed N`` replays in isolation::

    PYTHONPATH=src python benchmarks/fuzz_designs.py --replay N

Failing designs are shrunk to minimal reproducers and written under
``--artifacts`` (default ``fuzz-artifacts/``)::

    fuzz-artifacts/seed-N/original.dfg   # as generated
    fuzz-artifacts/seed-N/shrunk.dfg     # minimized, still failing
    fuzz-artifacts/seed-N/report.txt     # failure details + replay command

The nightly CI job runs a 1000-round batch (see
``.github/workflows/nightly.yml``); the PR-gating tier runs a small
fixed-seed slice (``tests/integration/test_gen_fuzz.py``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.dfg import write_design
from repro.gen import GenConfig, generate_design
from repro.gen.fuzz import (
    DEFAULT_LAXITY,
    FuzzOutcome,
    check_seed,
    shrink_failing_seed,
)


def _run_round(task: tuple[int, float, bool]) -> FuzzOutcome:
    seed, laxity, store_check = task
    return check_seed(seed, laxity=laxity, store_check=store_check)


def _write_artifacts(
    outcome: FuzzOutcome, laxity: float, store_check: bool, artifacts: Path
) -> Path:
    """Shrink the failing seed and persist a replayable reproducer."""
    out = artifacts / f"seed-{outcome.seed}"
    out.mkdir(parents=True, exist_ok=True)
    gen = generate_design(outcome.seed, GenConfig())
    (out / "original.dfg").write_text(gen.text)
    shrunk = shrink_failing_seed(
        outcome.seed, laxity=laxity, store_check=store_check
    )
    (out / "shrunk.dfg").write_text(write_design(shrunk) + "\n")
    replay = (
        f"PYTHONPATH=src python benchmarks/fuzz_designs.py "
        f"--replay {outcome.seed}"
    )
    report = [
        f"seed:      {outcome.seed}",
        f"design:    {outcome.design_name}",
        f"objective: {outcome.objective}",
        f"replay:    {replay}",
        "",
        "failures:",
        *(f"  - {f}" for f in outcome.failures),
        "",
        f"shrunk to {sum(len(d) for d in shrunk.dfgs())} nodes "
        f"across {len(shrunk.dfg_names())} DFGs (shrunk.dfg)",
        "",
    ]
    (out / "report.txt").write_text("\n".join(report))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=200,
                        help="rounds to run (default: 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed round seeds derive from")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1 = in-process)")
    parser.add_argument("--laxity", type=float, default=DEFAULT_LAXITY,
                        help=f"laxity factor (default: {DEFAULT_LAXITY})")
    parser.add_argument("--store-stride", type=int, default=8, metavar="N",
                        help="run the cold/warm persistent-store cross-check "
                             "on every Nth round (0 = never; default: 8)")
    parser.add_argument("--artifacts", type=Path, default=Path("fuzz-artifacts"),
                        help="directory for shrunk failing designs")
    parser.add_argument("--replay", type=int, default=None, metavar="SEED",
                        help="replay exactly one round with this round seed "
                             "(as printed in a failure report)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        outcome = check_seed(
            args.replay, laxity=args.laxity, store_check=True
        )
        print(f"replayed seed {args.replay} ({outcome.design_name}, "
              f"{outcome.objective}): {outcome.checks} checks, "
              f"{len(outcome.failures)} failures")
        for failure in outcome.failures:
            print(f"FAIL [seed {outcome.seed}] {failure}", file=sys.stderr)
        if not outcome.ok:
            out = _write_artifacts(
                outcome, args.laxity, True, args.artifacts
            )
            print(f"artifacts written to {out}", file=sys.stderr)
        return 1 if outcome.failures else 0

    seeder = random.Random(args.seed)
    tasks = []
    for k in range(args.count):
        round_seed = seeder.randrange(1 << 30)
        store_check = args.store_stride > 0 and k % args.store_stride == 0
        tasks.append((round_seed, args.laxity, store_check))

    started = time.monotonic()
    if args.jobs > 1:
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            outcomes = list(pool.map(_run_round, tasks, chunksize=4))
    else:
        outcomes = [_run_round(task) for task in tasks]
    elapsed = time.monotonic() - started

    failing = [o for o in outcomes if not o.ok]
    total_checks = sum(o.checks for o in outcomes)
    print(f"fuzzed {len(outcomes)} generated designs, {total_checks} "
          f"differential checks, {len(failing)} failing seeds "
          f"({elapsed:.1f} s)")
    for outcome in failing:
        store_check = args.store_stride > 0 and any(
            t[0] == outcome.seed and t[2] for t in tasks
        )
        out = _write_artifacts(
            outcome, args.laxity, store_check, args.artifacts
        )
        for failure in outcome.failures:
            print(f"FAIL [seed {outcome.seed}] {failure}", file=sys.stderr)
        print(f"  artifacts: {out}", file=sys.stderr)
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
