"""Serial vs. parallel wall time for the operating-point sweep.

The outer (Vdd, clock) loop of ``synthesize()`` fans out over a process
pool when ``SynthesisConfig.n_workers > 1``; every point is independent,
so results are bit-identical to the serial path.  This bench times the
power-objective synthesis of two Table 3 circuits (test1 and paulin) at
``n_workers=1`` and ``n_workers=4``, records per-run telemetry
(evaluations, cost-cache hit rate), and asserts:

* the winning (area, power, Vdd, clock) of every circuit is identical
  between serial and parallel;
* on a multi-core machine, parallel is at least 1.5x faster (on a
  single-core container the speedup is recorded but not asserted —
  process parallelism cannot beat serial without a second core).
"""

from __future__ import annotations

import os
import time

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.reporting import quick_config
from repro.synthesis import synthesize

from conftest import save_result

_CIRCUITS = ("test1", "paulin")
_LAXITY = 2.2
_SPEEDUP_TARGET = 1.5
_PARALLEL_WORKERS = 4


def _timed_runs(n_workers: int):
    config = quick_config()
    config.n_workers = n_workers
    results = {}
    started = time.perf_counter()
    for circuit in _CIRCUITS:
        design = get_benchmark(circuit)
        traces = speech_traces(design.top, n=24, seed=3)
        results[circuit] = synthesize(
            design,
            laxity_factor=_LAXITY,
            objective="power",
            traces=traces,
            config=config,
            n_samples=24,
        )
    return results, time.perf_counter() - started


def _winning_metrics(results):
    return {
        circuit: (r.area, r.power, r.vdd, r.clk_ns)
        for circuit, r in results.items()
    }


def test_sweep_speedup(benchmark):
    serial, serial_s = _timed_runs(1)
    parallel, parallel_s = benchmark.pedantic(
        _timed_runs, args=(_PARALLEL_WORKERS,), rounds=1, iterations=1
    )

    assert _winning_metrics(serial) == _winning_metrics(parallel), (
        "parallel sweep must be bit-identical to the serial sweep"
    )

    speedup = serial_s / max(parallel_s, 1e-9)
    cores = os.cpu_count() or 1

    lines = [
        "Sweep speedup: serial vs parallel operating-point sweep",
        "=======================================================",
        f"circuits:           {', '.join(_CIRCUITS)} (power objective, "
        f"laxity {_LAXITY:g})",
        f"cpu cores:          {cores}",
        f"serial wall time:   {serial_s:.2f} s  (n_workers=1)",
        f"parallel wall time: {parallel_s:.2f} s  (n_workers={_PARALLEL_WORKERS})",
        f"speedup:            {speedup:.2f}x",
        "results identical:  yes (asserted)",
    ]
    for circuit in _CIRCUITS:
        t = serial[circuit].telemetry
        lines.append(
            f"telemetry {circuit}: {t.evaluations} evaluations, "
            f"{t.cache_hits} cost-cache hits ({t.cache_hit_rate:.1%} hit rate)"
        )
    save_result("sweep_speedup", "\n".join(lines))

    if cores >= 2:
        assert speedup >= _SPEEDUP_TARGET, (
            f"expected >= {_SPEEDUP_TARGET}x speedup with "
            f"{_PARALLEL_WORKERS} workers on {cores} cores, got {speedup:.2f}x"
        )
