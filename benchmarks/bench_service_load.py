"""Job-server load benchmark: store hits, coalescing, throughput.

Boots a real :class:`repro.service.server.SynthesisService` (thread
workers, ephemeral port, fresh state directory) and drives it over HTTP
with a corpus of small distinct designs, measuring the three paths a
request can take (methodology: ``docs/PERFORMANCE.md``):

* **cold vs. warm** — every corpus design synthesized once, then
  resubmitted; repeats must be served from the persistent store and
  complete >= 10x faster than cold synthesis;
* **coalescing** — duplicate submissions racing one running job must
  produce exactly one synthesis run and byte-identical result bodies;
* **throughput vs. hit rate** — closed-loop clients submit mixes at
  0.0 / 0.5 / 0.9 store-hit ratios; requests/s is recorded per mix.

Writes ``results/service_load.txt`` (human-readable) and
``results/BENCH_8.json`` (latencies, counters, requests/s per mix).
"""

from __future__ import annotations

import asyncio
import json
import shutil
import statistics
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import ServiceClient
from repro.service.server import ServiceConfig, SynthesisService

from conftest import RESULTS_DIR, save_result

_WORKERS = 4
_WARM_SPEEDUP_TARGET = 10.0
_DUPLICATES = 8
_CORPUS = 6
_MIX_REQUESTS = 10
_HIT_RATES = (0.0, 0.5, 0.9)


def _design_text(index: int) -> str:
    """Small distinct flat designs: the op chain encodes the index.

    Bit *i* of the index picks add vs. mult at chain position *i*, so
    any two indices below 2**10 yield canonically distinct designs —
    the fingerprints that drive coalescing/store-serving never collide
    across the corpus, the duplicate set, and the fresh mixes.
    """
    lines = ["design load%d" % index, "top main", "", "dfg main",
             "  input x", "  input y", "  op n0 mult x y"]
    for i in range(1, 11):
        op = "add" if (index >> (i - 1)) & 1 else "mult"
        lines.append(f"  op n{i} {op} n{i - 1} y")
    lines += ["  output out n10", "end", ""]
    return "\n".join(lines)


def _request(index: int) -> dict:
    return {"design_text": _design_text(index), "laxity_factor": 2.0,
            "samples": 8}


class _LiveService:
    """The service on a background event loop, plus an HTTP client."""

    def __init__(self, cache_dir: str):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()

        async def _boot() -> SynthesisService:
            service = SynthesisService(ServiceConfig(
                port=0, workers=_WORKERS, cache_dir=cache_dir,
                use_processes=False,
            ))
            await service.start()
            return service

        self.service = asyncio.run_coroutine_threadsafe(
            _boot(), self.loop
        ).result(30)
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.service.bound_port}"
        )

    def counters(self) -> dict:
        return self.client.stats()["counters"]

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.close(), self.loop
        ).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


def _submit_and_wait(client: ServiceClient, request: dict) -> tuple[dict, float]:
    """One closed-loop request; returns (receipt, wall seconds)."""
    started = time.perf_counter()
    receipt = client.submit(request)
    if receipt["state"] not in ("done", "failed"):
        final = client.wait(receipt["job_id"], timeout_s=300.0, poll_s=0.01)
        assert final["state"] == "done", final["error"]
    return receipt, time.perf_counter() - started


def _mix_throughput(live: _LiveService, hit_rate: float,
                    fresh_base: int) -> dict:
    """Requests/s for a closed-loop mix at one store-hit ratio."""
    n_hits = round(_MIX_REQUESTS * hit_rate)
    requests = (
        [_request(i % _CORPUS) for i in range(n_hits)]        # stored
        + [_request(fresh_base + i)                           # cold
           for i in range(_MIX_REQUESTS - n_hits)]
    )
    before = live.counters()
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=4) as pool:
        receipts = list(pool.map(
            lambda r: _submit_and_wait(live.client, r), requests
        ))
    elapsed = time.perf_counter() - started
    after = live.counters()
    return {
        "hit_rate": hit_rate,
        "requests": _MIX_REQUESTS,
        "elapsed_s": round(elapsed, 3),
        "requests_per_s": round(_MIX_REQUESTS / elapsed, 2),
        "store_hits": after["store_hits"] - before["store_hits"],
        "synth_runs": after["synth_runs"] - before["synth_runs"],
        "max_latency_s": round(max(s for _r, s in receipts), 4),
    }


def test_service_load(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-service-bench-")
    live = _LiveService(cache_dir)
    try:
        # --- cold pass: populate the store, measure full synthesis ---
        cold_latencies = []
        for i in range(_CORPUS):
            receipt, seconds = _submit_and_wait(live.client, _request(i))
            assert not receipt["served_from_store"]
            cold_latencies.append(seconds)

        # --- warm pass: every repeat must answer from the store ---
        def _warm_pass():
            latencies = []
            for i in range(_CORPUS):
                receipt, seconds = _submit_and_wait(
                    live.client, _request(i)
                )
                assert receipt["served_from_store"], (
                    "repeat request must be served from the store"
                )
                latencies.append(seconds)
            return latencies

        warm_latencies = benchmark.pedantic(
            _warm_pass, rounds=1, iterations=1
        )
        cold_median = statistics.median(cold_latencies)
        warm_median = statistics.median(warm_latencies)
        warm_speedup = cold_median / max(warm_median, 1e-9)

        # --- coalescing: duplicates race one running job ---
        before = live.counters()
        duplicate = _request(900)  # not in the store yet
        with ThreadPoolExecutor(max_workers=_DUPLICATES) as pool:
            results = list(pool.map(
                lambda _i: _submit_and_wait(live.client, duplicate),
                range(_DUPLICATES),
            ))
        after = live.counters()
        job_ids = {receipt["job_id"] for receipt, _s in results}
        synth_runs = after["synth_runs"] - before["synth_runs"]
        coalesce_hits = after["coalesce_hits"] - before["coalesce_hits"]
        store_hits = after["store_hits"] - before["store_hits"]
        assert synth_runs == 1, (
            f"{_DUPLICATES} duplicates must synthesize exactly once, "
            f"got {synth_runs} runs"
        )
        assert coalesce_hits + store_hits == _DUPLICATES - 1
        bodies = {
            json.dumps(live.client.result(job_id)["result"], sort_keys=True)
            for job_id in job_ids
        }
        assert len(bodies) == 1, "duplicate clients read different bytes"

        # --- throughput at varying store-hit rates ---
        mixes = [
            _mix_throughput(live, rate, fresh_base=1000 + 100 * k)
            for k, rate in enumerate(_HIT_RATES)
        ]
    finally:
        live.shutdown()
        shutil.rmtree(cache_dir, ignore_errors=True)

    lines = [
        "Service load: store hits, coalescing, throughput",
        "================================================",
        f"server: {_WORKERS} thread workers, corpus of {_CORPUS} designs",
        f"cold latency (median):  {cold_median * 1e3:8.1f} ms",
        f"warm latency (median):  {warm_median * 1e3:8.1f} ms  "
        "(served from persistent store)",
        f"warm speedup:           {warm_speedup:8.1f}x  "
        f"(target >= {_WARM_SPEEDUP_TARGET:g}x)",
        f"coalescing: {_DUPLICATES} duplicates -> {synth_runs} synthesis "
        f"run, {coalesce_hits} coalesce hits, {store_hits} store hits",
        "",
        "throughput vs. store-hit rate (closed loop, 4 clients):",
    ]
    for mix in mixes:
        lines.append(
            f"  hit rate {mix['hit_rate']:.1f}: "
            f"{mix['requests_per_s']:7.2f} req/s "
            f"({mix['requests']} requests in {mix['elapsed_s']:.2f} s, "
            f"{mix['synth_runs']} synth runs)"
        )
    save_result("service_load", "\n".join(lines))

    snapshot = {
        "bench": "service_load",
        "workers": _WORKERS,
        "corpus": _CORPUS,
        "cold_latency_s": [round(s, 4) for s in cold_latencies],
        "warm_latency_s": [round(s, 4) for s in warm_latencies],
        "cold_median_s": round(cold_median, 4),
        "warm_median_s": round(warm_median, 4),
        "warm_speedup": round(warm_speedup, 1),
        "target_warm_speedup": _WARM_SPEEDUP_TARGET,
        "coalescing": {
            "duplicates": _DUPLICATES,
            "synth_runs": synth_runs,
            "coalesce_hits": coalesce_hits,
            "store_hits": store_hits,
            "identical_results": True,
        },
        "throughput": mixes,
    }
    (RESULTS_DIR / "BENCH_8.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    assert warm_speedup >= _WARM_SPEEDUP_TARGET, (
        f"expected store-served repeats >= {_WARM_SPEEDUP_TARGET}x faster "
        f"than cold synthesis, got {warm_speedup:.1f}x"
    )
